//! Time-triggered Ethernet backbone between FlexRay domains.
//!
//! The paper's cluster is a single FlexRay bus; real vehicles bridge
//! several such domains over a switched time-triggered Ethernet backbone.
//! This crate models the smallest interesting instance of that
//! architecture: **two FlexRay domains joined by one store-and-forward
//! gateway** whose egress ports open transmission *gate windows* from a
//! gate-control list (GCL), IEEE 802.1Qbv style.
//!
//! Everything is phased on the **hypercycle** — the least common multiple
//! of the FlexRay communication cycle and the Ethernet base period
//! ([`flexray::config::ClusterConfig::hypercycle`]). Two reservation
//! policies compete for the same gate windows, behind a string-keyed
//! [`reservation`] registry mirroring [`coefficient::registry`]:
//!
//! * [`reservation::PER_CYCLE`] — the classic baseline: a flow is
//!   admitted only if one gate column is free in **every** base period of
//!   the hypercycle, and it reserves the whole column. Simple, but a flow
//!   whose period exceeds the base period wastes every window it does not
//!   use.
//! * [`reservation::HYPERCYCLE`] — plans at hypercycle granularity: each
//!   admitted flow reserves exactly one window per *instance*, and the
//!   windows the baseline would have wasted are handed to flows the
//!   baseline rejected. By construction it admits a superset of the
//!   baseline's flows (a property test in `tests/gcl_props.rs` pins
//!   this on random topologies).
//!
//! End-to-end [`topology::FlowSpec`]s traverse five stages — sensor task
//! on the source-domain CPU ([`tasks`]), FlexRay static slot
//! ([`coefficient::Runner`]), gateway queue, Ethernet gate window,
//! actuator task on the destination CPU — and the [`runner`] folds
//! per-flow latency/jitter into all-integer [`flow::FlowCounters`] and a
//! replayable fingerprint.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod flow;
pub mod gateway;
pub mod reservation;
pub mod runner;
pub mod topology;

pub use flow::FlowCounters;
pub use gateway::{simulate_gateway, GatewayOutcome};
pub use reservation::{
    resolve as resolve_reservation, FlowPlan, Reservation, ReservationPlan, ReservationRef,
    UnknownReservation, ALL_RESERVATIONS, HYPERCYCLE, PER_CYCLE,
};
pub use runner::{
    run_cell, run_matrix, BackboneError, CellReport, CellSpec, FlowOutcome, MatrixSpec, PortStats,
};
pub use topology::{resolve as resolve_topology, FlowSpec, PortSpec, Topology, UnknownTopology};
