//! Per-flow end-to-end accounting.

use event_sim::SimDuration;

/// All-integer per-flow latency/jitter counters, folded into cell
/// fingerprints only when non-zero (mirroring the resilience-counter
/// idiom of `coefficient`'s run fingerprint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowCounters {
    /// Instances released inside the measured span.
    pub instances: u64,
    /// Instances that completed the full five-stage pipeline.
    pub delivered: u64,
    /// Instances lost at any stage (sensor job, FlexRay delivery or
    /// actuator job missing from the observation window).
    pub lost: u64,
    /// Delivered instances that waited at least one full hypercycle for
    /// a reserved gate window.
    pub missed_windows: u64,
    /// Minimum observed end-to-end latency in nanoseconds (0 if none).
    pub latency_min_ns: u64,
    /// Maximum observed end-to-end latency in nanoseconds.
    pub latency_max_ns: u64,
    /// Sum of observed end-to-end latencies in nanoseconds.
    pub latency_total_ns: u64,
    /// Observed jitter: max − min latency (0 with fewer than two
    /// deliveries).
    pub jitter_ns: u64,
}

impl FlowCounters {
    /// Records one delivered instance's end-to-end latency.
    pub fn record_latency(&mut self, latency: SimDuration) {
        let ns = latency.as_nanos();
        if self.delivered == 0 {
            self.latency_min_ns = ns;
            self.latency_max_ns = ns;
        } else {
            self.latency_min_ns = self.latency_min_ns.min(ns);
            self.latency_max_ns = self.latency_max_ns.max(ns);
        }
        self.delivered += 1;
        self.latency_total_ns += ns;
        if self.delivered >= 2 {
            self.jitter_ns = self.latency_max_ns - self.latency_min_ns;
        }
    }

    /// The counters as stable `(name, value)` pairs, in fingerprint fold
    /// order. Appending new counters at the end keeps old fingerprints
    /// stable for runs where the new counter is zero.
    pub fn fields(&self) -> [(&'static str, u64); 8] {
        [
            ("instances", self.instances),
            ("delivered", self.delivered),
            ("lost", self.lost),
            ("missed_windows", self.missed_windows),
            ("latency_min_ns", self.latency_min_ns),
            ("latency_max_ns", self.latency_max_ns),
            ("latency_total_ns", self.latency_total_ns),
            ("jitter_ns", self.jitter_ns),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_extremes_and_jitter() {
        let mut c = FlowCounters::default();
        c.record_latency(SimDuration::from_micros(40));
        assert_eq!(c.jitter_ns, 0, "one sample has no jitter");
        c.record_latency(SimDuration::from_micros(25));
        c.record_latency(SimDuration::from_micros(55));
        assert_eq!(c.delivered, 3);
        assert_eq!(c.latency_min_ns, 25_000);
        assert_eq!(c.latency_max_ns, 55_000);
        assert_eq!(c.latency_total_ns, 120_000);
        assert_eq!(c.jitter_ns, 30_000);
    }

    #[test]
    fn fields_order_is_frozen() {
        let names: Vec<&str> = FlowCounters::default()
            .fields()
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(
            names,
            vec![
                "instances",
                "delivered",
                "lost",
                "missed_windows",
                "latency_min_ns",
                "latency_max_ns",
                "latency_total_ns",
                "jitter_ns",
            ]
        );
    }
}
