//! Gate-window reservation policies behind a string-keyed registry.
//!
//! A reservation policy turns a [`Topology`] into a [`ReservationPlan`]:
//! which flows are admitted, and which gate windows of the hypercycle
//! each admitted flow owns. The two registered policies bracket the
//! design space:
//!
//! * [`PER_CYCLE`] reserves one gate *column* per flow — the same window
//!   in every Ethernet base period — the way a period-agnostic GCL is
//!   provisioned in practice.
//! * [`HYPERCYCLE`] starts from the per-cycle admission, keeps only the
//!   windows each instance actually needs, and re-assigns the reclaimed
//!   windows to flows the per-cycle policy rejected. Its admitted set is
//!   therefore a superset of the baseline's **by construction**.
//!
//! The registry mirrors [`coefficient::registry`]: `&'static` trait
//! objects resolved by case-insensitive name, with an error type whose
//! display lists every valid name.

use std::collections::BTreeSet;

use event_sim::SimDuration;

use crate::topology::{FlowSpec, Topology};

/// Per-port reserved-window map: `occupancy[p * gates + g]` names the
/// flow owning gate `g` of base period `p`, if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortPlan {
    /// Owner of each window in the hypercycle pattern, indexed by
    /// `period_index * gates + gate_index`.
    pub occupancy: Vec<Option<u32>>,
}

impl PortPlan {
    /// Reserved windows in one hypercycle.
    pub fn windows_reserved(&self) -> u64 {
        self.occupancy.iter().filter(|w| w.is_some()).count() as u64
    }

    /// Total windows in one hypercycle.
    pub fn windows_total(&self) -> u64 {
        self.occupancy.len() as u64
    }
}

/// One flow's admission outcome and owned windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowPlan {
    /// The flow id.
    pub flow: u32,
    /// Egress port the flow is (or would be) carried on.
    pub port: usize,
    /// Whether the policy admitted the flow.
    pub admitted: bool,
    /// Owned windows of the hypercycle pattern, as
    /// `period_index * gates + gate_index`, ascending (which is also
    /// ascending start order). The pattern repeats every hypercycle.
    /// Empty when rejected.
    pub windows: Vec<u64>,
}

/// A full reservation: per-port occupancy plus per-flow admissions, in
/// topology flow order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReservationPlan {
    /// Occupancy per egress port.
    pub ports: Vec<PortPlan>,
    /// Admission outcome per flow, in [`Topology::flows`] order.
    pub flows: Vec<FlowPlan>,
}

impl ReservationPlan {
    /// Number of admitted flows.
    pub fn admitted(&self) -> u64 {
        self.flows.iter().filter(|f| f.admitted).count() as u64
    }

    /// The plan entry for `flow`, if the topology declares it.
    pub fn flow_plan(&self, flow: u32) -> Option<&FlowPlan> {
        self.flows.iter().find(|f| f.flow == flow)
    }
}

/// Start of pattern window `w` on `port`, as an offset into the
/// hypercycle.
pub fn window_start(topology: &Topology, port: usize, w: u64) -> SimDuration {
    let gates = u64::from(topology.ports[port].gates);
    let period = w / gates;
    let gate = w % gates;
    topology.eth_base * period + topology.gate_length(port) * gate
}

/// A gate-window reservation policy.
pub trait Reservation: Send + Sync + std::fmt::Debug {
    /// Stable registry key (lower-case, also the corpus/report name).
    fn key(&self) -> &'static str;
    /// Human-facing label.
    fn label(&self) -> &'static str;
    /// Stable tag folded into run fingerprints. Frozen once published.
    fn fingerprint_tag(&self) -> u64;
    /// Alternative names accepted by [`resolve`].
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }
    /// One-line description for listings.
    fn summary(&self) -> &'static str;
    /// Plans the topology's flows onto gate windows.
    fn plan(&self, topology: &Topology) -> ReservationPlan;
}

/// A `'static` reservation reference, as stored in registries and specs.
pub type ReservationRef = &'static (dyn Reservation + Send + Sync);

/// How far after an instance's release the planner assumes its frame has
/// reached the gateway (sensor completion + FlexRay delivery). One
/// FlexRay cycle is generous for the paper geometry: statics are
/// delivered in their release cycle and the sensor tasks run well under
/// one cycle.
fn arrival_bound(topology: &Topology) -> SimDuration {
    topology.cluster.cycle_duration()
}

/// Whether a single frame of `flow` fits one gate window of its port.
fn frame_fits(topology: &Topology, flow: &FlowSpec) -> bool {
    let port = topology.egress_port(flow);
    topology.tx_duration(port, flow.size_bits) <= topology.gate_length(port)
}

fn empty_ports(topology: &Topology) -> Vec<PortPlan> {
    let periods = topology.base_periods_per_hypercycle();
    topology
        .ports
        .iter()
        .map(|p| PortPlan {
            occupancy: vec![None; (periods * u64::from(p.gates)) as usize],
        })
        .collect()
}

/// The per-cycle (gate-column) baseline.
#[derive(Debug)]
pub struct PerCycle;

impl Reservation for PerCycle {
    fn key(&self) -> &'static str {
        "per-cycle"
    }
    fn label(&self) -> &'static str {
        "Per-cycle gate columns"
    }
    fn fingerprint_tag(&self) -> u64 {
        0
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["percycle", "baseline"]
    }
    fn summary(&self) -> &'static str {
        "reserve the same gate window in every base period; reject flows \
         without a fully free column"
    }
    fn plan(&self, topology: &Topology) -> ReservationPlan {
        per_cycle_plan(topology)
    }
}

/// The hypercycle-level policy (reclaims the baseline's unused windows).
#[derive(Debug)]
pub struct Hypercycle;

impl Reservation for Hypercycle {
    fn key(&self) -> &'static str {
        "hypercycle"
    }
    fn label(&self) -> &'static str {
        "Hypercycle window packing"
    }
    fn fingerprint_tag(&self) -> u64 {
        1
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["hyper"]
    }
    fn summary(&self) -> &'static str {
        "reserve one window per instance across the hypercycle and hand \
         reclaimed windows to flows the per-cycle baseline rejects"
    }
    fn plan(&self, topology: &Topology) -> ReservationPlan {
        hypercycle_plan(topology)
    }
}

/// The per-cycle baseline, as a registry reference.
pub static PER_CYCLE: ReservationRef = &PerCycle;
/// The hypercycle policy, as a registry reference.
pub static HYPERCYCLE: ReservationRef = &Hypercycle;
/// Every registered reservation policy, in registry order.
pub static ALL_RESERVATIONS: &[ReservationRef] = &[PER_CYCLE, HYPERCYCLE];

/// Registered reservation keys, in registry order.
pub fn names() -> Vec<&'static str> {
    ALL_RESERVATIONS.iter().map(|r| r.key()).collect()
}

/// Error returned by [`resolve`] for unregistered names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownReservation {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownReservation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown reservation {:?} (registered: {})",
            self.name,
            names().join(", ")
        )
    }
}

impl std::error::Error for UnknownReservation {}

/// Resolves a reservation policy by key, label or alias
/// (case-insensitive, trimmed).
///
/// # Errors
/// Returns [`UnknownReservation`] — whose message lists every registered
/// key — when nothing matches.
pub fn resolve(name: &str) -> Result<ReservationRef, UnknownReservation> {
    let want = name.trim().to_ascii_lowercase();
    ALL_RESERVATIONS
        .iter()
        .copied()
        .find(|r| {
            r.key() == want
                || r.label().to_ascii_lowercase() == want
                || r.aliases().iter().any(|a| *a == want)
        })
        .ok_or_else(|| UnknownReservation {
            name: name.trim().to_string(),
        })
}

/// Per-cycle planning: each flow needs one gate index free in **every**
/// base period of its port, and its period must cover at least one base
/// period (a column window carries one frame per base period).
fn per_cycle_plan(topology: &Topology) -> ReservationPlan {
    let periods = topology.base_periods_per_hypercycle();
    let mut ports = empty_ports(topology);
    let mut flows = Vec::with_capacity(topology.flows.len());
    for flow in &topology.flows {
        let port = topology.egress_port(flow);
        let gates = u64::from(topology.ports[port].gates);
        let eligible = frame_fits(topology, flow) && flow.period >= topology.eth_base;
        let mut column = None;
        if eligible {
            column = (0..gates).find(|&g| {
                (0..periods).all(|p| ports[port].occupancy[(p * gates + g) as usize].is_none())
            });
        }
        match column {
            Some(g) => {
                let windows: Vec<u64> = (0..periods).map(|p| p * gates + g).collect();
                for &w in &windows {
                    ports[port].occupancy[w as usize] = Some(flow.id);
                }
                flows.push(FlowPlan {
                    flow: flow.id,
                    port,
                    admitted: true,
                    windows,
                });
            }
            None => flows.push(FlowPlan {
                flow: flow.id,
                port,
                admitted: false,
                windows: Vec::new(),
            }),
        }
    }
    ReservationPlan { ports, flows }
}

/// Picks, for each instance `k` of `flow`, the first candidate window at
/// or after the instance's planned gateway arrival, wrapping to the
/// earliest still-free candidate when the arrival falls past the end of
/// the hypercycle pattern (the instance then uses the pattern's next
/// repetition). Returns `None` if the candidates run out.
fn place_instances(
    topology: &Topology,
    flow: &FlowSpec,
    candidates: &[u64],
    starts: &[SimDuration],
) -> Option<Vec<u64>> {
    let instances = topology.instances_per_hypercycle(flow);
    let bound = arrival_bound(topology);
    let mut used = BTreeSet::new();
    for k in 0..instances {
        let target = flow.period * k + bound;
        let pick = (0..candidates.len())
            .find(|&i| !used.contains(&i) && starts[i] >= target)
            .or_else(|| (0..candidates.len()).find(|&i| !used.contains(&i)))?;
        used.insert(pick);
    }
    Some(used.iter().map(|&i| candidates[i]).collect())
}

/// Hypercycle planning: pass 1 re-admits every per-cycle flow with only
/// its per-instance windows (always possible — the column has one window
/// per base period and a column-eligible flow has at most that many
/// instances); pass 2 offers the reclaimed windows to rejected flows,
/// one window per instance, in declaration order.
fn hypercycle_plan(topology: &Topology) -> ReservationPlan {
    let base = per_cycle_plan(topology);
    let mut ports = empty_ports(topology);
    let mut flows = Vec::with_capacity(topology.flows.len());
    // Pass 1: keep the baseline's admissions, shrunk to per-instance
    // windows inside each flow's own gate column.
    for (flow, plan) in topology.flows.iter().zip(&base.flows) {
        let port = plan.port;
        if !plan.admitted {
            flows.push(FlowPlan {
                flow: flow.id,
                port,
                admitted: false,
                windows: Vec::new(),
            });
            continue;
        }
        let starts: Vec<SimDuration> = plan
            .windows
            .iter()
            .map(|&w| window_start(topology, port, w))
            .collect();
        let windows = place_instances(topology, flow, &plan.windows, &starts)
            .expect("a per-cycle column always covers its flow's instances");
        for &w in &windows {
            ports[port].occupancy[w as usize] = Some(flow.id);
        }
        flows.push(FlowPlan {
            flow: flow.id,
            port,
            admitted: true,
            windows,
        });
    }
    // Pass 2: place rejected flows into the reclaimed windows.
    for (flow, plan) in topology.flows.iter().zip(&base.flows) {
        if plan.admitted || !frame_fits(topology, flow) {
            continue;
        }
        let port = plan.port;
        let free: Vec<u64> = (0..ports[port].occupancy.len() as u64)
            .filter(|&w| ports[port].occupancy[w as usize].is_none())
            .collect();
        let starts: Vec<SimDuration> = free
            .iter()
            .map(|&w| window_start(topology, port, w))
            .collect();
        if let Some(windows) = place_instances(topology, flow, &free, &starts) {
            for &w in &windows {
                ports[port].occupancy[w as usize] = Some(flow.id);
            }
            let slot = flows
                .iter_mut()
                .find(|f| f.flow == flow.id)
                .expect("pass 1 records every flow");
            slot.admitted = true;
            slot.windows = windows;
        }
    }
    ReservationPlan { ports, flows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn registry_resolves_keys_labels_and_aliases() {
        assert_eq!(names(), vec!["per-cycle", "hypercycle"]);
        assert_eq!(resolve("per-cycle").unwrap().fingerprint_tag(), 0);
        assert_eq!(resolve("Baseline").unwrap().key(), "per-cycle");
        assert_eq!(resolve(" HYPER ").unwrap().key(), "hypercycle");
        let msg = resolve("nope").unwrap_err().to_string();
        assert!(msg.contains("unknown reservation \"nope\""), "{msg}");
        for key in names() {
            assert!(msg.contains(key), "{msg} missing {key}");
        }
    }

    #[test]
    fn fingerprint_tags_are_frozen_and_unique() {
        let tags: Vec<u64> = ALL_RESERVATIONS
            .iter()
            .map(|r| r.fingerprint_tag())
            .collect();
        assert_eq!(tags, vec![0, 1]);
    }

    #[test]
    fn paper_duplex_hypercycle_admits_strictly_more() {
        let t = topology::default_topology();
        let per_cycle = PER_CYCLE.plan(t);
        let hyper = HYPERCYCLE.plan(t);
        // Port 0 carries ten forward flows against eight gate columns.
        assert_eq!(per_cycle.admitted(), 12);
        assert_eq!(hyper.admitted(), 14);
        for (a, b) in per_cycle.flows.iter().zip(&hyper.flows) {
            assert!(!a.admitted || b.admitted, "flow {} lost admission", a.flow);
        }
    }

    #[test]
    fn tight_backbone_recovers_two_flows() {
        let t = topology::resolve("tight-backbone").unwrap();
        assert_eq!(PER_CYCLE.plan(t).admitted(), 6);
        assert_eq!(HYPERCYCLE.plan(t).admitted(), 8);
    }

    #[test]
    fn occupancy_and_flow_windows_agree() {
        let t = topology::default_topology();
        for policy in ALL_RESERVATIONS {
            let plan = policy.plan(t);
            for fp in plan.flows.iter().filter(|f| f.admitted) {
                assert!(!fp.windows.is_empty());
                for &w in &fp.windows {
                    assert_eq!(plan.ports[fp.port].occupancy[w as usize], Some(fp.flow));
                }
            }
            let owned: u64 = plan.flows.iter().map(|f| f.windows.len() as u64).sum();
            let reserved: u64 = plan.ports.iter().map(|p| p.windows_reserved()).sum();
            assert_eq!(
                owned,
                reserved,
                "window double-booked under {}",
                policy.key()
            );
        }
    }
}
