//! The backbone cell runner and parallel matrix driver.
//!
//! A **cell** is one `(topology, reservation, scenario, seed)` point.
//! Running it composes every layer of the workspace: the flows become
//! FlexRay static signals simulated by [`coefficient::Runner`] per
//! domain, sensor/actuator CPUs are simulated by [`tasks::simulate`],
//! the gateway forwards frames through the reservation plan's gate
//! windows ([`crate::gateway`]), and per-flow end-to-end latency lands
//! in all-integer [`FlowCounters`] plus a replayable fingerprint.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use coefficient::{RunConfig, Runner, Scenario, StopCondition};
use event_sim::rng::{derive, Digest};
use event_sim::{SimDuration, SimTime};
use flexray::signal::Signal;
use metrics::LogHistogram;
use observe::Tracer;
use tasks::{simulate, ExecutionTrace, PeriodicTask, SimulateOptions, TaskSet};

use crate::flow::FlowCounters;
use crate::gateway::{peak_queue_depths, simulate_gateway, GatewayArrival};
use crate::reservation::{ReservationRef, ALL_RESERVATIONS};
use crate::topology::{self, Topology, ACTUATOR_TASK_BASE, DOMAINS};

/// Tag namespace for [`FlowCounters`] fields in cell fingerprints
/// (`BKFL` + field index); each counter folds in only when non-zero.
const FLOW_COUNTER_TAG: u64 = 0x424B_464C_0000;

/// Simulated hypercycles measured per cell (plus drain margin).
pub const DEFAULT_HYPERCYCLES: u64 = 8;

/// An error from assembling or running a backbone cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackboneError(pub String);

impl std::fmt::Display for BackboneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "backbone: {}", self.0)
    }
}

impl std::error::Error for BackboneError {}

/// One matrix cell: a topology under one reservation policy, scenario
/// and seed.
#[derive(Debug, Clone)]
pub struct CellSpec<'a> {
    /// The topology under test.
    pub topology: &'a Topology,
    /// The reservation policy under test.
    pub reservation: ReservationRef,
    /// Fault scenario driving both FlexRay domains.
    pub scenario: Scenario,
    /// Master seed; per-domain streams derive from it.
    pub seed: u64,
    /// Hypercycles in the measured span.
    pub hypercycles: u64,
}

/// Per-port reservation and runtime statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PortStats {
    /// Gate windows in one hypercycle.
    pub windows_total: u64,
    /// Windows the plan reserved.
    pub windows_reserved: u64,
    /// Frames the port carried in the measured span.
    pub frames: u64,
    /// Frames that waited at least one hypercycle for their window.
    pub missed_windows: u64,
    /// Peak simultaneous frames inside the gateway for this port.
    pub peak_queue: u64,
}

/// One flow's outcome within a cell.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowOutcome {
    /// The flow id.
    pub flow: u32,
    /// Whether the reservation policy admitted the flow.
    pub admitted: bool,
    /// Declared jitter bound, nanoseconds.
    pub jitter_bound_ns: u64,
    /// End-to-end counters (all zero when rejected).
    pub counters: FlowCounters,
    /// Median end-to-end latency upper bound, nanoseconds (0 if none).
    pub p50_ns: u64,
    /// 99th-percentile end-to-end latency upper bound, nanoseconds.
    pub p99_ns: u64,
}

/// The replayable result of one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Topology name.
    pub topology: String,
    /// Reservation registry key.
    pub reservation: &'static str,
    /// Reservation fingerprint tag.
    pub reservation_tag: u64,
    /// Scenario name.
    pub scenario: String,
    /// Master seed.
    pub seed: u64,
    /// Measured hypercycles.
    pub hypercycles: u64,
    /// Hypercycle length, nanoseconds.
    pub hypercycle_ns: u64,
    /// Admitted flows.
    pub admitted: u64,
    /// Per-flow outcomes, in topology flow order.
    pub flows: Vec<FlowOutcome>,
    /// Per-port statistics.
    pub ports: Vec<PortStats>,
    /// Fingerprint of each domain's FlexRay run (0 for an idle domain).
    pub domain_fingerprints: Vec<u64>,
    /// Admitted flows whose observed jitter exceeded the declared bound.
    pub jitter_violations: u64,
}

impl CellReport {
    /// Order-independent digest of everything the cell observed; two
    /// replays (any thread count) must agree bit for bit. [`FlowCounters`]
    /// fields fold in tagged and only when non-zero, so adding a counter
    /// later keeps old fingerprints stable while it stays zero.
    pub fn fingerprint(&self) -> u64 {
        let mut d = Digest::new();
        d.push_bytes(self.topology.as_bytes());
        d.push(self.reservation_tag);
        d.push_bytes(self.scenario.as_bytes());
        d.push(self.seed);
        d.push(self.hypercycles);
        d.push(self.hypercycle_ns);
        d.push(self.admitted);
        for fp in &self.domain_fingerprints {
            d.push(*fp);
        }
        for port in &self.ports {
            d.push(port.windows_total);
            d.push(port.windows_reserved);
            d.push(port.frames);
            d.push(port.missed_windows);
            d.push(port.peak_queue);
        }
        for flow in &self.flows {
            d.push(u64::from(flow.flow));
            d.push(u64::from(flow.admitted));
            for (i, (_, value)) in flow.counters.fields().into_iter().enumerate() {
                if value != 0 {
                    d.push(FLOW_COUNTER_TAG | i as u64);
                    d.push(value);
                }
            }
        }
        d.finish()
    }
}

/// One domain's simulated legs: the FlexRay bus run and the CPU
/// schedule of its sensor and actuator tasks.
struct DomainSim {
    fingerprint: u64,
    /// Delivery instant of instance `k` of each flow sourced here,
    /// indexed by position in `Topology::flows`.
    deliveries: Vec<Vec<Option<SimTime>>>,
    cpu: Option<ExecutionTrace>,
}

fn err(e: impl std::fmt::Display) -> BackboneError {
    BackboneError(e.to_string())
}

/// Simulates one domain: its flows as FlexRay statics under the cell's
/// scenario, and its CPU running sensor tasks (flows sourced here) plus
/// actuator tasks (flows terminating here).
fn simulate_domain(
    spec: &CellSpec<'_>,
    domain: u8,
    releases: &[u64],
    span: SimDuration,
    hyper: SimDuration,
) -> Result<DomainSim, BackboneError> {
    let t = spec.topology;
    let sourced: Vec<usize> = (0..t.flows.len())
        .filter(|&i| t.flows[i].source_domain == domain)
        .collect();
    let mut deliveries = vec![Vec::new(); t.flows.len()];
    let mut fingerprint = 0;
    if !sourced.is_empty() {
        let statics: Vec<Signal> = sourced
            .iter()
            .map(|&i| {
                let f = &t.flows[i];
                Signal::new(f.id, f.period, SimDuration::ZERO, f.period, f.size_bits)
            })
            .collect();
        let (report, instances) = Runner::new(RunConfig {
            cluster: t.cluster.clone(),
            scenario: spec.scenario.clone(),
            static_messages: statics,
            dynamic_messages: Vec::new(),
            policy: coefficient::COEFFICIENT,
            stop: StopCondition::Horizon(span + hyper),
            seed: derive(spec.seed, "backbone/domain", u64::from(domain)),
            trace: Default::default(),
        })
        .map_err(err)?
        .run_with_instances();
        fingerprint = report.fingerprint();
        for &i in &sourced {
            let flow = &t.flows[i];
            deliveries[i] = instances
                .iter()
                .filter(|s| s.message == flow.id)
                .take(releases[i] as usize)
                .map(|s| s.delivered_at)
                .collect();
            // Instances the bus never produced (horizon margin too
            // tight) count as undelivered rather than panicking.
            deliveries[i].resize(releases[i] as usize, None);
        }
    }
    let mut cpu_tasks = Vec::new();
    for flow in &t.flows {
        if flow.source_domain == domain {
            cpu_tasks.push(PeriodicTask::new(
                flow.id,
                flow.sensor_wcet,
                flow.period,
                flow.period,
            ));
        }
        if flow.dest_domain() == domain {
            cpu_tasks.push(PeriodicTask::new(
                ACTUATOR_TASK_BASE + flow.id,
                flow.actuator_wcet,
                flow.period,
                flow.period,
            ));
        }
    }
    let cpu = if cpu_tasks.is_empty() {
        None
    } else {
        let set = TaskSet::deadline_monotonic(cpu_tasks).map_err(err)?;
        Some(simulate(
            &set,
            &[],
            SimulateOptions::new(SimTime::ZERO + span + hyper * 2),
        ))
    };
    Ok(DomainSim {
        fingerprint,
        deliveries,
        cpu,
    })
}

/// Runs one cell to a [`CellReport`].
///
/// # Errors
/// Returns [`BackboneError`] when the topology fails validation or a
/// domain simulation cannot be assembled; the registry presets never do.
pub fn run_cell(spec: &CellSpec<'_>) -> Result<CellReport, BackboneError> {
    run_cell_traced(spec, &Tracer::disabled())
}

/// [`run_cell`], but emitting gateway/Ethernet events through `tracer`.
/// Tracing is pure observation: the report is byte-identical to
/// [`run_cell`]'s.
pub fn run_cell_traced(spec: &CellSpec<'_>, tracer: &Tracer) -> Result<CellReport, BackboneError> {
    let t = spec.topology;
    t.validate().map_err(BackboneError)?;
    assert!(spec.hypercycles > 0, "cell must span at least 1 hypercycle");
    let hyper = t.hypercycle();
    let span = hyper * spec.hypercycles;
    let plan = spec.reservation.plan(t);
    // Instances released inside the measured span, per flow.
    let releases: Vec<u64> = t
        .flows
        .iter()
        .map(|f| span.as_nanos() / f.period.as_nanos())
        .collect();
    let domains: Vec<DomainSim> = (0..DOMAINS)
        .map(|d| simulate_domain(spec, d, &releases, span, hyper))
        .collect::<Result<_, _>>()?;

    // Stage fold: sensor completion + FlexRay delivery → gateway arrival.
    let mut counters = vec![FlowCounters::default(); t.flows.len()];
    let mut arrivals: Vec<GatewayArrival> = Vec::new();
    for (i, flow) in t.flows.iter().enumerate() {
        let admitted = plan.flows[i].admitted;
        if !admitted {
            continue;
        }
        counters[i].instances = releases[i];
        let source = &domains[usize::from(flow.source_domain)];
        let sensor = source.cpu.as_ref().expect("source domain has tasks");
        for k in 0..releases[i] {
            let completed = sensor.completion_of_job(flow.id, k).map(|c| c.completion);
            let delivered = source.deliveries[i][k as usize];
            match (completed, delivered) {
                (Some(c), Some(d)) => arrivals.push((c.max(d), flow.id, k)),
                _ => counters[i].lost += 1,
            }
        }
    }

    let outcomes = simulate_gateway(t, &plan, &arrivals, tracer);
    let peaks = peak_queue_depths(t, &outcomes);

    // Stage fold: Ethernet delivery → actuator job → end-to-end latency.
    let mut hists: Vec<LogHistogram> = t.flows.iter().map(|_| LogHistogram::new(4)).collect();
    let mut ports = vec![PortStats::default(); t.ports.len()];
    for (port, stats) in ports.iter_mut().enumerate() {
        stats.windows_total = plan.ports[port].windows_total();
        stats.windows_reserved = plan.ports[port].windows_reserved();
        stats.peak_queue = peaks[port];
    }
    for outcome in &outcomes {
        let i = t
            .flows
            .iter()
            .position(|f| f.id == outcome.flow)
            .expect("outcomes come from topology flows");
        let flow = &t.flows[i];
        let port = t.egress_port(flow);
        ports[port].frames += 1;
        if outcome.missed_window {
            ports[port].missed_windows += 1;
            counters[i].missed_windows += 1;
        }
        let dest = &domains[usize::from(flow.dest_domain())];
        let actuator = PeriodicTask::new(
            ACTUATOR_TASK_BASE + flow.id,
            flow.actuator_wcet,
            flow.period,
            flow.period,
        );
        let job = actuator.first_job_at_or_after(outcome.delivery);
        let actuated = dest
            .cpu
            .as_ref()
            .and_then(|cpu| cpu.completion_of_job(actuator.id(), job))
            .map(|c| c.completion);
        match actuated {
            Some(done) => {
                let release = flow.release(outcome.instance);
                let latency = done.saturating_duration_since(release);
                counters[i].record_latency(latency);
                hists[i].record(latency.as_nanos());
            }
            None => counters[i].lost += 1,
        }
    }

    let mut flows = Vec::with_capacity(t.flows.len());
    let mut jitter_violations = 0;
    for (i, flow) in t.flows.iter().enumerate() {
        let admitted = plan.flows[i].admitted;
        if admitted && counters[i].jitter_ns > flow.jitter_bound.as_nanos() {
            jitter_violations += 1;
        }
        flows.push(FlowOutcome {
            flow: flow.id,
            admitted,
            jitter_bound_ns: flow.jitter_bound.as_nanos(),
            counters: counters[i],
            p50_ns: hists[i].quantile_upper_bound(0.50).unwrap_or(0),
            p99_ns: hists[i].quantile_upper_bound(0.99).unwrap_or(0),
        });
    }
    Ok(CellReport {
        topology: t.name.clone(),
        reservation: spec.reservation.key(),
        reservation_tag: spec.reservation.fingerprint_tag(),
        scenario: spec.scenario.name.to_string(),
        seed: spec.seed,
        hypercycles: spec.hypercycles,
        hypercycle_ns: hyper.as_nanos(),
        admitted: plan.admitted(),
        flows,
        ports,
        domain_fingerprints: domains.iter().map(|d| d.fingerprint).collect(),
        jitter_violations,
    })
}

/// A full backbone matrix: one topology × reservations × scenarios ×
/// seeds, in that (row-major) cell order.
#[derive(Debug, Clone)]
pub struct MatrixSpec {
    /// The topology under test.
    pub topology: &'static Topology,
    /// Reservation policies, outermost dimension.
    pub reservations: Vec<ReservationRef>,
    /// Fault scenarios.
    pub scenarios: Vec<Scenario>,
    /// Master seeds, innermost dimension.
    pub seeds: Vec<u64>,
    /// Hypercycles per cell.
    pub hypercycles: u64,
}

impl MatrixSpec {
    /// The pinned matrix `experiments backbone` and the golden corpus
    /// run: every reservation policy × {BER-7, BER-7 storm} × one seed.
    pub fn pinned(topology: &'static Topology) -> MatrixSpec {
        MatrixSpec {
            topology,
            reservations: ALL_RESERVATIONS.to_vec(),
            scenarios: vec![Scenario::ber7(), Scenario::ber7().storm()],
            seeds: vec![1],
            hypercycles: DEFAULT_HYPERCYCLES,
        }
    }

    /// The cells, in report order.
    pub fn cells(&self) -> Vec<CellSpec<'static>> {
        let mut cells = Vec::new();
        for &reservation in &self.reservations {
            for scenario in &self.scenarios {
                for &seed in &self.seeds {
                    cells.push(CellSpec {
                        topology: self.topology,
                        reservation,
                        scenario: scenario.clone(),
                        seed,
                        hypercycles: self.hypercycles,
                    });
                }
            }
        }
        cells
    }
}

/// Runs every cell of the matrix, fanning out over `threads` workers.
///
/// Workers claim cells from a shared queue and write results into the
/// cell's own slot, so the report vector — and every fingerprint in it —
/// is byte-identical for any worker count.
///
/// # Errors
/// Returns the first failing cell's [`BackboneError`] (by cell order).
pub fn run_matrix(spec: &MatrixSpec, threads: usize) -> Result<Vec<CellReport>, BackboneError> {
    let cells = spec.cells();
    let workers = threads.clamp(1, cells.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<Result<CellReport, BackboneError>>>> =
        Mutex::new(vec![None; cells.len()]);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let result = run_cell(&cells[i]);
                results.lock().expect("result lock")[i] = Some(result);
            });
        }
    });
    results
        .into_inner()
        .expect("result lock")
        .into_iter()
        .map(|slot| slot.expect("every cell claimed"))
        .collect()
}

/// Convenience: the pinned matrix on a named topology.
///
/// # Errors
/// Propagates unknown-topology and cell errors as [`BackboneError`].
pub fn run_pinned(topology: &str, threads: usize) -> Result<Vec<CellReport>, BackboneError> {
    let topology = topology::resolve(topology).map_err(err)?;
    run_matrix(&MatrixSpec::pinned(topology), threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reservation::{HYPERCYCLE, PER_CYCLE};

    fn quick_spec(reservation: ReservationRef) -> CellSpec<'static> {
        CellSpec {
            topology: topology::default_topology(),
            reservation,
            scenario: Scenario::ber7(),
            seed: 1,
            hypercycles: 4,
        }
    }

    #[test]
    fn paper_duplex_cell_delivers_flows() {
        let report = run_cell(&quick_spec(HYPERCYCLE)).unwrap();
        assert_eq!(report.admitted, 14);
        assert_eq!(report.jitter_violations, 0);
        let delivered: u64 = report.flows.iter().map(|f| f.counters.delivered).sum();
        assert!(delivered > 0, "no flow delivered end to end");
        for flow in report.flows.iter().filter(|f| f.admitted) {
            assert!(flow.counters.instances > 0);
            assert_eq!(
                flow.counters.instances,
                flow.counters.delivered + flow.counters.lost,
                "flow {} instance accounting",
                flow.flow
            );
        }
    }

    #[test]
    fn hypercycle_beats_per_cycle_admission() {
        let per_cycle = run_cell(&quick_spec(PER_CYCLE)).unwrap();
        let hyper = run_cell(&quick_spec(HYPERCYCLE)).unwrap();
        assert!(hyper.admitted > per_cycle.admitted);
    }

    #[test]
    fn reports_are_replayable_and_thread_invariant() {
        let a = run_cell(&quick_spec(PER_CYCLE)).unwrap();
        let b = run_cell(&quick_spec(PER_CYCLE)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let spec = MatrixSpec {
            hypercycles: 2,
            ..MatrixSpec::pinned(topology::default_topology())
        };
        let serial = run_matrix(&spec, 1).unwrap();
        let parallel = run_matrix(&spec, 4).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn tracing_is_pure_observation() {
        use std::sync::{Arc, Mutex};
        let sink = Arc::new(Mutex::new(observe::RingBufferSink::new(1 << 16)));
        let tracer = Tracer::new(sink.clone());
        let traced = run_cell_traced(&quick_spec(HYPERCYCLE), &tracer).unwrap();
        let untraced = run_cell(&quick_spec(HYPERCYCLE)).unwrap();
        assert_eq!(traced, untraced);
        let log = sink.lock().unwrap().take_log();
        assert!(
            log.events
                .iter()
                .any(|e| matches!(e.kind, observe::EventKind::EthernetFrame { .. })),
            "gateway emitted no ethernet events"
        );
    }
}
