//! Store-and-forward gateway runtime.
//!
//! Frames arrive from the FlexRay side (and the sensor CPU), wait in the
//! gateway queue, and leave through their flow's reserved gate windows.
//! The simulation is a deterministic fold over arrival order with an
//! explicit tie-break — `(arrival, flow id, instance)` — so reports are
//! invariant under worker-thread count.

use event_sim::{SimDuration, SimTime};
use observe::{EventKind, Tracer};

use crate::reservation::{window_start, ReservationPlan};
use crate::topology::Topology;

/// One frame's passage through the gateway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayOutcome {
    /// The flow.
    pub flow: u32,
    /// 0-based instance index within the flow.
    pub instance: u64,
    /// When the frame was ready at the gateway (max of sensor completion
    /// and FlexRay delivery).
    pub arrival: SimTime,
    /// Start of the gate window that carried the frame.
    pub departure: SimTime,
    /// End of the Ethernet transmission.
    pub delivery: SimTime,
    /// Whether the frame waited at least one full hypercycle for a
    /// reserved window (it arrived after the window's occurrence).
    pub missed_window: bool,
}

/// One frame awaiting forwarding: `(arrival, flow, instance)`.
pub type GatewayArrival = (SimTime, u32, u64);

/// Forwards `arrivals` through the plan's reserved windows.
///
/// Arrivals are processed in `(arrival, flow, instance)` order — the
/// deterministic store-and-forward tie-break. Each flow's instances
/// consume the flow's owned window occurrences in start order: an
/// instance departs at the earliest occurrence that is at or after its
/// arrival **and** strictly after the previous instance's departure (one
/// frame per window occurrence). Flows without an admitted plan entry
/// contribute no outcomes.
///
/// Every arrival emits an [`EventKind::GatewayQueued`] and every
/// departure an [`EventKind::EthernetFrame`] through `tracer`; tracing is
/// pure observation.
pub fn simulate_gateway(
    topology: &Topology,
    plan: &ReservationPlan,
    arrivals: &[GatewayArrival],
    tracer: &Tracer,
) -> Vec<GatewayOutcome> {
    let hyper = topology.hypercycle();
    let mut ordered: Vec<GatewayArrival> = arrivals.to_vec();
    ordered.sort();
    // Per-flow cursor: the last occupied window occurrence, so two
    // instances of one flow never share an occurrence.
    let mut last_departure: std::collections::BTreeMap<u32, SimTime> =
        std::collections::BTreeMap::new();
    let mut outcomes = Vec::with_capacity(ordered.len());
    for &(arrival, flow_id, instance) in &ordered {
        let Some(fp) = plan.flow_plan(flow_id).filter(|fp| fp.admitted) else {
            continue;
        };
        let flow = topology
            .flows
            .iter()
            .find(|f| f.id == flow_id)
            .expect("plan flows come from the topology");
        let port = fp.port;
        tracer.emit(
            arrival,
            EventKind::GatewayQueued {
                port: port as u8,
                flow: u64::from(flow_id),
                instance,
            },
        );
        let floor = match last_departure.get(&flow_id) {
            Some(&t) => t + SimDuration::from_nanos(1),
            None => SimTime::ZERO,
        };
        let earliest = arrival.max(floor);
        let departure = fp
            .windows
            .iter()
            .map(|&w| next_occurrence(window_start(topology, port, w), hyper, earliest))
            .min()
            .expect("admitted flows own at least one window");
        last_departure.insert(flow_id, departure);
        let duration = topology.tx_duration(port, flow.size_bits);
        let missed_window = departure.saturating_duration_since(arrival) >= hyper;
        tracer.emit(
            departure,
            EventKind::EthernetFrame {
                port: port as u8,
                flow: u64::from(flow_id),
                instance,
                payload_bits: u64::from(flow.size_bits),
                duration,
                missed_window,
            },
        );
        outcomes.push(GatewayOutcome {
            flow: flow_id,
            instance,
            arrival,
            departure,
            delivery: departure + duration,
            missed_window,
        });
    }
    outcomes
}

/// First occurrence of a pattern window (offset `start` into each
/// hypercycle) at or after `earliest`.
fn next_occurrence(start: SimDuration, hyper: SimDuration, earliest: SimTime) -> SimTime {
    let first = SimTime::ZERO + start;
    if earliest <= first {
        return first;
    }
    let gap = earliest.saturating_duration_since(first).as_nanos();
    let repeats = gap.div_ceil(hyper.as_nanos());
    first + hyper * repeats
}

/// Peak number of frames simultaneously inside the gateway per port
/// (queued but not yet departed), from a set of outcomes.
pub fn peak_queue_depths(topology: &Topology, outcomes: &[GatewayOutcome]) -> Vec<u64> {
    let mut peaks = vec![0u64; topology.ports.len()];
    for (port, peak) in peaks.iter_mut().enumerate() {
        // (time, +1 for arrival / -1 for departure); departures sort
        // before arrivals at the same instant, so a frame leaving as
        // another lands is not double-counted.
        let mut edges: Vec<(SimTime, i64)> = Vec::new();
        for o in outcomes {
            let flow = topology.flows.iter().find(|f| f.id == o.flow);
            if flow.map(|f| topology.egress_port(f)) != Some(port) {
                continue;
            }
            edges.push((o.arrival, 1));
            edges.push((o.departure, -1));
        }
        edges.sort_by_key(|&(t, delta)| (t, delta));
        let mut depth = 0i64;
        for (_, delta) in edges {
            depth += delta;
            *peak = (*peak).max(depth.max(0) as u64);
        }
    }
    peaks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reservation::PER_CYCLE;
    use crate::topology;

    #[test]
    fn next_occurrence_wraps_hypercycles() {
        let hyper = SimDuration::from_millis(10);
        let start = SimDuration::from_millis(3);
        assert_eq!(
            next_occurrence(start, hyper, SimTime::ZERO),
            SimTime::ZERO + start
        );
        assert_eq!(
            next_occurrence(start, hyper, SimTime::from_millis(3)),
            SimTime::from_millis(3)
        );
        assert_eq!(
            next_occurrence(start, hyper, SimTime::from_nanos(3_000_001)),
            SimTime::from_millis(13)
        );
    }

    #[test]
    fn instances_consume_distinct_occurrences() {
        let t = topology::default_topology();
        let plan = PER_CYCLE.plan(t);
        let flow = t.flows[0].id;
        // Two frames arriving together must take two different windows.
        let arrivals = vec![
            (SimTime::from_millis(1), flow, 0),
            (SimTime::from_millis(1), flow, 1),
        ];
        let out = simulate_gateway(t, &plan, &arrivals, &Tracer::disabled());
        assert_eq!(out.len(), 2);
        assert!(out[1].departure > out[0].departure);
        assert!(out.iter().all(|o| o.delivery > o.departure));
    }
}
