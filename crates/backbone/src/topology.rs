//! Backbone topologies: two FlexRay domains, one TT-Ethernet gateway.
//!
//! A [`Topology`] pins the shared FlexRay cluster geometry, the Ethernet
//! base period, the per-port gate-control lists and the end-to-end flow
//! population. Named presets live in a registry mirroring
//! [`coefficient::registry`] so topology names flow from CLI flags and
//! corpus files straight to [`resolve`].

use std::sync::OnceLock;

use event_sim::{SimDuration, SimTime};
use flexray::config::ClusterConfig;

/// Number of FlexRay domains a gateway bridges. Frames from domain `d`
/// leave the gateway through egress port `d`.
pub const DOMAINS: u8 = 2;

/// Task-id offset distinguishing actuator tasks from sensor tasks on a
/// domain CPU (sensor task id = flow id, actuator task id = flow id +
/// this).
pub const ACTUATOR_TASK_BASE: u32 = 1_000_000;

/// One TT-Ethernet egress port of the gateway: a link rate plus a
/// gate-control list of `gates` equal windows per base period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortSpec {
    /// Link rate in bits per second.
    pub rate_bps: u64,
    /// Gate windows per Ethernet base period. The base period must divide
    /// evenly into this many windows.
    pub gates: u32,
}

/// One end-to-end flow: sensor task → FlexRay slot → gateway queue →
/// Ethernet gate window → actuator task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSpec {
    /// Flow identifier; doubles as the FlexRay frame id on the source
    /// domain and the sensor task id on the source CPU.
    pub id: u32,
    /// Domain producing the flow (0 or 1); the flow leaves the gateway
    /// through egress port `source_domain`.
    pub source_domain: u8,
    /// Payload length in bits, used on both the FlexRay and Ethernet legs.
    pub size_bits: u32,
    /// Generation period of the sensor task and the FlexRay signal. Must
    /// divide the topology hypercycle.
    pub period: SimDuration,
    /// Worst-case execution time of the sensor task.
    pub sensor_wcet: SimDuration,
    /// Worst-case execution time of the actuator task.
    pub actuator_wcet: SimDuration,
    /// Declared bound on end-to-end jitter (max − min observed latency);
    /// the runner flags flows whose observed jitter exceeds it.
    pub jitter_bound: SimDuration,
}

impl FlowSpec {
    /// The domain whose CPU runs the actuator task (the other domain).
    pub fn dest_domain(&self) -> u8 {
        1 - self.source_domain
    }

    /// Release instant of the flow's `k`-th instance (offset-free).
    pub fn release(&self, k: u64) -> SimTime {
        SimTime::ZERO + self.period * k
    }
}

/// A full backbone topology: cluster geometry shared by both FlexRay
/// domains, the Ethernet schedule and the flow population.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Registry name (e.g. `paper-duplex`).
    pub name: String,
    /// One-line description for `--help`-style listings.
    pub summary: String,
    /// FlexRay geometry used by both domains.
    pub cluster: ClusterConfig,
    /// Ethernet base period; the GCL repeats every base period unless a
    /// hypercycle-level reservation policy overrides it.
    pub eth_base: SimDuration,
    /// Egress ports, indexed by source domain (always [`DOMAINS`] many).
    pub ports: Vec<PortSpec>,
    /// The end-to-end flows.
    pub flows: Vec<FlowSpec>,
}

impl Topology {
    /// The hypercycle: LCM of the FlexRay cycle and the Ethernet base
    /// period.
    pub fn hypercycle(&self) -> SimDuration {
        self.cluster.hypercycle(self.eth_base)
    }

    /// Ethernet base periods per hypercycle.
    pub fn base_periods_per_hypercycle(&self) -> u64 {
        self.hypercycle().as_nanos() / self.eth_base.as_nanos()
    }

    /// Duration of one gate window on `port`.
    pub fn gate_length(&self, port: usize) -> SimDuration {
        self.eth_base / u64::from(self.ports[port].gates)
    }

    /// Wire occupancy of a `bits`-bit frame on `port` (ceiling in
    /// nanoseconds).
    pub fn tx_duration(&self, port: usize, bits: u32) -> SimDuration {
        let ns = (u64::from(bits) * 1_000_000_000).div_ceil(self.ports[port].rate_bps);
        SimDuration::from_nanos(ns)
    }

    /// Egress port carrying `flow` (its source domain's port).
    pub fn egress_port(&self, flow: &FlowSpec) -> usize {
        usize::from(flow.source_domain)
    }

    /// Instances of `flow` released per hypercycle.
    pub fn instances_per_hypercycle(&self, flow: &FlowSpec) -> u64 {
        self.hypercycle().as_nanos() / flow.period.as_nanos()
    }

    /// Structural validation; every registry preset passes.
    ///
    /// # Errors
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.ports.len() != usize::from(DOMAINS) {
            return Err(format!(
                "topology {:?} must have exactly {DOMAINS} egress ports",
                self.name
            ));
        }
        for (i, port) in self.ports.iter().enumerate() {
            if port.gates == 0 || port.rate_bps == 0 {
                return Err(format!("port {i} must have gates and a link rate"));
            }
            if !self
                .eth_base
                .as_nanos()
                .is_multiple_of(u64::from(port.gates))
            {
                return Err(format!(
                    "port {i}: base period {} ns does not divide into {} gates",
                    self.eth_base.as_nanos(),
                    port.gates
                ));
            }
        }
        let hyper = self.hypercycle().as_nanos();
        let mut seen = std::collections::BTreeSet::new();
        for flow in &self.flows {
            if !seen.insert(flow.id) {
                return Err(format!("duplicate flow id {}", flow.id));
            }
            if flow.source_domain >= DOMAINS {
                return Err(format!("flow {}: bad source domain", flow.id));
            }
            if flow.period.is_zero() || !hyper.is_multiple_of(flow.period.as_nanos()) {
                return Err(format!(
                    "flow {}: period {} ns must divide the hypercycle {} ns",
                    flow.id,
                    flow.period.as_nanos(),
                    hyper
                ));
            }
            if flow.size_bits == 0 || flow.sensor_wcet.is_zero() || flow.actuator_wcet.is_zero() {
                return Err(format!("flow {}: zero size or wcet", flow.id));
            }
            if flow.jitter_bound.is_zero() {
                return Err(format!("flow {}: zero jitter bound", flow.id));
            }
        }
        Ok(())
    }
}

fn flow(
    id: u32,
    source_domain: u8,
    size_bits: u32,
    period_ms: u64,
    jitter_bound_ms: u64,
) -> FlowSpec {
    FlowSpec {
        id,
        source_domain,
        size_bits,
        period: SimDuration::from_millis(period_ms),
        sensor_wcet: SimDuration::from_micros(100),
        actuator_wcet: SimDuration::from_micros(100),
        jitter_bound: SimDuration::from_millis(jitter_bound_ms),
    }
}

/// `paper-duplex`: the paper's mixed geometry on both domains, a 2 ms
/// Ethernet base period (hypercycle 10 ms) and 8 × 250 µs gates per
/// 100 Mb/s port. Port 0 carries ten forward flows — two more than the
/// per-cycle baseline's eight gate columns, so the hypercycle policy's
/// reclaimed windows are visible as extra admissions.
fn paper_duplex() -> Topology {
    let mut flows = Vec::new();
    // Ten forward flows (domain 0 → 1): six at 5 ms, four at 10 ms.
    for id in 1..=6u32 {
        flows.push(flow(id, 0, 800 + 128 * id, 5, 16));
    }
    for id in 7..=10u32 {
        flows.push(flow(id, 0, 1200 + 64 * id, 10, 21));
    }
    // Four reverse flows (domain 1 → 0) at 10 ms; admitted by both
    // policies, they keep the second domain and port busy.
    for id in 11..=14u32 {
        flows.push(flow(id, 1, 640 + 96 * id, 10, 21));
    }
    Topology {
        name: "paper-duplex".into(),
        summary: "paper mixed geometry ×2, 2 ms base, 8 gates/port, 14 flows (10 forward)".into(),
        cluster: ClusterConfig::paper_mixed(50),
        eth_base: SimDuration::from_millis(2),
        ports: vec![
            PortSpec {
                rate_bps: 100_000_000,
                gates: 8,
            },
            PortSpec {
                rate_bps: 100_000_000,
                gates: 8,
            },
        ],
        flows,
    }
}

/// `tight-backbone`: a 2.5 ms base period (hypercycle 5 ms) with only
/// 4 × 625 µs gates per port; six forward flows contend for four gate
/// columns, so the per-cycle baseline rejects two that the hypercycle
/// policy recovers.
fn tight_backbone() -> Topology {
    let mut flows = Vec::new();
    for id in 1..=6u32 {
        flows.push(flow(id, 0, 512 + 100 * id, 5, 11));
    }
    for id in 7..=8u32 {
        flows.push(flow(id, 1, 1024, 5, 11));
    }
    Topology {
        name: "tight-backbone".into(),
        summary: "2.5 ms base, 4 gates/port, 8 flows (6 forward vs 4 columns)".into(),
        cluster: ClusterConfig::paper_mixed(50),
        eth_base: SimDuration::from_nanos(2_500_000),
        ports: vec![
            PortSpec {
                rate_bps: 100_000_000,
                gates: 4,
            },
            PortSpec {
                rate_bps: 100_000_000,
                gates: 4,
            },
        ],
        flows,
    }
}

/// Every registered topology, in registry order.
pub fn all() -> &'static [Topology] {
    static TOPOLOGIES: OnceLock<Vec<Topology>> = OnceLock::new();
    TOPOLOGIES.get_or_init(|| {
        let presets = vec![paper_duplex(), tight_backbone()];
        for preset in &presets {
            preset
                .validate()
                .unwrap_or_else(|e| panic!("invalid preset topology: {e}"));
        }
        presets
    })
}

/// Registered topology names, in registry order.
pub fn names() -> Vec<&'static str> {
    all().iter().map(|t| t.name.as_str()).collect()
}

/// The default topology for pinned matrices (`paper-duplex`).
pub fn default_topology() -> &'static Topology {
    &all()[0]
}

/// Error returned by [`resolve`] for unregistered names; its display
/// lists every valid name, mirroring [`coefficient::UnknownPolicy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownTopology {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown topology {:?} (registered: {})",
            self.name,
            names().join(", ")
        )
    }
}

impl std::error::Error for UnknownTopology {}

/// Resolves a topology by name (case-insensitive, trimmed).
///
/// # Errors
/// Returns [`UnknownTopology`] — whose message lists every registered
/// name — when nothing matches.
pub fn resolve(name: &str) -> Result<&'static Topology, UnknownTopology> {
    let want = name.trim().to_ascii_lowercase();
    all()
        .iter()
        .find(|t| t.name == want)
        .ok_or_else(|| UnknownTopology {
            name: name.trim().to_string(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_resolve() {
        assert_eq!(names(), vec!["paper-duplex", "tight-backbone"]);
        for preset in all() {
            assert_eq!(resolve(preset.name.as_str()).unwrap().name, preset.name);
        }
        assert_eq!(resolve("  Paper-Duplex ").unwrap().name, "paper-duplex");
    }

    #[test]
    fn unknown_topology_lists_registry() {
        let err = resolve("nope").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown topology \"nope\""), "{msg}");
        for name in names() {
            assert!(msg.contains(name), "{msg} missing {name}");
        }
    }

    #[test]
    fn paper_duplex_arithmetic() {
        let t = default_topology();
        assert_eq!(t.hypercycle(), SimDuration::from_millis(10));
        assert_eq!(t.base_periods_per_hypercycle(), 5);
        assert_eq!(t.gate_length(0), SimDuration::from_micros(250));
        // 1600 bits at 100 Mb/s = 16 µs, comfortably inside a gate.
        assert_eq!(t.tx_duration(0, 1600), SimDuration::from_micros(16));
        assert_eq!(t.instances_per_hypercycle(&t.flows[0]), 2);
    }
}
