//! Property tests for gate-control-list window arithmetic.
//!
//! Over random topologies, every reservation policy must produce plans
//! where (1) no two reserved windows on one egress port overlap in
//! absolute time, (2) every admitted frame's transmission fits inside
//! one gate window, and (3) the hypercycle policy admits a superset of
//! the per-cycle baseline's flows.

use backbone::reservation::{window_start, ALL_RESERVATIONS, HYPERCYCLE, PER_CYCLE};
use backbone::topology::{FlowSpec, PortSpec, Topology};
use event_sim::SimDuration;
use flexray::config::ClusterConfig;
use proptest::prelude::*;

/// Gate counts that divide every candidate base period evenly.
const GATE_CHOICES: [u32; 5] = [1, 2, 4, 5, 8];
/// Candidate Ethernet base periods, nanoseconds.
const BASE_CHOICES: [u64; 3] = [1_000_000, 2_000_000, 2_500_000];
/// Candidate flow periods, nanoseconds (filtered against the hypercycle).
const PERIOD_CHOICES: [u64; 4] = [1_000_000, 2_500_000, 5_000_000, 10_000_000];

/// Builds a structurally valid random topology from raw draws. Flow
/// periods that do not divide the hypercycle fall back to the FlexRay
/// cycle (5 ms), which always divides it.
fn build_topology(
    base_idx: usize,
    gate_idx: [usize; 2],
    flow_draws: Vec<(u8, usize, u32)>,
) -> Topology {
    let eth_base = SimDuration::from_nanos(BASE_CHOICES[base_idx]);
    let cluster = ClusterConfig::paper_mixed(50);
    let hyper = cluster.hypercycle(eth_base).as_nanos();
    let flows = flow_draws
        .into_iter()
        .enumerate()
        .map(|(i, (source, period_idx, size_bits))| {
            let mut period = PERIOD_CHOICES[period_idx];
            if !hyper.is_multiple_of(period) {
                period = 5_000_000;
            }
            FlowSpec {
                id: 1 + i as u32,
                source_domain: source % 2,
                size_bits,
                period: SimDuration::from_nanos(period),
                sensor_wcet: SimDuration::from_micros(50),
                actuator_wcet: SimDuration::from_micros(50),
                jitter_bound: SimDuration::from_millis(100),
            }
        })
        .collect();
    Topology {
        name: "random".into(),
        summary: "property-test draw".into(),
        cluster,
        eth_base,
        ports: gate_idx
            .iter()
            .map(|&g| PortSpec {
                rate_bps: 100_000_000,
                gates: GATE_CHOICES[g],
            })
            .collect(),
        flows,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No two reserved windows on one egress port overlap in absolute
    /// time, under either policy.
    #[test]
    fn reserved_windows_never_overlap(
        base_idx in 0usize..3,
        g0 in 0usize..5,
        g1 in 0usize..5,
        flow_draws in proptest::collection::vec(
            (0u8..2, 0usize..4, 64u32..4096), 0..12),
    ) {
        let t = build_topology(base_idx, [g0, g1], flow_draws);
        prop_assert!(t.validate().is_ok(), "generator built invalid topology");
        for policy in ALL_RESERVATIONS {
            let plan = policy.plan(&t);
            for (port, pp) in plan.ports.iter().enumerate() {
                let gate_len = t.gate_length(port);
                let mut intervals: Vec<(u64, u64)> = (0..pp.occupancy.len() as u64)
                    .filter(|&w| pp.occupancy[w as usize].is_some())
                    .map(|w| {
                        let start = window_start(&t, port, w).as_nanos();
                        (start, start + gate_len.as_nanos())
                    })
                    .collect();
                intervals.sort_unstable();
                for pair in intervals.windows(2) {
                    prop_assert!(
                        pair[0].1 <= pair[1].0,
                        "{}: port {port} windows overlap: {pair:?}",
                        policy.key()
                    );
                }
            }
        }
    }

    /// Every admitted frame's wire time fits inside one gate window, and
    /// each admitted flow's windows are really owned by it.
    #[test]
    fn admitted_frames_fit_their_windows(
        base_idx in 0usize..3,
        g0 in 0usize..5,
        g1 in 0usize..5,
        flow_draws in proptest::collection::vec(
            (0u8..2, 0usize..4, 64u32..262_144), 0..12),
    ) {
        let t = build_topology(base_idx, [g0, g1], flow_draws);
        for policy in ALL_RESERVATIONS {
            let plan = policy.plan(&t);
            for (fp, flow) in plan.flows.iter().zip(&t.flows) {
                if !fp.admitted {
                    continue;
                }
                prop_assert!(
                    t.tx_duration(fp.port, flow.size_bits) <= t.gate_length(fp.port),
                    "{}: flow {} admitted but frame exceeds its window",
                    policy.key(),
                    fp.flow
                );
                prop_assert!(!fp.windows.is_empty());
                for &w in &fp.windows {
                    prop_assert_eq!(
                        plan.ports[fp.port].occupancy[w as usize],
                        Some(fp.flow)
                    );
                }
            }
        }
    }

    /// The hypercycle policy admits every flow the per-cycle baseline
    /// admits (and possibly more) on any random topology.
    #[test]
    fn hypercycle_admission_dominates_per_cycle(
        base_idx in 0usize..3,
        g0 in 0usize..5,
        g1 in 0usize..5,
        flow_draws in proptest::collection::vec(
            (0u8..2, 0usize..4, 64u32..4096), 0..12),
    ) {
        let t = build_topology(base_idx, [g0, g1], flow_draws);
        let per_cycle = PER_CYCLE.plan(&t);
        let hyper = HYPERCYCLE.plan(&t);
        prop_assert!(hyper.admitted() >= per_cycle.admitted());
        for (a, b) in per_cycle.flows.iter().zip(&hyper.flows) {
            prop_assert!(
                !a.admitted || b.admitted,
                "flow {} admitted per-cycle but rejected at hypercycle level",
                a.flow
            );
        }
    }
}
