//! **observe** — structured event tracing and time-series observability
//! for deterministic simulation runs.
//!
//! The rest of the workspace reports end-of-run aggregates (run counters,
//! latency summaries). This crate turns any run into an inspectable
//! *timeline*: instrumented components emit typed [`TraceEvent`]s through
//! a cloneable [`Tracer`] handle into a bounded [`TraceSink`], and the
//! captured [`TraceLog`] exports to a Chrome `trace_event` JSON file
//! (loadable in Perfetto or `chrome://tracing`) via [`chrome`].
//!
//! Design contract:
//!
//! * **Zero-cost when disabled.** A disabled [`Tracer`] is a `None`; every
//!   emit site guards on [`Tracer::is_enabled`], so the untraced path adds
//!   one predictable branch and allocates nothing. Enabling tracing must
//!   never change simulation behaviour — traces observe, they do not
//!   perturb, so run fingerprints are identical with tracing on or off.
//! * **Bounded overhead when enabled.** The standard sink is a
//!   [`RingBufferSink`] with a fixed capacity: old events are dropped (and
//!   counted) rather than growing memory without bound.
//! * **Deterministic.** Events carry integer simulation time and integer
//!   payloads only. The same run produces the bit-identical event stream
//!   on every replay and at any worker-thread count.
//!
//! ```
//! use event_sim::SimTime;
//! use observe::{EventKind, RingBufferSink, TraceSink, Tracer};
//! use std::sync::{Arc, Mutex};
//!
//! let sink = Arc::new(Mutex::new(RingBufferSink::new(16)));
//! let tracer = Tracer::new(sink.clone());
//! if tracer.is_enabled() {
//!     tracer.emit(SimTime::from_micros(5), EventKind::CycleStart { cycle: 0 });
//! }
//! let log = sink.lock().unwrap().take_log();
//! assert_eq!(log.events.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chrome;
mod event;
mod sampler;
mod sink;

pub use chrome::chrome_trace_json;
pub use event::{EventKind, HealthScope, TraceEvent, TraceLog};
pub use sampler::CounterSampler;
pub use sink::{NullSink, RingBufferSink, TraceSink, Tracer};

/// How (and whether) a run records its trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// No tracing: the zero-cost default.
    Off,
    /// Record into a [`RingBufferSink`] holding at most `capacity` events.
    Ring {
        /// Maximum number of retained events; older events are dropped
        /// (and counted in [`TraceLog::dropped`]) once full.
        capacity: usize,
    },
}

/// Per-run trace configuration, carried by the simulation's run config.
///
/// The default is [`TraceMode::Off`], which keeps the untraced path
/// byte-identical to a build without this crate wired in at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Sink selection.
    pub mode: TraceMode,
    /// Snapshot the run counters as a [`EventKind::CounterSample`] every
    /// this many cycles (`0` disables sampling).
    pub counter_sample_every: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

impl TraceConfig {
    /// Tracing disabled (the default).
    pub const fn off() -> Self {
        TraceConfig {
            mode: TraceMode::Off,
            counter_sample_every: 0,
        }
    }

    /// Ring-buffer tracing with the given event capacity and no counter
    /// sampling; chain [`sample_every`](Self::sample_every) to add it.
    pub const fn ring(capacity: usize) -> Self {
        TraceConfig {
            mode: TraceMode::Ring { capacity },
            counter_sample_every: 0,
        }
    }

    /// Sets the counter-sampling period in cycles (`0` disables).
    #[must_use]
    pub const fn sample_every(mut self, cycles: u64) -> Self {
        self.counter_sample_every = cycles;
        self
    }

    /// Whether any events will be recorded.
    pub fn is_enabled(&self) -> bool {
        self.mode != TraceMode::Off
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_off() {
        let cfg = TraceConfig::default();
        assert_eq!(cfg.mode, TraceMode::Off);
        assert_eq!(cfg.counter_sample_every, 0);
        assert!(!cfg.is_enabled());
    }

    #[test]
    fn ring_config_builder() {
        let cfg = TraceConfig::ring(1024).sample_every(10);
        assert_eq!(cfg.mode, TraceMode::Ring { capacity: 1024 });
        assert_eq!(cfg.counter_sample_every, 10);
        assert!(cfg.is_enabled());
    }
}
