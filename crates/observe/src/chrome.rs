//! Chrome `trace_event` JSON export.
//!
//! [`chrome_trace_json`] renders a [`TraceLog`] as the JSON object format
//! understood by Perfetto (<https://ui.perfetto.dev>) and
//! `chrome://tracing`: one process, with channels, the scheduler, the
//! health monitors, counter samples and CPU slices as named tracks.
//! Frame transmissions become complete (`"ph":"X"`) events with their
//! wire occupancy as duration; decisions (steals, sheds, mirrors, fault
//! hits) become track-scoped instants; counter samples and health states
//! become counter (`"ph":"C"`) series.
//!
//! The writer is self-contained string building (the crate has no JSON
//! dependency); all emitted strings are ASCII, so no escaping beyond the
//! JSON string quoting of fixed labels is needed.

use crate::event::{EventKind, TraceLog};

/// Track (thread) ids inside the exported process.
const TID_CHANNEL_A: u32 = 0;
const TID_CHANNEL_B: u32 = 1;
const TID_SCHEDULER: u32 = 2;
const TID_HEALTH: u32 = 3;
const TID_COUNTERS: u32 = 4;
const TID_CPU: u32 = 5;
const TID_GATEWAY: u32 = 6;
const TID_ETHERNET: u32 = 7;

fn channel_tid(channel: u8) -> u32 {
    if channel == 0 {
        TID_CHANNEL_A
    } else {
        TID_CHANNEL_B
    }
}

/// Microsecond timestamp with nanosecond precision (Chrome `ts` is in
/// microseconds; fractional digits keep the integer nanoseconds exact).
fn ts(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

fn health_name(state: u8) -> &'static str {
    match state {
        0 => "Nominal",
        1 => "Stressed",
        2 => "Storm",
        _ => "?",
    }
}

fn scope_name(scope: u8) -> &'static str {
    match scope {
        0 => "channel-A",
        1 => "channel-B",
        2 => "bus",
        _ => "effective",
    }
}

struct Writer {
    out: String,
    first: bool,
}

impl Writer {
    fn new() -> Self {
        Writer {
            out: String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"),
            first: true,
        }
    }

    fn push(&mut self, event: &str) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push_str(event);
    }

    fn meta_thread(&mut self, tid: u32, name: &str, sort: u32) {
        self.push(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        ));
        self.push(&format!(
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"sort_index\":{sort}}}}}"
        ));
    }

    fn instant(&mut self, name: &str, tid: u32, at_ns: u64, args: &str) {
        self.push(&format!(
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\
             \"ts\":{},\"args\":{{{args}}}}}",
            ts(at_ns)
        ));
    }

    fn complete(&mut self, name: &str, tid: u32, at_ns: u64, dur_ns: u64, args: &str) {
        self.push(&format!(
            "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\
             \"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
            ts(at_ns),
            ts(dur_ns)
        ));
    }

    fn counter(&mut self, name: &str, at_ns: u64, series: &str, value: u64) {
        self.push(&format!(
            "{{\"name\":\"{name}\",\"ph\":\"C\",\"pid\":1,\"tid\":{TID_COUNTERS},\
             \"ts\":{},\"args\":{{\"{series}\":{value}}}}}",
            ts(at_ns)
        ));
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

/// Renders a captured log as a Chrome `trace_event` JSON document.
///
/// `counter_names` labels the values of
/// [`EventKind::CounterSample`] events, in order; extra values fall back
/// to positional names.
pub fn chrome_trace_json(log: &TraceLog, counter_names: &[&str]) -> String {
    let mut w = Writer::new();
    w.meta_thread(TID_CHANNEL_A, "Channel A", 0);
    w.meta_thread(TID_CHANNEL_B, "Channel B", 1);
    w.meta_thread(TID_SCHEDULER, "Scheduler", 2);
    w.meta_thread(TID_HEALTH, "Health", 3);
    w.meta_thread(TID_COUNTERS, "Counters", 4);
    w.meta_thread(TID_CPU, "CPU", 5);
    w.meta_thread(TID_GATEWAY, "Gateway", 6);
    w.meta_thread(TID_ETHERNET, "Ethernet", 7);

    for event in &log.events {
        let at = event.at.as_nanos();
        match &event.kind {
            EventKind::CycleStart { cycle } => {
                w.instant("cycle", TID_SCHEDULER, at, &format!("\"cycle\":{cycle}"));
            }
            EventKind::SlotFrame {
                channel,
                slot,
                frame_id,
                payload_bits,
                duration,
                corrupted,
            } => {
                w.complete(
                    &format!("slot {slot} · frame {frame_id}"),
                    channel_tid(*channel),
                    at,
                    duration.as_nanos(),
                    &format!(
                        "\"slot\":{slot},\"frame_id\":{frame_id},\
                         \"payload_bits\":{payload_bits},\"corrupted\":{corrupted}"
                    ),
                );
            }
            EventKind::MinislotFrame {
                channel,
                slot_counter,
                minislot,
                frame_id,
                payload_bits,
                duration,
                corrupted,
            } => {
                w.complete(
                    &format!("minislot {minislot} · frame {frame_id}"),
                    channel_tid(*channel),
                    at,
                    duration.as_nanos(),
                    &format!(
                        "\"slot_counter\":{slot_counter},\"minislot\":{minislot},\
                         \"frame_id\":{frame_id},\"payload_bits\":{payload_bits},\
                         \"corrupted\":{corrupted}"
                    ),
                );
            }
            EventKind::FaultHit {
                channel,
                frame_id,
                in_burst,
            } => {
                w.instant(
                    "fault",
                    channel_tid(*channel),
                    at,
                    &format!("\"frame_id\":{frame_id},\"in_burst\":{in_burst}"),
                );
            }
            EventKind::StealGranted {
                channel,
                slot,
                frame_id,
            } => {
                w.instant(
                    "steal granted",
                    TID_SCHEDULER,
                    at,
                    &format!("\"channel\":{channel},\"slot\":{slot},\"frame_id\":{frame_id}"),
                );
            }
            EventKind::StealDenied { channel, slot } => {
                w.instant(
                    "steal denied",
                    TID_SCHEDULER,
                    at,
                    &format!("\"channel\":{channel},\"slot\":{slot}"),
                );
            }
            EventKind::EarlyCopy {
                channel,
                slot,
                frame_id,
            } => {
                w.instant(
                    "early copy",
                    TID_SCHEDULER,
                    at,
                    &format!("\"channel\":{channel},\"slot\":{slot},\"frame_id\":{frame_id}"),
                );
            }
            EventKind::RetransmissionCopy { channel, frame_id } => {
                w.instant(
                    "retransmission copy",
                    TID_SCHEDULER,
                    at,
                    &format!("\"channel\":{channel},\"frame_id\":{frame_id}"),
                );
            }
            EventKind::SoftShed {
                frame_id,
                criticality,
            } => {
                w.instant(
                    "soft shed",
                    TID_SCHEDULER,
                    at,
                    &format!("\"frame_id\":{frame_id},\"criticality\":{criticality}"),
                );
            }
            EventKind::DegradedCopy {
                channel,
                slot,
                frame_id,
            } => {
                w.instant(
                    "degraded copy",
                    TID_SCHEDULER,
                    at,
                    &format!("\"channel\":{channel},\"slot\":{slot},\"frame_id\":{frame_id}"),
                );
            }
            EventKind::FailoverMirror {
                channel,
                slot,
                frame_id,
            } => {
                w.instant(
                    "failover mirror",
                    TID_SCHEDULER,
                    at,
                    &format!("\"channel\":{channel},\"slot\":{slot},\"frame_id\":{frame_id}"),
                );
            }
            EventKind::HealthTransition { scope, from, to } => {
                w.instant(
                    &format!(
                        "health {} {} → {}",
                        scope_name(*scope),
                        health_name(*from),
                        health_name(*to)
                    ),
                    TID_HEALTH,
                    at,
                    &format!("\"scope\":{scope},\"from\":{from},\"to\":{to}"),
                );
                w.push(&format!(
                    "{{\"name\":\"health {}\",\"ph\":\"C\",\"pid\":1,\"tid\":{TID_HEALTH},\
                     \"ts\":{},\"args\":{{\"state\":{to}}}}}",
                    scope_name(*scope),
                    ts(at)
                ));
            }
            EventKind::CounterSample { cycle: _, values } => {
                for (i, &value) in values.iter().enumerate() {
                    let name = counter_names
                        .get(i)
                        .copied()
                        .map(String::from)
                        .unwrap_or_else(|| format!("counter_{i}"));
                    w.counter(&name, at, "value", value);
                }
            }
            EventKind::CpuSlice {
                end,
                kind,
                task,
                job,
            } => {
                let label = match kind {
                    0 => format!("task {task} · job {job}"),
                    1 => format!("aperiodic · job {job}"),
                    _ => "idle".to_string(),
                };
                w.complete(
                    &label,
                    TID_CPU,
                    at,
                    end.as_nanos().saturating_sub(at),
                    &format!("\"kind\":{kind},\"task\":{task},\"job\":{job}"),
                );
            }
            EventKind::CpuStealGranted { budget } => {
                w.instant(
                    "cpu steal granted",
                    TID_CPU,
                    at,
                    &format!("\"budget_ns\":{}", budget.as_nanos()),
                );
            }
            EventKind::CpuStealDenied => {
                w.instant("cpu steal denied", TID_CPU, at, "");
            }
            EventKind::GatewayQueued {
                port,
                flow,
                instance,
            } => {
                w.instant(
                    "gateway queued",
                    TID_GATEWAY,
                    at,
                    &format!("\"port\":{port},\"flow\":{flow},\"instance\":{instance}"),
                );
            }
            EventKind::EthernetFrame {
                port,
                flow,
                instance,
                payload_bits,
                duration,
                missed_window,
            } => {
                w.complete(
                    &format!("flow {flow} · instance {instance}"),
                    TID_ETHERNET,
                    at,
                    duration.as_nanos(),
                    &format!(
                        "\"port\":{port},\"flow\":{flow},\"instance\":{instance},\
                         \"payload_bits\":{payload_bits},\"missed_window\":{missed_window}"
                    ),
                );
            }
        }
    }

    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use event_sim::{SimDuration, SimTime};

    fn log_with(kinds: Vec<EventKind>) -> TraceLog {
        TraceLog {
            events: kinds
                .into_iter()
                .enumerate()
                .map(|(i, kind)| TraceEvent {
                    at: SimTime::from_micros(i as u64),
                    kind,
                })
                .collect(),
            dropped: 0,
            capacity: 64,
        }
    }

    #[test]
    fn exports_every_event_kind_without_panicking() {
        let log = log_with(vec![
            EventKind::CycleStart { cycle: 1 },
            EventKind::SlotFrame {
                channel: 0,
                slot: 3,
                frame_id: 3,
                payload_bits: 128,
                duration: SimDuration::from_micros(40),
                corrupted: false,
            },
            EventKind::MinislotFrame {
                channel: 1,
                slot_counter: 81,
                minislot: 4,
                frame_id: 90,
                payload_bits: 64,
                duration: SimDuration::from_micros(10),
                corrupted: true,
            },
            EventKind::FaultHit {
                channel: 1,
                frame_id: 90,
                in_burst: true,
            },
            EventKind::StealGranted {
                channel: 0,
                slot: 5,
                frame_id: 7,
            },
            EventKind::StealDenied {
                channel: 1,
                slot: 6,
            },
            EventKind::EarlyCopy {
                channel: 0,
                slot: 8,
                frame_id: 9,
            },
            EventKind::RetransmissionCopy {
                channel: 1,
                frame_id: 10,
            },
            EventKind::SoftShed {
                frame_id: 11,
                criticality: 1,
            },
            EventKind::DegradedCopy {
                channel: 0,
                slot: 12,
                frame_id: 13,
            },
            EventKind::FailoverMirror {
                channel: 1,
                slot: 14,
                frame_id: 15,
            },
            EventKind::HealthTransition {
                scope: 3,
                from: 0,
                to: 2,
            },
            EventKind::CounterSample {
                cycle: 4,
                values: vec![1, 2, 3],
            },
            EventKind::CpuSlice {
                end: SimTime::from_micros(20),
                kind: 0,
                task: 2,
                job: 5,
            },
            EventKind::CpuStealGranted {
                budget: SimDuration::from_micros(100),
            },
            EventKind::CpuStealDenied,
            EventKind::GatewayQueued {
                port: 0,
                flow: 3,
                instance: 7,
            },
            EventKind::EthernetFrame {
                port: 1,
                flow: 3,
                instance: 7,
                payload_bits: 512,
                duration: SimDuration::from_micros(6),
                missed_window: true,
            },
        ]);
        let json = chrome_trace_json(&log, &["a", "b"]);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"Channel A\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(
            json.contains("counter_2"),
            "extra values get positional names"
        );
        // Balanced braces/brackets (cheap well-formedness check; the full
        // parse-back check lives in the bench crate's schema validator).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn timestamps_keep_nanosecond_precision() {
        assert_eq!(ts(1_234), "1.234");
        assert_eq!(ts(5), "0.005");
        assert_eq!(ts(1_000_000), "1000.000");
    }

    #[test]
    fn empty_log_exports_only_metadata() {
        let json = chrome_trace_json(&TraceLog::default(), &[]);
        assert!(json.contains("thread_name"));
        assert!(!json.contains("\"ph\":\"X\""));
    }
}
