//! Periodic counter sampling.

/// Decides which cycles snapshot the run counters into a
/// [`EventKind::CounterSample`](crate::EventKind::CounterSample) event.
///
/// The sampler is pure arithmetic over the cycle number, so sampled runs
/// stay deterministic at any worker-thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSampler {
    every: u64,
}

impl CounterSampler {
    /// Samples every `every` cycles (`0` disables sampling).
    pub const fn new(every: u64) -> Self {
        CounterSampler { every }
    }

    /// The sampling period in cycles (`0` = disabled).
    pub const fn period(&self) -> u64 {
        self.every
    }

    /// Whether the counters should be sampled after `cycle` ran.
    pub fn should_sample(&self, cycle: u64) -> bool {
        self.every != 0 && cycle.is_multiple_of(self.every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_period_never_samples() {
        let s = CounterSampler::new(0);
        assert!((0..100).all(|c| !s.should_sample(c)));
        assert_eq!(s.period(), 0);
    }

    #[test]
    fn samples_on_multiples() {
        let s = CounterSampler::new(10);
        assert!(s.should_sample(0));
        assert!(s.should_sample(10));
        assert!(!s.should_sample(11));
        assert_eq!((0..=100).filter(|&c| s.should_sample(c)).count(), 11);
    }
}
