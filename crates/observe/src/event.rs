//! The typed event model.
//!
//! Everything in a [`TraceEvent`] is an integer (simulation nanoseconds,
//! indices, counts, small enums encoded as `u8`), so event streams derive
//! `Eq` and two replays of the same run compare bit for bit.

use event_sim::{SimDuration, SimTime};

/// One recorded event: an instant on the simulated clock plus a typed
/// payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event happened, on the simulated clock.
    pub at: SimTime,
    /// What happened.
    pub kind: EventKind,
}

/// Channel scope used by [`EventKind::HealthTransition`].
///
/// `0` = channel A's monitor, `1` = channel B's monitor, `2` = the
/// bus-wide (merged-counters) monitor, `3` = the *effective* health the
/// scheduler reacts to (worst of the three).
pub type HealthScope = u8;

/// The taxonomy of traceable events.
///
/// Bus-side events carry the channel as a `u8` index (0 = A, 1 = B);
/// health states are encoded `0` = Nominal, `1` = Stressed, `2` = Storm;
/// CPU slice kinds `0` = periodic, `1` = aperiodic, `2` = idle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A communication cycle began.
    CycleStart {
        /// Cycle number (0-based).
        cycle: u64,
    },
    /// A frame went out in a static slot.
    SlotFrame {
        /// Channel index (0 = A, 1 = B).
        channel: u8,
        /// Static slot number (1-based, per the FlexRay schedule).
        slot: u64,
        /// Frame identifier.
        frame_id: u64,
        /// Payload length in bits.
        payload_bits: u64,
        /// Wire occupancy of the transmission.
        duration: SimDuration,
        /// Whether fault injection corrupted the frame.
        corrupted: bool,
    },
    /// A frame went out in a dynamic-segment minislot window.
    MinislotFrame {
        /// Channel index (0 = A, 1 = B).
        channel: u8,
        /// Dynamic slot counter value at transmission.
        slot_counter: u64,
        /// Minislot index the transmission started in (0-based).
        minislot: u64,
        /// Frame identifier.
        frame_id: u64,
        /// Payload length in bits.
        payload_bits: u64,
        /// Wire occupancy of the transmission.
        duration: SimDuration,
        /// Whether fault injection corrupted the frame.
        corrupted: bool,
    },
    /// Fault injection corrupted a frame.
    FaultHit {
        /// Channel index (0 = A, 1 = B).
        channel: u8,
        /// Frame identifier of the corrupted transmission.
        frame_id: u64,
        /// Whether the channel's fault process was inside a fault burst
        /// (always `false` for memoryless models).
        in_burst: bool,
    },
    /// The scheduler stole static slack for a pending hard copy or
    /// backlogged dynamic message.
    StealGranted {
        /// Channel index (0 = A, 1 = B).
        channel: u8,
        /// Static slot whose slack was stolen.
        slot: u64,
        /// Frame identifier served by the stolen slack.
        frame_id: u64,
    },
    /// The scheduler looked for slack and found nothing that fits.
    StealDenied {
        /// Channel index (0 = A, 1 = B).
        channel: u8,
        /// Static slot that had no usable slack.
        slot: u64,
    },
    /// A released static instance went out early through free slack.
    EarlyCopy {
        /// Channel index (0 = A, 1 = B).
        channel: u8,
        /// Static slot carrying the early transmission.
        slot: u64,
        /// Frame identifier.
        frame_id: u64,
    },
    /// A planned (Theorem-1) retransmission copy went out.
    RetransmissionCopy {
        /// Channel index (0 = A, 1 = B).
        channel: u8,
        /// Frame identifier.
        frame_id: u64,
    },
    /// Degraded mode shed a soft dynamic message at the source.
    SoftShed {
        /// Frame identifier of the shed message.
        frame_id: u64,
        /// Criticality of the shed message (ordinal).
        criticality: u8,
    },
    /// Degraded mode bought an extra hard copy beyond the Theorem-1 plan.
    DegradedCopy {
        /// Channel index (0 = A, 1 = B).
        channel: u8,
        /// Static slot carrying the extra copy.
        slot: u64,
        /// Frame identifier.
        frame_id: u64,
    },
    /// Dual-channel failover re-hosted a hard instance on the healthier
    /// channel.
    FailoverMirror {
        /// Channel index of the *healthy* channel that carried the mirror.
        channel: u8,
        /// Static slot carrying the mirror.
        slot: u64,
        /// Frame identifier.
        frame_id: u64,
    },
    /// A reliability monitor changed health state.
    HealthTransition {
        /// Which monitor: see [`HealthScope`].
        scope: HealthScope,
        /// Previous state (0 = Nominal, 1 = Stressed, 2 = Storm).
        from: u8,
        /// New state (same encoding).
        to: u8,
    },
    /// A periodic snapshot of the run counters.
    CounterSample {
        /// Cycle number the sample was taken after.
        cycle: u64,
        /// Counter values, in the run-counter field order of the
        /// instrumented simulator (self-described by the exporters).
        values: Vec<u64>,
    },
    /// A scheduled CPU execution slice (from the task-level simulator).
    CpuSlice {
        /// End of the slice; the event's `at` is the start.
        end: SimTime,
        /// `0` = periodic, `1` = aperiodic, `2` = idle.
        kind: u8,
        /// Task index for periodic slices (0 otherwise).
        task: u64,
        /// Job number of the slice's owner (0 for idle).
        job: u64,
    },
    /// The CPU slack stealer granted an aperiodic request a slack budget.
    CpuStealGranted {
        /// Slack budget granted.
        budget: SimDuration,
    },
    /// The CPU slack stealer found no usable slack.
    CpuStealDenied,
    /// A backbone gateway enqueued a FlexRay-delivered frame for
    /// store-and-forward onto a TT-Ethernet egress port.
    GatewayQueued {
        /// Egress port index on the gateway.
        port: u8,
        /// Backbone flow index.
        flow: u64,
        /// 0-based instance index within the flow.
        instance: u64,
    },
    /// A frame left the gateway through a reserved TT-Ethernet gate
    /// window.
    EthernetFrame {
        /// Egress port index on the gateway.
        port: u8,
        /// Backbone flow index.
        flow: u64,
        /// 0-based instance index within the flow.
        instance: u64,
        /// Payload length in bits.
        payload_bits: u64,
        /// Wire occupancy of the transmission.
        duration: SimDuration,
        /// Whether the frame arrived after its reserved window and had to
        /// wait a full hypercycle for the window's next occurrence.
        missed_window: bool,
    },
}

/// A captured event stream plus ring-buffer accounting.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceLog {
    /// The retained events, in emission order.
    pub events: Vec<TraceEvent>,
    /// Events dropped because the sink was full.
    pub dropped: u64,
    /// Capacity of the sink that recorded this log.
    pub capacity: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_compare_bit_for_bit() {
        let a = TraceEvent {
            at: SimTime::from_micros(7),
            kind: EventKind::StealGranted {
                channel: 0,
                slot: 12,
                frame_id: 3,
            },
        };
        assert_eq!(a, a.clone());
        let b = TraceEvent {
            at: a.at,
            kind: EventKind::StealDenied {
                channel: 0,
                slot: 12,
            },
        };
        assert_ne!(a, b);
    }
}
