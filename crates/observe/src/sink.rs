//! Sinks and the cloneable [`Tracer`] handle.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

use event_sim::SimTime;

use crate::event::{EventKind, TraceEvent, TraceLog};

/// Receives recorded events.
///
/// Implementations must be `Send` so a tracer can live inside components
/// that cross worker-thread boundaries (each simulation run is still
/// single-threaded; the bound is about *moving* runs between threads,
/// never about concurrent emission).
pub trait TraceSink: Send {
    /// Records one event.
    fn record(&mut self, event: TraceEvent);

    /// How many events were discarded (bounded sinks only).
    fn dropped(&self) -> u64 {
        0
    }
}

/// Discards everything (useful to measure pure emission overhead).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: TraceEvent) {}
}

/// A bounded FIFO sink: keeps the most recent `capacity` events and
/// counts the rest as dropped, so tracing overhead stays O(capacity)
/// regardless of run length.
#[derive(Debug, Clone, Default)]
pub struct RingBufferSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingBufferSink {
    /// Creates a sink retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            capacity,
            events: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drains the sink into a [`TraceLog`], resetting the drop counter.
    pub fn take_log(&mut self) -> TraceLog {
        TraceLog {
            events: std::mem::take(&mut self.events).into(),
            dropped: std::mem::take(&mut self.dropped),
            capacity: self.capacity,
        }
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// A cheap, cloneable handle instrumented components emit through.
///
/// Disabled tracers hold no sink: [`Tracer::is_enabled`] is a single
/// branch and [`Tracer::emit`] does nothing, so the untraced hot path
/// stays byte-identical. Enabled tracers share one sink behind
/// `Arc<Mutex<_>>`; within a run emission is single-threaded, so the
/// lock is uncontended.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<Mutex<dyn TraceSink>>>);

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Tracer")
            .field(&if self.0.is_some() {
                "enabled"
            } else {
                "disabled"
            })
            .finish()
    }
}

impl Tracer {
    /// A tracer that records nothing (the default).
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// Wraps a shared sink.
    pub fn new(sink: Arc<Mutex<dyn TraceSink>>) -> Self {
        Tracer(Some(sink))
    }

    /// Whether emits reach a sink. Emit sites should guard event
    /// construction on this so disabled runs allocate nothing.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one event (no-op when disabled).
    pub fn emit(&self, at: SimTime, kind: EventKind) {
        if let Some(sink) = &self.0 {
            sink.lock()
                .expect("trace sink lock poisoned")
                .record(TraceEvent { at, kind });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> (SimTime, EventKind) {
        (SimTime::from_nanos(n), EventKind::CycleStart { cycle: n })
    }

    #[test]
    fn ring_buffer_bounds_and_counts_drops() {
        let mut sink = RingBufferSink::new(2);
        for n in 0..5 {
            let (at, kind) = ev(n);
            sink.record(TraceEvent { at, kind });
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
        let log = sink.take_log();
        assert_eq!(log.capacity, 2);
        assert_eq!(log.dropped, 3);
        assert_eq!(
            log.events[0].kind,
            EventKind::CycleStart { cycle: 3 },
            "oldest events are evicted first"
        );
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0, "take_log resets the drop counter");
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut sink = RingBufferSink::new(0);
        let (at, kind) = ev(1);
        sink.record(TraceEvent { at, kind });
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let (at, kind) = ev(9);
        tracer.emit(at, kind); // must not panic
        assert_eq!(format!("{tracer:?}"), r#"Tracer("disabled")"#);
    }

    #[test]
    fn enabled_tracer_reaches_the_shared_sink() {
        let sink = Arc::new(Mutex::new(RingBufferSink::new(8)));
        let tracer = Tracer::new(sink.clone());
        let clone = tracer.clone();
        assert!(clone.is_enabled());
        let (at, kind) = ev(1);
        tracer.emit(at, kind);
        let (at, kind) = ev(2);
        clone.emit(at, kind);
        assert_eq!(sink.lock().unwrap().len(), 2);
        assert_eq!(format!("{tracer:?}"), r#"Tracer("enabled")"#);
    }

    #[test]
    fn null_sink_discards() {
        let mut sink = NullSink;
        let (at, kind) = ev(1);
        sink.record(TraceEvent { at, kind });
        assert_eq!(sink.dropped(), 0);
    }
}
