//! Bench for Figure 5: wall-clock cost of one deadline-miss-ratio run
//! (1 s simulated horizon, 50 minislots).

use bench_harness::experiments::{dynamic_experiment_statics, run_once, SEED};
use bench_harness::timing::bench;
use coefficient::{Scenario, StopCondition};
use event_sim::SimDuration;
use flexray::config::ClusterConfig;
use workloads::sae::IdRange;

fn main() {
    for scenario in [Scenario::ber7(), Scenario::ber9()] {
        for policy in [coefficient::COEFFICIENT, coefficient::FSPEC] {
            let label = format!(
                "fig5_miss_ratio/miss_ratio_50minislots_1s/{}/{}",
                scenario.name,
                policy.key()
            );
            bench(&label, 10, || {
                run_once(
                    ClusterConfig::paper_mixed(50),
                    scenario.clone(),
                    dynamic_experiment_statics(),
                    workloads::sae::message_set(IdRange::For80Slots, SEED),
                    policy,
                    StopCondition::Horizon(SimDuration::from_secs(1)),
                    SEED,
                )
            });
        }
    }
}
