//! Criterion bench for Figure 5: deadline-miss-ratio experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use event_sim::SimDuration;

use bench_harness::experiments::{dynamic_experiment_statics, run_once, SEED};
use coefficient::{Policy, Scenario, StopCondition};
use flexray::config::ClusterConfig;
use workloads::sae::IdRange;

fn bench_miss_ratio(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_miss_ratio");
    group.sample_size(10);
    for scenario in [Scenario::ber7(), Scenario::ber9()] {
        for policy in [Policy::CoEfficient, Policy::Fspec] {
            let label = format!(
                "{}/{}",
                scenario.name,
                match policy {
                    Policy::CoEfficient => "coefficient",
                    Policy::Fspec => "fspec",
                    Policy::Hosa => "hosa",
                }
            );
            group.bench_with_input(
                BenchmarkId::new("miss_ratio_50minislots_1s", label),
                &(scenario.clone(), policy),
                |b, (scenario, policy)| {
                    b.iter(|| {
                        run_once(
                            ClusterConfig::paper_mixed(50),
                            scenario.clone(),
                            dynamic_experiment_statics(),
                            workloads::sae::message_set(IdRange::For80Slots, SEED),
                            *policy,
                            StopCondition::Horizon(SimDuration::from_secs(1)),
                            SEED,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_miss_ratio);
criterion_main!(benches);
