//! Acceptance benchmark of the parallel sweep harness: a 32-cell
//! `{2 policies × 2 scenarios × 8 seeds}` matrix, run serially and with
//! up to 4 worker threads.
//!
//! Prints the `coefficient-sweep-speedup/1` JSON record and exits
//! non-zero if the determinism contract is violated (serial and parallel
//! fingerprints must be byte-identical) or if parallel execution is not
//! actually faster.
//!
//! ```text
//! cargo bench --bench sweep_speedup -- [--smoke] [--out FILE]
//! ```
//!
//! `--smoke` shrinks the matrix (8 cells, short horizon) for CI, where
//! the runner's core count is unreliable — only the determinism contract
//! is enforced there, not the speedup claim. `--out FILE` additionally
//! writes the JSON record to `FILE` (for workflow artifacts).

use bench_harness::sweep::{measure_speedup, speedup_benchmark_spec, speedup_benchmark_threads};
use coefficient::sweep::default_threads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1));

    let mut spec = speedup_benchmark_spec();
    if smoke {
        spec.seeds = 2;
        spec.horizon_ms = 100;
    }
    let threads = speedup_benchmark_threads();
    let report = measure_speedup(&spec, threads).expect("benchmark matrix is schedulable");
    println!(
        "sweep_speedup{}: {} cells, serial {:.0} ms vs {} threads {:.0} ms -> {:.2}x",
        if smoke { " (smoke)" } else { "" },
        report.cells,
        report.serial.as_secs_f64() * 1e3,
        report.threads,
        report.parallel.as_secs_f64() * 1e3,
        report.speedup,
    );
    println!("{}", report.to_json());
    if let Some(path) = out {
        let mut text = report.to_json().pretty();
        text.push('\n');
        std::fs::write(path, text).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
    }
    if !report.fingerprints_equal {
        eprintln!("FAIL: serial and parallel sweep fingerprints differ");
        std::process::exit(1);
    }
    // The speedup claim only makes sense where parallel hardware exists
    // and the matrix is big enough to amortize thread startup: on a
    // single-core machine — or in the deliberately tiny smoke matrix —
    // only the determinism contract above is load-bearing.
    if report.speedup < 1.0 && !smoke {
        if default_threads() >= 2 {
            eprintln!("FAIL: parallel sweep slower than serial on a multi-core machine");
            std::process::exit(1);
        }
        eprintln!("note: single-core machine, speedup not expected");
    }
}
