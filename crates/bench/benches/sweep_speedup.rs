//! Acceptance benchmark of the parallel sweep harness: a 32-cell
//! `{2 policies × 2 scenarios × 8 seeds}` matrix, run serially and with
//! up to 4 worker threads.
//!
//! Prints the `coefficient-sweep-speedup/1` JSON record and exits
//! non-zero if the determinism contract is violated (serial and parallel
//! fingerprints must be byte-identical) or if parallel execution is not
//! actually faster.

use bench_harness::sweep::{measure_speedup, speedup_benchmark_spec, speedup_benchmark_threads};
use coefficient::sweep::default_threads;

fn main() {
    let spec = speedup_benchmark_spec();
    let threads = speedup_benchmark_threads();
    let report = measure_speedup(&spec, threads).expect("benchmark matrix is schedulable");
    println!(
        "sweep_speedup: {} cells, serial {:.0} ms vs {} threads {:.0} ms -> {:.2}x",
        report.cells,
        report.serial.as_secs_f64() * 1e3,
        report.threads,
        report.parallel.as_secs_f64() * 1e3,
        report.speedup,
    );
    println!("{}", report.to_json());
    if !report.fingerprints_equal {
        eprintln!("FAIL: serial and parallel sweep fingerprints differ");
        std::process::exit(1);
    }
    // The speedup claim only makes sense where parallel hardware exists:
    // on a single-core machine the extra workers can't beat serial, and
    // only the determinism contract above is load-bearing.
    if report.speedup < 1.0 {
        if default_threads() >= 2 {
            eprintln!("FAIL: parallel sweep slower than serial on a multi-core machine");
            std::process::exit(1);
        }
        eprintln!("note: single-core machine, speedup not expected");
    }
}
