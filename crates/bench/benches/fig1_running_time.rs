//! Bench for Figures 1 & 2: wall-clock cost of one running-time point
//! (full dual-channel simulation to 400 produced instances).

use bench_harness::experiments::{bbw_acc_messages, run_once, SEED};
use bench_harness::timing::bench;
use coefficient::{Scenario, StopCondition};
use flexray::config::ClusterConfig;
use workloads::sae::IdRange;

fn main() {
    for policy in [coefficient::COEFFICIENT, coefficient::FSPEC] {
        for scenario in [Scenario::ber7(), Scenario::ber9()] {
            let label = format!(
                "fig1_running_time/bbw_acc_80slots_400msgs/{}/{}",
                policy.key(),
                scenario.name
            );
            bench(&label, 10, || {
                run_once(
                    ClusterConfig::paper_static(80),
                    scenario.clone(),
                    bbw_acc_messages(),
                    workloads::sae::message_set(IdRange::For80Slots, SEED),
                    policy,
                    StopCondition::ProducedInstances(400),
                    SEED,
                )
            });
        }
    }
}
