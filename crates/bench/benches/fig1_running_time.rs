//! Criterion bench for Figures 1 & 2: running-time experiments.
//!
//! Measures the wall-clock cost of the full dual-channel simulation that
//! produces one running-time point, and prints the simulated makespans
//! (the figure's y values) as it goes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench_harness::experiments::{bbw_acc_messages, run_once, SEED};
use coefficient::{Policy, Scenario, StopCondition};
use flexray::config::ClusterConfig;
use workloads::sae::IdRange;

fn bench_running_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_running_time");
    group.sample_size(10);
    for policy in [Policy::CoEfficient, Policy::Fspec] {
        for scenario in [Scenario::ber7(), Scenario::ber9()] {
            let label = format!(
                "{}/{}",
                match policy {
                    Policy::CoEfficient => "coefficient",
                    Policy::Fspec => "fspec",
                    Policy::Hosa => "hosa",
                },
                scenario.name
            );
            group.bench_with_input(
                BenchmarkId::new("bbw_acc_80slots_400msgs", label),
                &(policy, scenario),
                |b, (policy, scenario)| {
                    b.iter(|| {
                        run_once(
                            ClusterConfig::paper_static(80),
                            scenario.clone(),
                            bbw_acc_messages(),
                            workloads::sae::message_set(IdRange::For80Slots, SEED),
                            *policy,
                            StopCondition::ProducedInstances(400),
                            SEED,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_running_time);
criterion_main!(benches);
