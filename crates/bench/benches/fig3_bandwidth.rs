//! Bench for Figure 3: wall-clock cost of one bandwidth-utilization run
//! (1 s simulated horizon on the mixed geometry).

use bench_harness::experiments::{dynamic_experiment_statics, run_once, SEED};
use bench_harness::timing::bench;
use coefficient::{Scenario, StopCondition};
use event_sim::SimDuration;
use flexray::config::ClusterConfig;
use workloads::sae::IdRange;

fn main() {
    for &ms in &[25u64, 100] {
        for policy in [coefficient::COEFFICIENT, coefficient::FSPEC] {
            let label = format!(
                "fig3_bandwidth/utilization_1s/{}minislots/{}",
                ms,
                policy.key()
            );
            bench(&label, 10, || {
                run_once(
                    ClusterConfig::paper_mixed(ms),
                    Scenario::ber7(),
                    dynamic_experiment_statics(),
                    workloads::sae::message_set(IdRange::For80Slots, SEED),
                    policy,
                    StopCondition::Horizon(SimDuration::from_secs(1)),
                    SEED,
                )
            });
        }
    }
}
