//! Criterion bench for Figure 3: bandwidth-utilization experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use event_sim::SimDuration;

use bench_harness::experiments::{dynamic_experiment_statics, run_once, SEED};
use coefficient::{Policy, Scenario, StopCondition};
use flexray::config::ClusterConfig;
use workloads::sae::IdRange;

fn bench_bandwidth(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_bandwidth");
    group.sample_size(10);
    for &ms in &[25u64, 100] {
        for policy in [Policy::CoEfficient, Policy::Fspec] {
            let label = format!(
                "{}minislots/{}",
                ms,
                match policy {
                    Policy::CoEfficient => "coefficient",
                    Policy::Fspec => "fspec",
                    Policy::Hosa => "hosa",
                }
            );
            group.bench_with_input(
                BenchmarkId::new("utilization_1s", label),
                &(ms, policy),
                |b, &(ms, policy)| {
                    b.iter(|| {
                        run_once(
                            ClusterConfig::paper_mixed(ms),
                            Scenario::ber7(),
                            dynamic_experiment_statics(),
                            workloads::sae::message_set(IdRange::For80Slots, SEED),
                            policy,
                            StopCondition::Horizon(SimDuration::from_secs(1)),
                            SEED,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_bandwidth);
criterion_main!(benches);
