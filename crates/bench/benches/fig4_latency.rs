//! Bench for Figure 4: wall-clock cost of one transmission-latency run
//! (2 s simulated horizon, 50 minislots).

use bench_harness::experiments::{bbw_acc_messages, dynamic_experiment_statics, run_once, SEED};
use bench_harness::timing::bench;
use coefficient::{Scenario, StopCondition};
use event_sim::SimDuration;
use flexray::config::ClusterConfig;
use workloads::sae::IdRange;

fn main() {
    for (workload, statics) in [
        ("synthetic", dynamic_experiment_statics()),
        ("bbw_acc", bbw_acc_messages()),
    ] {
        for policy in [coefficient::COEFFICIENT, coefficient::FSPEC] {
            let label = format!(
                "fig4_latency/latency_50minislots_2s/{workload}/{}",
                policy.key()
            );
            let statics = statics.clone();
            bench(&label, 10, move || {
                run_once(
                    ClusterConfig::paper_mixed(50),
                    Scenario::ber7(),
                    statics.clone(),
                    workloads::sae::message_set(IdRange::For80Slots, SEED),
                    policy,
                    StopCondition::Horizon(SimDuration::from_secs(2)),
                    SEED,
                )
            });
        }
    }
}
