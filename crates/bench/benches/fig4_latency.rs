//! Criterion bench for Figure 4: transmission-latency experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use event_sim::SimDuration;

use bench_harness::experiments::{bbw_acc_messages, dynamic_experiment_statics, run_once, SEED};
use coefficient::{Policy, Scenario, StopCondition};
use flexray::config::ClusterConfig;
use workloads::sae::IdRange;

fn bench_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_latency");
    group.sample_size(10);
    for (workload, statics) in [
        ("synthetic", dynamic_experiment_statics()),
        ("bbw_acc", bbw_acc_messages()),
    ] {
        for policy in [Policy::CoEfficient, Policy::Fspec] {
            let label = format!(
                "{workload}/{}",
                match policy {
                    Policy::CoEfficient => "coefficient",
                    Policy::Fspec => "fspec",
                    Policy::Hosa => "hosa",
                }
            );
            group.bench_with_input(
                BenchmarkId::new("latency_50minislots_2s", label),
                &policy,
                |b, &policy| {
                    b.iter(|| {
                        run_once(
                            ClusterConfig::paper_mixed(50),
                            Scenario::ber7(),
                            statics.clone(),
                            workloads::sae::message_set(IdRange::For80Slots, SEED),
                            policy,
                            StopCondition::Horizon(SimDuration::from_secs(2)),
                            SEED,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_latency);
criterion_main!(benches);
