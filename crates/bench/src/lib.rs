//! Benchmark harness regenerating every figure of the CoEfficient paper's
//! evaluation (§IV-B).
//!
//! Each `figN_*` function runs the full dual-channel bus simulation for
//! every parameter combination of the corresponding figure and returns
//! typed rows; the `experiments` binary prints them as tables, and the
//! Criterion benches time representative configurations. Paper-reported
//! values and our measured shapes are recorded side by side in
//! `EXPERIMENTS.md`.

pub mod experiments;
pub mod table;

pub use experiments::*;
