//! Benchmark harness regenerating every figure of the CoEfficient paper's
//! evaluation (§IV-B).
//!
//! Each `figN_*` function runs the full dual-channel bus simulation for
//! every parameter combination of the corresponding figure and returns
//! typed rows; the `experiments` binary prints them as tables (or JSON),
//! and the bench binaries time representative configurations. The figure
//! cells execute through the parallel sweep harness
//! ([`coefficient::sweep`], with the bench-side layer in [`sweep`]).
//! Paper-reported values and our measured shapes are recorded side by
//! side in `EXPERIMENTS.md`.

pub mod backbone;
pub mod chaos;
pub mod cycles;
pub mod experiments;
pub mod fleet;
pub mod golden;
pub mod json;
pub mod sweep;
pub mod table;
pub mod timing;
pub mod trace;

pub use experiments::*;
