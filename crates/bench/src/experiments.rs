//! Experiment definitions, one per paper figure.
//!
//! Shared conventions:
//!
//! * the *running time* figures (1, 2) measure the makespan of producing a
//!   fixed number of message instances and draining every pending
//!   transmission ([`StopCondition::ProducedInstances`]);
//! * the rate figures (3, 4, 5) run for a fixed simulated horizon and
//!   report utilization / latency / miss ratios;
//! * every run is deterministic under its seed; the same seed is used for
//!   both policies of a comparison so they see identical workloads and
//!   fault processes.

use event_sim::SimDuration;

use coefficient::sweep::default_threads;
use coefficient::{
    run_parallel, run_parallel_with_options, PolicyRef, RunConfig, RunReport, Runner, Scenario,
    StopCondition,
};
use flexray::config::ClusterConfig;
use flexray::signal::Signal;
use workloads::sae::IdRange;
use workloads::synthetic::SyntheticSpec;
use workloads::AperiodicMessage;

/// Default seed of the whole suite.
pub const SEED: u64 = 20140630; // ICDCS 2014 ;-)

fn policy_name(p: PolicyRef) -> &'static str {
    p.label()
}

/// Runs one configuration to a report.
pub fn run_once(
    cluster: ClusterConfig,
    scenario: Scenario,
    static_messages: Vec<Signal>,
    dynamic_messages: Vec<AperiodicMessage>,
    policy: PolicyRef,
    stop: StopCondition,
    seed: u64,
) -> RunReport {
    Runner::new(RunConfig {
        cluster,
        scenario,
        static_messages,
        dynamic_messages,
        policy,
        stop,
        seed,
        trace: Default::default(),
    })
    .expect("experiment configuration must be schedulable")
    .run()
}

// ---------------------------------------------------------------------------
// Figures 1 & 2 — running time
// ---------------------------------------------------------------------------

/// One point of Figures 1/2.
#[derive(Debug, Clone)]
pub struct RunningTimeRow {
    /// `"BBW+ACC"` or `"synthetic"`.
    pub workload: &'static str,
    /// Static slot configuration (80 or 120).
    pub slots: u64,
    /// Scheduling policy.
    pub policy: &'static str,
    /// Scenario label (`BER-7` for Fig 1, `BER-9` for Fig 2).
    pub scenario: &'static str,
    /// Number of message instances delivered (the x axis).
    pub messages: u64,
    /// Makespan in simulated seconds (the y axis).
    pub running_time_s: f64,
}

/// The static workload of the combined real-world runs: BBW + ACC.
pub fn bbw_acc_messages() -> Vec<Signal> {
    let mut m = workloads::bbw::message_set();
    m.extend(workloads::acc::message_set());
    m
}

fn id_range_for(slots: u64) -> IdRange {
    if slots >= 120 {
        IdRange::For120Slots
    } else {
        IdRange::For80Slots
    }
}

/// Figure 1 (scenario `BER-7`) / Figure 2 (scenario `BER-9`): running time
/// of the BBW+ACC and synthetic workloads for 80- and 120-slot
/// configurations, sweeping the produced-instance count.
pub fn fig_running_time(scenario: &Scenario, message_counts: &[u64]) -> Vec<RunningTimeRow> {
    // Build every cell first, then execute the whole figure through the
    // parallel sweep primitive. Each cell keeps the exact serial-era
    // RunConfig (same SEED for both policies of a comparison), so the rows
    // are bit-identical to the old one-at-a-time loop.
    let mut meta = Vec::new();
    let mut configs = Vec::new();
    for &slots in &[80u64, 120] {
        let cluster = ClusterConfig::paper_static(slots);
        let sae = workloads::sae::message_set(id_range_for(slots), SEED);
        for (workload, statics) in [
            ("BBW+ACC", bbw_acc_messages()),
            (
                "synthetic",
                workloads::synthetic::message_set(
                    &SyntheticSpec {
                        count: 40,
                        ..SyntheticSpec::default()
                    },
                    SEED,
                ),
            ),
        ] {
            for policy in [coefficient::COEFFICIENT, coefficient::FSPEC] {
                for &n in message_counts {
                    meta.push((workload, slots, policy, n));
                    configs.push(RunConfig {
                        cluster: cluster.clone(),
                        scenario: scenario.clone(),
                        static_messages: statics.clone(),
                        dynamic_messages: sae.clone(),
                        policy,
                        stop: StopCondition::DeliveredInstances(n),
                        seed: SEED,
                        trace: Default::default(),
                    });
                }
            }
        }
    }
    let reports = run_parallel(configs, default_threads())
        .expect("experiment configuration must be schedulable");
    meta.into_iter()
        .zip(reports)
        .map(|((workload, slots, policy, n), report)| RunningTimeRow {
            workload,
            slots,
            policy: policy_name(policy),
            scenario: scenario.name,
            messages: n,
            running_time_s: report.running_time.as_secs_f64(),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 3 — bandwidth utilization
// ---------------------------------------------------------------------------

/// One bar of Figure 3.
#[derive(Debug, Clone)]
pub struct BandwidthRow {
    /// Number of minislots (25/50/75/100).
    pub minislots: u64,
    /// Scheduling policy.
    pub policy: &'static str,
    /// Combined two-channel bus utilization in percent.
    pub utilization_pct: f64,
}

/// The static workload of the Figure 3–5 experiments: a synthetic set
/// sized to the 80-slot static segment of the `paper_mixed` geometry.
pub fn dynamic_experiment_statics() -> Vec<Signal> {
    workloads::synthetic::message_set(
        &SyntheticSpec {
            count: 40,
            ..SyntheticSpec::default()
        },
        SEED,
    )
}

/// Figure 3: bandwidth utilization for 25–100 minislots, CoEfficient vs
/// FSPEC (scenario `BER-7`, 1 s horizon).
pub fn fig3_bandwidth() -> Vec<BandwidthRow> {
    let mut meta = Vec::new();
    let mut configs = Vec::new();
    for &ms in &[25u64, 50, 75, 100] {
        let cluster = ClusterConfig::paper_mixed(ms);
        for policy in [coefficient::COEFFICIENT, coefficient::FSPEC] {
            meta.push((ms, policy));
            configs.push(RunConfig {
                cluster: cluster.clone(),
                scenario: Scenario::ber7(),
                static_messages: dynamic_experiment_statics(),
                dynamic_messages: workloads::sae::message_set(IdRange::For80Slots, SEED),
                policy,
                stop: StopCondition::Horizon(SimDuration::from_secs(1)),
                seed: SEED,
                trace: Default::default(),
            });
        }
    }
    let reports = run_parallel(configs, default_threads())
        .expect("experiment configuration must be schedulable");
    meta.into_iter()
        .zip(reports)
        .map(|((ms, policy), report)| BandwidthRow {
            minislots: ms,
            policy: policy_name(policy),
            utilization_pct: report.utilization * 100.0,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 4 — transmission latency
// ---------------------------------------------------------------------------

/// Which traffic class a latency row reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    /// Static-segment (time-triggered) messages — Fig 4(a)/(b).
    Static,
    /// Dynamic-segment (event-triggered) messages — Fig 4(c)/(d).
    Dynamic,
}

/// One point of Figure 4.
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// `"synthetic"` or `"BBW+ACC"`.
    pub workload: &'static str,
    /// Static or dynamic segment.
    pub segment: Segment,
    /// Minislot configuration (50 or 100).
    pub minislots: u64,
    /// Scenario label.
    pub scenario: &'static str,
    /// Scheduling policy.
    pub policy: &'static str,
    /// Mean transmission latency in milliseconds.
    pub mean_latency_ms: f64,
}

/// Figure 4: average transmission latency of static and dynamic segments
/// for 50/100 minislots under both scenarios, for one workload.
pub fn fig4_latency(workload: &'static str) -> Vec<LatencyRow> {
    let statics = match workload {
        "BBW+ACC" => bbw_acc_messages(),
        _ => dynamic_experiment_statics(),
    };
    let mut meta = Vec::new();
    let mut configs = Vec::new();
    for &ms in &[50u64, 100] {
        let cluster = ClusterConfig::paper_mixed(ms);
        for scenario in [Scenario::ber7(), Scenario::ber9()] {
            for policy in [coefficient::COEFFICIENT, coefficient::FSPEC] {
                meta.push((ms, scenario.name, policy));
                configs.push(RunConfig {
                    cluster: cluster.clone(),
                    scenario: scenario.clone(),
                    static_messages: statics.clone(),
                    dynamic_messages: workloads::sae::message_set(IdRange::For80Slots, SEED),
                    policy,
                    stop: StopCondition::Horizon(SimDuration::from_secs(2)),
                    seed: SEED,
                    trace: Default::default(),
                });
            }
        }
    }
    let reports = run_parallel(configs, default_threads())
        .expect("experiment configuration must be schedulable");
    let mut rows = Vec::new();
    for ((ms, scenario, policy), report) in meta.into_iter().zip(reports) {
        for (segment, summary) in [
            (Segment::Static, &report.static_latency),
            (Segment::Dynamic, &report.dynamic_latency),
        ] {
            rows.push(LatencyRow {
                workload,
                segment,
                minislots: ms,
                scenario,
                policy: policy_name(policy),
                mean_latency_ms: summary.mean_millis_f64(),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 5 — deadline miss ratio
// ---------------------------------------------------------------------------

/// One point of Figure 5.
#[derive(Debug, Clone)]
pub struct MissRatioRow {
    /// Number of minislots (25–100).
    pub minislots: u64,
    /// Scenario label.
    pub scenario: &'static str,
    /// Scheduling policy.
    pub policy: &'static str,
    /// Combined deadline miss ratio in percent.
    pub miss_pct: f64,
}

/// Figure 5: deadline miss ratio for 25–100 minislots under both
/// scenarios.
pub fn fig5_miss_ratio() -> Vec<MissRatioRow> {
    let mut meta = Vec::new();
    let mut configs = Vec::new();
    for &ms in &[25u64, 50, 75, 100] {
        let cluster = ClusterConfig::paper_mixed(ms);
        for scenario in [Scenario::ber7(), Scenario::ber9()] {
            for policy in [coefficient::COEFFICIENT, coefficient::FSPEC] {
                meta.push((ms, scenario.name, policy));
                configs.push(RunConfig {
                    cluster: cluster.clone(),
                    scenario: scenario.clone(),
                    static_messages: dynamic_experiment_statics(),
                    dynamic_messages: workloads::sae::message_set(IdRange::For80Slots, SEED),
                    policy,
                    stop: StopCondition::Horizon(SimDuration::from_secs(1)),
                    seed: SEED,
                    trace: Default::default(),
                });
            }
        }
    }
    let reports = run_parallel(configs, default_threads())
        .expect("experiment configuration must be schedulable");
    meta.into_iter()
        .zip(reports)
        .map(|((ms, scenario, policy), report)| MissRatioRow {
            minislots: ms,
            scenario,
            policy: policy_name(policy),
            miss_pct: report.miss_ratio() * 100.0,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Reproduction verdict
// ---------------------------------------------------------------------------

/// One checked claim of the paper, with the measured values behind it.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// The claim, as the paper states it.
    pub claim: &'static str,
    /// Whether the reproduction confirms it.
    pub pass: bool,
    /// The measured evidence.
    pub evidence: String,
}

/// Checks every headline claim of the paper's evaluation against fresh
/// runs and returns a verdict per claim. Used by `experiments verify`.
pub fn verify_reproduction() -> Vec<Verdict> {
    let mut verdicts = Vec::new();

    // Claim 1 (Figs 1/2): CoEfficient completes message transmission
    // faster than FSPEC, for every workload and slot configuration.
    let rows = fig_running_time(&Scenario::ber7(), &[400]);
    let mut worst_ratio = f64::INFINITY;
    let mut all_faster = true;
    for workload in ["BBW+ACC", "synthetic"] {
        for slots in [80, 120] {
            let co = rows
                .iter()
                .find(|r| r.workload == workload && r.slots == slots && r.policy == "CoEfficient")
                .expect("row exists");
            let fs = rows
                .iter()
                .find(|r| r.workload == workload && r.slots == slots && r.policy == "FSPEC")
                .expect("row exists");
            all_faster &= co.running_time_s < fs.running_time_s;
            worst_ratio = worst_ratio.min(fs.running_time_s / co.running_time_s);
        }
    }
    verdicts.push(Verdict {
        claim: "running time: CoEfficient completes the message set first (Figs 1-2)",
        pass: all_faster,
        evidence: format!(
            "FSPEC/CoEfficient makespan ratio >= {worst_ratio:.2} on every sweep point"
        ),
    });

    // Claim 2 (Fig 2 vs 1): the stricter reliability goal costs CoEfficient
    // running time.
    let r7 = fig_running_time(&Scenario::ber7(), &[400]);
    let r9 = fig_running_time(&Scenario::ber9(), &[400]);
    let slower = r7
        .iter()
        .zip(&r9)
        .filter(|(a, b)| a.policy == "CoEfficient" && b.policy == "CoEfficient")
        .all(|(a, b)| b.running_time_s >= a.running_time_s);
    verdicts.push(Verdict {
        claim: "higher reliability goals increase running time (Fig 2 vs Fig 1)",
        pass: slower,
        evidence: "BER-9 CoEfficient makespans >= BER-7 at every point".into(),
    });

    // Claim 3 (Fig 3): CoEfficient improves bandwidth utilization at every
    // minislot count.
    let rows = fig3_bandwidth();
    let mut min_gain = f64::INFINITY;
    for ms in [25, 50, 75, 100] {
        let co = rows
            .iter()
            .find(|r| r.minislots == ms && r.policy == "CoEfficient")
            .expect("row");
        let fs = rows
            .iter()
            .find(|r| r.minislots == ms && r.policy == "FSPEC")
            .expect("row");
        min_gain = min_gain.min(co.utilization_pct - fs.utilization_pct);
    }
    verdicts.push(Verdict {
        claim: "bandwidth utilization: CoEfficient above FSPEC at 25-100 minislots (Fig 3)",
        pass: min_gain > 0.0,
        evidence: format!("minimum gain {min_gain:.1} percentage points"),
    });

    // Claim 4 (Fig 4): lower latency in both segments, both scenarios.
    let mut all_lower = true;
    let mut evidence = String::new();
    for workload in ["synthetic", "BBW+ACC"] {
        let rows = fig4_latency(workload);
        for segment in [Segment::Static, Segment::Dynamic] {
            let co: f64 = rows
                .iter()
                .filter(|r| r.segment == segment && r.policy == "CoEfficient")
                .map(|r| r.mean_latency_ms)
                .sum();
            let fs: f64 = rows
                .iter()
                .filter(|r| r.segment == segment && r.policy == "FSPEC")
                .map(|r| r.mean_latency_ms)
                .sum();
            all_lower &= co < fs;
            evidence.push_str(&format!(
                "{workload}/{segment:?}: -{:.0}% ",
                (1.0 - co / fs) * 100.0
            ));
        }
    }
    verdicts.push(Verdict {
        claim: "transmission latency: CoEfficient below FSPEC in both segments (Fig 4)",
        pass: all_lower,
        evidence,
    });

    // Claim 5 (Fig 5): an order of magnitude fewer deadline misses.
    let rows = fig5_miss_ratio();
    let co_max = rows
        .iter()
        .filter(|r| r.policy == "CoEfficient")
        .map(|r| r.miss_pct)
        .fold(0.0f64, f64::max);
    let fs_min = rows
        .iter()
        .filter(|r| r.policy == "FSPEC")
        .map(|r| r.miss_pct)
        .fold(f64::INFINITY, f64::min);
    verdicts.push(Verdict {
        claim: "deadline miss ratio: CoEfficient far below FSPEC at every sweep point (Fig 5)",
        pass: co_max < fs_min,
        evidence: format!("CoEfficient max {co_max:.2}% vs FSPEC min {fs_min:.2}%"),
    });

    verdicts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape_coefficient_faster() {
        let rows = fig_running_time(&Scenario::ber7(), &[200]);
        // For every (workload, slots) pair, CoEfficient must beat FSPEC.
        for workload in ["BBW+ACC", "synthetic"] {
            for slots in [80, 120] {
                let co = rows
                    .iter()
                    .find(|r| {
                        r.workload == workload && r.slots == slots && r.policy == "CoEfficient"
                    })
                    .unwrap();
                let fs = rows
                    .iter()
                    .find(|r| r.workload == workload && r.slots == slots && r.policy == "FSPEC")
                    .unwrap();
                assert!(
                    co.running_time_s < fs.running_time_s,
                    "{workload}/{slots}: {co:?} vs {fs:?}"
                );
            }
        }
    }

    #[test]
    fn fig3_shape_coefficient_higher_utilization() {
        let rows = fig3_bandwidth();
        for ms in [25, 50, 75, 100] {
            let co = rows
                .iter()
                .find(|r| r.minislots == ms && r.policy == "CoEfficient")
                .unwrap();
            let fs = rows
                .iter()
                .find(|r| r.minislots == ms && r.policy == "FSPEC")
                .unwrap();
            assert!(
                co.utilization_pct > fs.utilization_pct,
                "{ms} minislots: {co:?} vs {fs:?}"
            );
        }
    }

    #[test]
    fn ablation_shows_each_mechanism_contributes() {
        let rows = ablation();
        let find = |v: &str| rows.iter().find(|r| r.variant == v).unwrap();
        let full = find("CoEfficient (full)");
        // Every ablated variant delivers at most as much as the full scheme
        // (tiny scheduling noise tolerated).
        for r in &rows {
            assert!(
                r.delivered <= full.delivered + full.delivered / 100,
                "{} outperformed the full scheme: {} vs {}",
                r.variant,
                r.delivered,
                full.delivered
            );
        }
        // Cooperative dynamic service is what keeps dynamic latency low.
        assert!(full.dynamic_latency_ms < find("– cooperative dynamic").dynamic_latency_ms,);
        // Early copies are what rescue tight static deadlines.
        assert!(full.miss_pct < find("– early copies").miss_pct);
        // The dual channel carries a large share of the throughput.
        assert!(full.utilization_pct > find("– channel B (single)").utilization_pct);
        // The baselines trail the full scheme.
        assert!(find("FSPEC").delivered < full.delivered);
        assert!(find("HOSA (dual-channel)").delivered < full.delivered);
    }

    #[test]
    fn fault_model_changes_burst_structure_not_feasibility() {
        let rows = fault_model_ablation();
        for r in &rows {
            assert!(r.delivered > 0, "{r:?}");
        }
        // CoEfficient's redundancy keeps its miss ratio far below FSPEC's
        // under either fault process.
        for model in ["bernoulli", "gilbert-elliott"] {
            let co = rows
                .iter()
                .find(|r| r.model == model && r.policy == "CoEfficient")
                .unwrap();
            let fs = rows
                .iter()
                .find(|r| r.model == model && r.policy == "FSPEC")
                .unwrap();
            assert!(co.miss_pct < fs.miss_pct, "{model}: {co:?} vs {fs:?}");
        }
    }

    #[test]
    fn reproduction_verdicts_all_pass() {
        for v in verify_reproduction() {
            assert!(v.pass, "claim failed: {} ({})", v.claim, v.evidence);
        }
    }

    #[test]
    fn fig5_shape_coefficient_fewer_misses() {
        let rows = fig5_miss_ratio();
        for ms in [25, 100] {
            let co = rows
                .iter()
                .find(|r| r.minislots == ms && r.scenario == "BER-7" && r.policy == "CoEfficient")
                .unwrap();
            let fs = rows
                .iter()
                .find(|r| r.minislots == ms && r.scenario == "BER-7" && r.policy == "FSPEC")
                .unwrap();
            assert!(
                co.miss_pct <= fs.miss_pct,
                "{ms} minislots: {co:?} vs {fs:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Ablations (beyond the paper: isolate each CoEfficient mechanism)
// ---------------------------------------------------------------------------

/// One row of the mechanism ablation.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant label.
    pub variant: &'static str,
    /// In-time deliveries over the horizon.
    pub delivered: u64,
    /// Mean static latency, ms.
    pub static_latency_ms: f64,
    /// Mean dynamic latency, ms.
    pub dynamic_latency_ms: f64,
    /// Combined utilization, %.
    pub utilization_pct: f64,
    /// Combined miss ratio, %.
    pub miss_pct: f64,
}

/// Mechanism ablation: full CoEfficient vs each feature disabled, plus the
/// HOSA-like dual-channel baseline and FSPEC (BBW+ACC + SAE on the
/// `paper_mixed(50)` geometry, 1 s horizon).
pub fn ablation() -> Vec<AblationRow> {
    use coefficient::CoefficientOptions;
    let variants: Vec<(&'static str, PolicyRef, CoefficientOptions)> = vec![
        (
            "CoEfficient (full)",
            coefficient::COEFFICIENT,
            CoefficientOptions::default(),
        ),
        (
            "– early copies",
            coefficient::COEFFICIENT,
            CoefficientOptions {
                early_copies: false,
                ..CoefficientOptions::default()
            },
        ),
        (
            "– cooperative dynamic",
            coefficient::COEFFICIENT,
            CoefficientOptions {
                cooperative_dynamic: false,
                ..CoefficientOptions::default()
            },
        ),
        (
            "– channel B (single)",
            coefficient::COEFFICIENT,
            CoefficientOptions {
                dual_channel: false,
                ..CoefficientOptions::default()
            },
        ),
        (
            "HOSA (dual-channel)",
            coefficient::HOSA,
            CoefficientOptions::default(),
        ),
        ("FSPEC", coefficient::FSPEC, CoefficientOptions::default()),
    ];
    let mut statics = bbw_acc_messages();
    statics.truncate(40);
    let sae = workloads::sae::message_set(IdRange::For80Slots, SEED);
    let labels: Vec<&'static str> = variants.iter().map(|&(v, ..)| v).collect();
    let cells: Vec<(RunConfig, CoefficientOptions)> = variants
        .into_iter()
        .map(|(_, policy, options)| {
            (
                RunConfig {
                    cluster: ClusterConfig::paper_mixed(50),
                    scenario: Scenario::ber7(),
                    static_messages: statics.clone(),
                    dynamic_messages: sae.clone(),
                    policy,
                    stop: StopCondition::Horizon(SimDuration::from_secs(1)),
                    seed: SEED,
                    trace: Default::default(),
                },
                options,
            )
        })
        .collect();
    let reports = run_parallel_with_options(cells, default_threads())
        .expect("ablation configuration must be schedulable");
    labels
        .into_iter()
        .zip(reports)
        .map(|(variant, report)| AblationRow {
            variant,
            delivered: report.delivered,
            static_latency_ms: report.static_latency.mean_millis_f64(),
            dynamic_latency_ms: report.dynamic_latency.mean_millis_f64(),
            utilization_pct: report.utilization * 100.0,
            miss_pct: report.miss_ratio() * 100.0,
        })
        .collect()
}

/// One row of the fault-model ablation.
#[derive(Debug, Clone)]
pub struct FaultModelRow {
    /// Fault process label.
    pub model: &'static str,
    /// Scheduling policy.
    pub policy: &'static str,
    /// In-time deliveries.
    pub delivered: u64,
    /// Frames corrupted by injection.
    pub corrupted: u64,
    /// Combined miss ratio, %.
    pub miss_pct: f64,
}

/// Fault-model ablation: independent Bernoulli faults vs a bursty
/// Gilbert–Elliott channel with a comparable average rate, at an elevated
/// BER so corruption is visible over a 1 s horizon.
pub fn fault_model_ablation() -> Vec<FaultModelRow> {
    use reliability::Ber;
    let base = Scenario {
        name: "BER-5",
        ber: Ber::new(1e-5).expect("constant in range"),
        gamma: 1e-7,
        unit: SimDuration::from_secs(3600),
        fault_model: coefficient::FaultModel::Bernoulli,
        campaign: None,
    };
    let scenarios = [
        ("bernoulli", base.clone()),
        ("gilbert-elliott", base.bursty()),
    ];
    let mut meta = Vec::new();
    let mut configs = Vec::new();
    for (model, scenario) in scenarios {
        for policy in [coefficient::COEFFICIENT, coefficient::FSPEC] {
            meta.push((model, policy));
            configs.push(RunConfig {
                cluster: ClusterConfig::paper_mixed(50),
                scenario: scenario.clone(),
                static_messages: dynamic_experiment_statics(),
                dynamic_messages: workloads::sae::message_set(IdRange::For80Slots, SEED),
                policy,
                stop: StopCondition::Horizon(SimDuration::from_secs(1)),
                seed: SEED,
                trace: Default::default(),
            });
        }
    }
    let reports = run_parallel(configs, default_threads())
        .expect("experiment configuration must be schedulable");
    meta.into_iter()
        .zip(reports)
        .map(|((model, policy), report)| FaultModelRow {
            model,
            policy: policy_name(policy),
            delivered: report.delivered,
            corrupted: report.corrupted,
            miss_pct: report.miss_ratio() * 100.0,
        })
        .collect()
}
