//! Minimal JSON document model and writer.
//!
//! The bench binaries emit machine-readable reports (`--json`, sweep
//! output). The workspace is built to compile with no external crates, so
//! this module provides the small subset of a JSON serializer the reports
//! need: objects with insertion-ordered keys, arrays, strings with full
//! escaping, and numbers that round-trip (`u64` exactly, `f64` via Rust's
//! shortest-representation formatter).
//!
//! ```
//! use bench_harness::json::Json;
//! let doc = Json::object([
//!     ("policy", Json::str("CoEfficient")),
//!     ("seeds", Json::array([Json::from(1u64), Json::from(2u64)])),
//! ]);
//! assert_eq!(doc.to_string(), r#"{"policy":"CoEfficient","seeds":[1,2]}"#);
//! ```

use std::fmt;

/// A JSON value. Object keys keep insertion order, so emitted documents
/// are stable across runs (a requirement for diffing sweep reports).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, emitted exactly (no float rounding at 2^53).
    UInt(u64),
    /// A float, emitted with Rust's shortest round-trip formatting.
    /// Non-finite values serialize as `null` (JSON has no NaN/Infinity).
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(values.into_iter().collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// Pretty-prints with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Object(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::String(v.to_owned())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(v) => write!(f, "{v}"),
            Json::Float(v) if v.is_finite() => {
                // Guarantee a float-typed literal: `1.0` rather than `1`.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Json::Float(_) => f.write_str("null"),
            Json::String(s) => {
                let mut out = String::new();
                write_escaped(&mut out, s);
                f.write_str(&out)
            }
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(pairs) => {
                f.write_str("{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut out = String::new();
                    write_escaped(&mut out, key);
                    write!(f, "{out}:{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::UInt(u64::MAX).to_string(), "18446744073709551615");
        assert_eq!(Json::Float(0.25).to_string(), "0.25");
        assert_eq!(Json::Float(3.0).to_string(), "3.0");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::str("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::str("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn nested_documents() {
        let doc = Json::object([
            ("name", Json::str("sweep")),
            ("cells", Json::array([Json::from(1u64), Json::Null])),
            ("nested", Json::object([("ok", Json::from(true))])),
        ]);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"sweep","cells":[1,null],"nested":{"ok":true}}"#
        );
    }

    #[test]
    fn object_keys_keep_insertion_order() {
        let doc = Json::object([("z", Json::UInt(1)), ("a", Json::UInt(2))]);
        assert_eq!(doc.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn pretty_round_trips_structure() {
        let doc = Json::object([("xs", Json::array([Json::UInt(1), Json::UInt(2)]))]);
        let pretty = doc.pretty();
        assert!(pretty.contains("\"xs\": [\n"));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn empty_containers_stay_compact_in_pretty() {
        let doc = Json::object([("a", Json::Array(vec![])), ("o", Json::Object(vec![]))]);
        assert_eq!(doc.pretty(), "{\n  \"a\": [],\n  \"o\": {}\n}");
    }
}
