//! Minimal JSON document model, writer and parser.
//!
//! The bench binaries emit machine-readable reports (`--json`, sweep
//! output) and read the golden corpus back for verification. The
//! workspace is built to compile with no external crates, so this module
//! provides the small subset of JSON the reports need: objects with
//! insertion-ordered keys, arrays, strings with full escaping, and
//! numbers that round-trip (`u64` exactly via [`Json::UInt`], `f64` via
//! Rust's shortest-representation formatter). [`Json::parse`] inverts
//! the writer: any document this module emits parses back to an equal
//! value (modulo non-finite floats, which serialize as `null`).
//!
//! ```
//! use bench_harness::json::Json;
//! let doc = Json::object([
//!     ("policy", Json::str("CoEfficient")),
//!     ("seeds", Json::array([Json::from(1u64), Json::from(2u64)])),
//! ]);
//! assert_eq!(doc.to_string(), r#"{"policy":"CoEfficient","seeds":[1,2]}"#);
//! ```

use std::fmt;

/// A JSON value. Object keys keep insertion order, so emitted documents
/// are stable across runs (a requirement for diffing sweep reports).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, emitted exactly (no float rounding at 2^53).
    UInt(u64),
    /// A float, emitted with Rust's shortest round-trip formatting.
    /// Non-finite values serialize as `null` (JSON has no NaN/Infinity).
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(values.into_iter().collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// Parses a JSON document (the inverse of the writer).
    ///
    /// Numbers without sign, fraction or exponent parse as [`Json::UInt`]
    /// (exact for the full `u64` range — fingerprints and seeds survive
    /// the round trip); everything else parses as [`Json::Float`].
    ///
    /// # Errors
    /// A [`JsonParseError`] with the byte offset of the first defect.
    pub fn parse(input: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` ([`Json::UInt`] widens; [`Json::Null`] reads as
    /// NaN, inverting the writer's NaN → `null` convention).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(v) => Some(*v),
            Json::UInt(v) => Some(*v as f64),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Object(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::String(v.to_owned())
    }
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What the parser expected or rejected.
    pub message: &'static str,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain UTF-8 up to the next quote/escape.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonParseError> {
        let c = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: a second \uXXXX must follow.
                    if self.peek() != Some(b'\\') {
                        return Err(self.err("lone high surrogate"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.err("lone high surrogate"));
                    }
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))?
            }
            _ => return Err(self.err("unknown escape character")),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let nibble = match d {
                b'0'..=b'9' => u32::from(d - b'0'),
                b'a'..=b'f' => u32::from(d - b'a') + 10,
                b'A'..=b'F' => u32::from(d - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = (v << 4) | nibble;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if text.is_empty() || text == "-" {
            return Err(self.err("malformed number"));
        }
        if !fractional && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonParseError {
                offset: start,
                message: "malformed number",
            })
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(v) => write!(f, "{v}"),
            Json::Float(v) if v.is_finite() => {
                // Guarantee a float-typed literal: `1.0` rather than `1`.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Json::Float(_) => f.write_str("null"),
            Json::String(s) => {
                let mut out = String::new();
                write_escaped(&mut out, s);
                f.write_str(&out)
            }
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(pairs) => {
                f.write_str("{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut out = String::new();
                    write_escaped(&mut out, key);
                    write!(f, "{out}:{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::UInt(u64::MAX).to_string(), "18446744073709551615");
        assert_eq!(Json::Float(0.25).to_string(), "0.25");
        assert_eq!(Json::Float(3.0).to_string(), "3.0");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::str("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::str("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn nested_documents() {
        let doc = Json::object([
            ("name", Json::str("sweep")),
            ("cells", Json::array([Json::from(1u64), Json::Null])),
            ("nested", Json::object([("ok", Json::from(true))])),
        ]);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"sweep","cells":[1,null],"nested":{"ok":true}}"#
        );
    }

    #[test]
    fn object_keys_keep_insertion_order() {
        let doc = Json::object([("z", Json::UInt(1)), ("a", Json::UInt(2))]);
        assert_eq!(doc.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn pretty_round_trips_structure() {
        let doc = Json::object([("xs", Json::array([Json::UInt(1), Json::UInt(2)]))]);
        let pretty = doc.pretty();
        assert!(pretty.contains("\"xs\": [\n"));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn empty_containers_stay_compact_in_pretty() {
        let doc = Json::object([("a", Json::Array(vec![])), ("o", Json::Object(vec![]))]);
        assert_eq!(doc.pretty(), "{\n  \"a\": [],\n  \"o\": {}\n}");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let doc = Json::object([
            ("schema", Json::str("coefficient-golden/1")),
            ("fingerprint", Json::str("00ffee0123456789")),
            ("seed", Json::UInt(u64::MAX)),
            ("ratio", Json::Float(0.125)),
            ("neg", Json::Float(-3.5)),
            ("whole", Json::Float(3.0)),
            ("flag", Json::Bool(false)),
            ("none", Json::Null),
            (
                "cells",
                Json::array([Json::UInt(1), Json::str("a\"b\\c\nd"), Json::Object(vec![])]),
            ),
        ]);
        for text in [doc.to_string(), doc.pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc, "failed on: {text}");
        }
    }

    #[test]
    fn parse_scalars_and_numbers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX),
            "u64::MAX must parse exactly, not via f64"
        );
        assert_eq!(Json::parse("-2").unwrap(), Json::Float(-2.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
        // Beyond u64: falls back to float.
        assert_eq!(
            Json::parse("99999999999999999999").unwrap(),
            Json::Float(1e20)
        );
    }

    #[test]
    fn parse_string_escapes() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\ndAé""#).unwrap(),
            Json::str("a\"b\\c\ndAé")
        );
        // Surrogate pair → astral char.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::str("\u{1F600}"));
    }

    #[test]
    fn parse_rejects_defects() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\" 1}",
            "nan",
            "-",
            r#""\ud83d""#,
            r#""\q""#,
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate_documents() {
        let doc = Json::parse(r#"{"a":{"b":[1,2.5,"x",null]},"f":true}"#).unwrap();
        let b = doc.get("a").and_then(|a| a.get("b")).unwrap();
        let items = b.as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].as_str(), Some("x"));
        assert!(items[3].as_f64().unwrap().is_nan(), "null reads as NaN");
        assert_eq!(doc.get("f").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(items[0].as_str(), None);
    }
}
