//! Bench-side sweep layer: matrix builders, JSON reports and the
//! serial-vs-parallel speedup measurement.
//!
//! The core harness ([`coefficient::sweep`]) executes a
//! `{policy × scenario × seed}` matrix and guarantees determinism; this
//! module supplies what the binaries need around it:
//!
//! * [`SweepSpec`] — the CLI-facing description of a sweep (parsed from
//!   `experiments sweep` flags) and its [`build_matrix`](SweepSpec::build_matrix);
//! * [`sweep_report_json`] — the stable JSON schema of a sweep result
//!   (see `README.md`, "Running sweeps");
//! * [`measure_speedup`] — times the same matrix serially and in
//!   parallel, checks the fingerprints agree, and reports the ratio.

use std::time::Duration;

use coefficient::sweep::default_threads;
use coefficient::{
    CellOutcome, GroupSummary, PolicyRef, Scenario, SchedulerError, SeedStrategy, StopCondition,
    SweepMatrix, SweepReport, SweepRunner, UnknownPolicy, COEFFICIENT, FSPEC,
};
use event_sim::SimDuration;
use flexray::config::ClusterConfig;
use metrics::AggregateSummary;
use workloads::sae::IdRange;

use crate::experiments::{dynamic_experiment_statics, SEED};
use crate::json::Json;

/// CLI-facing description of a sweep over the paper's mixed geometry.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Minislot count of the `paper_mixed` cluster.
    pub minislots: u64,
    /// Simulated horizon per cell, milliseconds.
    pub horizon_ms: u64,
    /// Number of seeds (seed indices `0..seeds` of `master_seed`).
    pub seeds: u64,
    /// Master seed the per-cell seeds derive from.
    pub master_seed: u64,
    /// Worker threads; `None` means all available parallelism.
    pub threads: Option<usize>,
    /// Policies under test.
    pub policies: Vec<PolicyRef>,
    /// Scenarios under test.
    pub scenarios: Vec<Scenario>,
    /// Seed derivation discipline.
    pub strategy: SeedStrategy,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            minislots: 50,
            horizon_ms: 1000,
            seeds: 8,
            master_seed: SEED,
            threads: None,
            policies: vec![COEFFICIENT, FSPEC],
            scenarios: vec![Scenario::ber7(), Scenario::ber9()],
            strategy: SeedStrategy::PerCell,
        }
    }
}

impl SweepSpec {
    /// Materializes the spec into a core [`SweepMatrix`].
    pub fn build_matrix(&self) -> SweepMatrix {
        SweepMatrix {
            cluster: ClusterConfig::paper_mixed(self.minislots),
            static_messages: dynamic_experiment_statics(),
            dynamic_messages: workloads::sae::message_set(IdRange::For80Slots, self.master_seed),
            policies: self.policies.clone(),
            scenarios: self.scenarios.clone(),
            seeds: (0..self.seeds)
                .map(|i| self.master_seed.wrapping_add(i))
                .collect(),
            stop: StopCondition::Horizon(SimDuration::from_millis(self.horizon_ms)),
            seed_strategy: self.strategy,
        }
    }

    /// Builds and runs the sweep.
    ///
    /// # Errors
    /// Returns [`SchedulerError`] if a cell is unschedulable.
    pub fn run(&self) -> Result<SweepReport, SchedulerError> {
        let mut runner = SweepRunner::new(self.build_matrix());
        if let Some(threads) = self.threads {
            runner = runner.threads(threads);
        }
        runner.run()
    }
}

/// Parses a policy flag value against the [`coefficient::registry`]
/// (keys, labels and aliases, case-insensitively).
///
/// # Errors
/// Returns [`UnknownPolicy`] — whose message lists every registered
/// name — when nothing in the registry matches.
pub fn parse_policy(s: &str) -> Result<PolicyRef, UnknownPolicy> {
    coefficient::registry::resolve(s)
}

/// Every scenario name [`parse_scenario`] accepts, in canonical
/// spelling: the three bases, each with its `-bursty` and `-storm`
/// variants. [`UnknownScenario`] lists these, mirroring how
/// [`UnknownPolicy`] lists the policy registry.
pub fn scenario_names() -> [&'static str; 9] {
    [
        "ber7",
        "ber7-bursty",
        "ber7-storm",
        "ber9",
        "ber9-bursty",
        "ber9-storm",
        "fault-free",
        "fault-free-bursty",
        "fault-free-storm",
    ]
}

/// A scenario flag value that [`parse_scenario`] could not resolve. The
/// `Display` message lists every valid name, exactly as
/// [`UnknownPolicy`] does for policies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownScenario {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scenario \"{}\" (valid: {})",
            self.name,
            scenario_names().join(", ")
        )
    }
}

impl std::error::Error for UnknownScenario {}

/// Parses a scenario flag value (`ber7` / `ber9` / `fault-free`, with a
/// `-bursty` suffix selecting the Gilbert–Elliott variant and a `-storm`
/// suffix the fault-storm variant).
///
/// # Errors
/// Returns [`UnknownScenario`] — whose message lists every valid name —
/// when nothing matches.
pub fn parse_scenario(s: &str) -> Result<Scenario, UnknownScenario> {
    let lower = s.to_ascii_lowercase();
    let (base, variant) = if let Some(base) = lower.strip_suffix("-bursty") {
        (base, Some(Scenario::bursty as fn(Scenario) -> Scenario))
    } else if let Some(base) = lower.strip_suffix("-storm") {
        (base, Some(Scenario::storm as fn(Scenario) -> Scenario))
    } else {
        (lower.as_str(), None)
    };
    let scenario = match base {
        "ber7" | "ber-7" => Scenario::ber7(),
        "ber9" | "ber-9" => Scenario::ber9(),
        "fault-free" | "faultfree" => Scenario::fault_free(),
        _ => {
            return Err(UnknownScenario {
                name: s.to_string(),
            })
        }
    };
    Ok(match variant {
        Some(f) => f(scenario),
        None => scenario,
    })
}

/// Human-readable policy label (matches the table output).
pub fn policy_label(p: PolicyRef) -> &'static str {
    p.label()
}

fn hex64(v: u64) -> Json {
    Json::String(format!("{v:016x}"))
}

fn duration_ms(d: Duration) -> Json {
    Json::Float(d.as_secs_f64() * 1e3)
}

/// JSON form of an [`AggregateSummary`].
pub fn summary_json(s: &AggregateSummary) -> Json {
    Json::object([
        ("count", Json::from(s.count)),
        ("mean", Json::from(s.mean)),
        ("std_dev", Json::from(s.std_dev)),
        ("min", Json::from(s.min)),
        ("max", Json::from(s.max)),
        ("p50", Json::from(s.p50)),
        ("p90", Json::from(s.p90)),
        ("p99", Json::from(s.p99)),
    ])
}

fn group_json(g: &GroupSummary) -> Json {
    Json::object([
        ("policy", Json::str(policy_label(g.policy))),
        ("scenario", Json::str(g.scenario)),
        ("cells", Json::from(g.cells)),
        ("running_time_s", summary_json(&g.running_time_s)),
        ("utilization", summary_json(&g.utilization)),
        ("static_latency_ms", summary_json(&g.static_latency_ms)),
        ("dynamic_latency_ms", summary_json(&g.dynamic_latency_ms)),
        ("miss_ratio", summary_json(&g.miss_ratio)),
        ("delivery_ratio", summary_json(&g.delivery_ratio)),
    ])
}

/// JSON form of one sweep cell (coordinates + seed + headline metrics).
pub fn cell_json(c: &CellOutcome) -> Json {
    let r = &c.report;
    Json::object([
        ("policy", Json::str(policy_label(c.policy))),
        ("scenario", Json::str(c.scenario)),
        ("policy_index", Json::from(c.coord.policy)),
        ("scenario_index", Json::from(c.coord.scenario)),
        ("seed_index", Json::from(c.coord.seed)),
        ("seed", Json::from(c.seed)),
        ("fingerprint", hex64(c.fingerprint)),
        ("running_time_s", Json::from(r.running_time.as_secs_f64())),
        ("utilization", Json::from(r.utilization)),
        (
            "static_latency_ms",
            Json::from(r.static_latency.mean_millis_f64()),
        ),
        (
            "dynamic_latency_ms",
            Json::from(r.dynamic_latency.mean_millis_f64()),
        ),
        ("miss_ratio", Json::from(r.miss_ratio())),
        ("produced", Json::from(r.produced)),
        ("delivered", Json::from(r.delivered)),
        ("corrupted", Json::from(r.corrupted)),
        (
            "counters",
            Json::object(
                r.counters
                    .fields()
                    .iter()
                    .map(|&(name, value)| (name, Json::from(value))),
            ),
        ),
    ])
}

/// The stable JSON schema of a sweep result (`schema:
/// "coefficient-sweep/1"`). Documented in `README.md`.
pub fn sweep_report_json(report: &SweepReport) -> Json {
    Json::object([
        ("schema", Json::str("coefficient-sweep/1")),
        ("threads", Json::from(report.threads)),
        ("wall_clock_ms", duration_ms(report.wall_clock)),
        ("fingerprint", hex64(report.fingerprint())),
        ("cells", Json::array(report.cells.iter().map(cell_json))),
        ("groups", Json::array(report.groups.iter().map(group_json))),
    ])
}

/// Result of [`measure_speedup`].
#[derive(Debug, Clone)]
pub struct SpeedupReport {
    /// Cells in the measured matrix.
    pub cells: usize,
    /// Worker threads of the parallel run.
    pub threads: usize,
    /// Serial (1-thread) wall clock.
    pub serial: Duration,
    /// Parallel wall clock.
    pub parallel: Duration,
    /// `serial / parallel`.
    pub speedup: f64,
    /// Whether the serial and parallel sweep fingerprints agree (they
    /// must; a mismatch means the determinism contract is broken).
    pub fingerprints_equal: bool,
    /// The (shared) sweep fingerprint.
    pub fingerprint: u64,
}

impl SpeedupReport {
    /// JSON form (`schema: "coefficient-sweep-speedup/1"`).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("schema", Json::str("coefficient-sweep-speedup/1")),
            ("cells", Json::from(self.cells)),
            ("threads", Json::from(self.threads)),
            ("serial_ms", duration_ms(self.serial)),
            ("parallel_ms", duration_ms(self.parallel)),
            ("speedup", Json::from(self.speedup)),
            ("fingerprints_equal", Json::from(self.fingerprints_equal)),
            ("fingerprint", hex64(self.fingerprint)),
        ])
    }
}

/// Runs the same matrix serially and with `threads` workers, verifying
/// the determinism contract and measuring the wall-clock ratio.
///
/// # Errors
/// Returns [`SchedulerError`] if a cell is unschedulable.
pub fn measure_speedup(spec: &SweepSpec, threads: usize) -> Result<SpeedupReport, SchedulerError> {
    let matrix = spec.build_matrix();
    let serial = SweepRunner::new(matrix.clone()).threads(1).run()?;
    let parallel = SweepRunner::new(matrix).threads(threads).run()?;
    Ok(SpeedupReport {
        cells: serial.cells.len(),
        threads: parallel.threads,
        serial: serial.wall_clock,
        parallel: parallel.wall_clock,
        speedup: serial.wall_clock.as_secs_f64() / parallel.wall_clock.as_secs_f64().max(1e-9),
        fingerprints_equal: serial.fingerprint() == parallel.fingerprint(),
        fingerprint: serial.fingerprint(),
    })
}

/// The spec of the acceptance benchmark: a 32-cell sweep
/// (2 policies × 2 scenarios × 8 seeds) on the default geometry, run with
/// up to 4 worker threads.
pub fn speedup_benchmark_spec() -> SweepSpec {
    SweepSpec {
        seeds: 8,
        horizon_ms: 500,
        ..SweepSpec::default()
    }
}

/// Worker-thread count of the acceptance benchmark (≤ 4, so the claimed
/// speedup is what a 4-core machine reproduces).
pub fn speedup_benchmark_threads() -> usize {
    default_threads().clamp(2, 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_a_32_cell_matrix() {
        let spec = speedup_benchmark_spec();
        let matrix = spec.build_matrix();
        assert_eq!(matrix.cell_count(), 32);
    }

    #[test]
    fn parse_policy_accepts_every_registered_name() {
        assert_eq!(parse_policy("coefficient").unwrap(), COEFFICIENT);
        assert_eq!(parse_policy("FSPEC").unwrap(), FSPEC);
        for policy in coefficient::registry::all() {
            assert_eq!(parse_policy(policy.key()).unwrap(), *policy);
            assert_eq!(parse_policy(policy.label()).unwrap(), *policy);
        }
        let err = parse_policy("bogus").unwrap_err().to_string();
        assert!(err.contains("unknown policy \"bogus\""), "{err}");
        for policy in coefficient::registry::all() {
            assert!(err.contains(policy.key()), "{err} missing {}", policy.key());
        }
    }

    #[test]
    fn parse_scenario_accepts_variants() {
        assert_eq!(parse_scenario("ber7").unwrap().name, "BER-7");
        assert_eq!(parse_scenario("BER-9").unwrap().name, "BER-9");
        assert_eq!(parse_scenario("fault-free").unwrap().name, "fault-free");
        assert!(parse_scenario("ber7-bursty").is_ok());
        assert_eq!(parse_scenario("ber7-storm").unwrap().name, "BER-7-storm");
        assert_eq!(parse_scenario("BER-9-storm").unwrap().name, "BER-9-storm");
        let err = parse_scenario("nope").unwrap_err();
        assert_eq!(err.name, "nope");
        let message = err.to_string();
        for name in scenario_names() {
            assert!(message.contains(name), "{message} missing {name}");
        }
    }

    #[test]
    fn sweep_json_has_the_documented_shape() {
        let spec = SweepSpec {
            seeds: 2,
            horizon_ms: 20,
            threads: Some(2),
            scenarios: vec![Scenario::ber7()],
            ..SweepSpec::default()
        };
        let report = spec.run().unwrap();
        let json = sweep_report_json(&report).to_string();
        assert!(json.starts_with(r#"{"schema":"coefficient-sweep/1""#));
        assert!(json.contains(r#""threads":2"#));
        assert!(json.contains(r#""cells":[{"policy":"CoEfficient""#));
        assert!(json.contains(r#""groups":[{"policy":"CoEfficient""#));
        assert!(json.contains(r#""fingerprint":"#));
    }

    #[test]
    fn speedup_keeps_fingerprints_equal() {
        let spec = SweepSpec {
            seeds: 2,
            horizon_ms: 20,
            scenarios: vec![Scenario::ber7()],
            ..SweepSpec::default()
        };
        let report = measure_speedup(&spec, 2).unwrap();
        assert!(report.fingerprints_equal);
        assert_eq!(report.cells, 4);
        assert!(report.speedup > 0.0);
    }
}
