//! Bench-side fleet layer: the smoke configuration, the
//! `coefficient-fleet/1` report and the `BENCH_fleet.json` throughput
//! document behind `experiments fleet`.
//!
//! The report JSON deliberately carries **no wall-clock, thread-count or
//! shard-size fields**: like the chaos scorecard, it must be
//! byte-identical across `--threads 1/2/8` and any `--shard-size`, so the
//! CI smoke job can `cmp` the files. Timing lives in the separate
//! benchmark document ([`fleet_bench_json`]), host-normalized with the
//! same paired-calibration scheme as `BENCH_cycles.json`.

use std::time::Duration;

use coefficient::{COEFFICIENT, GREEDY};
use event_sim::SimDuration;
use fleet::{FleetAggregate, FleetRun, FleetSpec, PolicyAggregate, PPB};
use metrics::LogHistogram;

use crate::cycles::calibration_pass;
use crate::json::Json;

/// The CI smoke configuration: 10 000 mixed-environment vehicles under
/// CoEfficient and Greedy, 10 ms horizons.
pub fn smoke_spec() -> FleetSpec {
    FleetSpec {
        vehicles: 10_000,
        policies: vec![COEFFICIENT, GREEDY],
        ..FleetSpec::default()
    }
}

/// The fleet quantiles every report carries, as `(key, q)` pairs —
/// through p99.999, the acceptance criterion's tail.
pub const FLEET_QUANTILES: [(&str, f64); 4] = [
    ("p50", 0.50),
    ("p99", 0.99),
    ("p99.99", 0.9999),
    ("p99.999", 0.99999),
];

fn quantiles_json(h: &LogHistogram) -> Json {
    Json::object(FLEET_QUANTILES.map(|(key, q)| {
        (
            key,
            h.quantile_upper_bound(q).map_or(Json::Null, Json::from),
        )
    }))
}

fn policy_json(spec: &FleetSpec, agg: &FleetAggregate, p: usize) -> Json {
    let pol: &PolicyAggregate = agg.policy(p);
    let labels = FleetAggregate::condition_labels();
    Json::object([
        ("policy", Json::str(spec.policies[p].label())),
        ("vehicles", Json::from(pol.vehicles)),
        ("unschedulable", Json::from(pol.unschedulable)),
        ("truncated", Json::from(pol.truncated)),
        (
            "by_condition",
            Json::object(
                labels
                    .iter()
                    .zip(&pol.by_condition)
                    .map(|(&label, &count)| (label, Json::from(count))),
            ),
        ),
        ("produced", Json::from(pol.produced)),
        ("delivered", Json::from(pol.delivered)),
        ("frames", Json::from(pol.frames)),
        ("corrupted", Json::from(pol.corrupted)),
        ("deadlines_met", Json::from(pol.deadlines_met)),
        ("deadlines_missed", Json::from(pol.deadlines_missed)),
        ("miss_ratio", Json::from(pol.miss_ratio())),
        ("deadline_miss_ppb", quantiles_json(&pol.miss_ppb)),
        ("recovery_latency_ns", quantiles_json(&pol.recovery_ns)),
        ("mean_latency_ns", quantiles_json(&pol.latency_ns)),
    ])
}

/// The stable JSON schema of a fleet result (`schema:
/// "coefficient-fleet/1"`): spec echo, shard-invariant digest, and a
/// per-policy breakdown with p50/p99/p99.99/p99.999 deadline-miss (parts
/// per billion) and recovery-latency quantiles. Thread-count invariant by
/// construction (no timing fields).
pub fn fleet_report_json(spec: &FleetSpec, agg: &FleetAggregate) -> Json {
    Json::object([
        ("schema", Json::str("coefficient-fleet/1")),
        ("env", Json::str(spec.env.name)),
        ("seed", Json::from(spec.seed)),
        ("vehicles", Json::from(spec.vehicles)),
        (
            "horizon_ms",
            Json::from(spec.horizon.as_nanos() / 1_000_000),
        ),
        ("minislots", Json::from(spec.minislots)),
        ("miss_ppb_scale", Json::from(PPB)),
        ("digest", Json::String(format!("{:016x}", agg.digest()))),
        (
            "policies",
            Json::array((0..spec.policies.len()).map(|p| policy_json(spec, agg, p))),
        ),
    ])
}

/// The `BENCH_fleet.json` document (`schema: "coefficient-bench-fleet/1"`):
/// fleet throughput in vehicles/sec, host-normalized like
/// `BENCH_cycles.json` — the wall clock is paired with a calibration pass
/// ([`crate::cycles`]) timed on the same host moments before, so
/// `vehicles_per_cal` compares across machines.
pub fn fleet_bench_json(spec: &FleetSpec, run: &FleetRun, calibration: Duration) -> Json {
    let wall = run.wall_clock.as_secs_f64();
    let cal = calibration.as_secs_f64().max(1e-12);
    let vehicles = spec.vehicles as f64;
    Json::object([
        ("schema", Json::str("coefficient-bench-fleet/1")),
        ("env", Json::str(spec.env.name)),
        ("vehicles", Json::from(spec.vehicles)),
        ("policies", Json::from(spec.policies.len())),
        ("threads", Json::from(run.threads)),
        ("shard_size", Json::from(spec.shard_size)),
        ("wall_ms", Json::Float(wall * 1e3)),
        ("vehicles_per_sec", Json::Float(vehicles / wall.max(1e-12))),
        ("calibration_ns", Json::from(calibration.as_nanos() as u64)),
        ("wall_per_cal", Json::Float(wall / cal)),
        (
            "vehicles_per_cal",
            Json::Float(vehicles / (wall / cal).max(1e-12)),
        ),
        ("aggregation_bytes", Json::from(run.aggregation_bytes)),
    ])
}

/// Times one calibration pass for [`fleet_bench_json`] (re-exported so
/// the binary measures it adjacent to the run, like the cycles bench).
pub fn fleet_calibration() -> Duration {
    calibration_pass()
}

/// Parses `--horizon-ms` style input into the spec's duration.
pub fn horizon_from_ms(ms: u64) -> SimDuration {
    SimDuration::from_millis(ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet::exec;

    fn tiny_spec() -> FleetSpec {
        FleetSpec {
            vehicles: 16,
            shard_size: 8,
            horizon: SimDuration::from_millis(5),
            ..smoke_spec()
        }
    }

    #[test]
    fn report_json_has_the_documented_shape() {
        let spec = tiny_spec();
        let run = exec::run(&spec, 2);
        let json = fleet_report_json(&spec, &run.aggregate).to_string();
        assert!(json.starts_with(r#"{"schema":"coefficient-fleet/1""#));
        assert!(json.contains(r#""env":"mixed""#));
        assert!(json.contains(r#""digest":""#));
        assert!(json.contains(r#""p99.999":"#), "{json}");
        assert!(json.contains(r#""deadline_miss_ppb":"#));
        assert!(json.contains(r#""recovery_latency_ns":"#));
        assert!(json.contains(r#""policy":"CoEfficient""#));
        assert!(json.contains(r#""policy":"Greedy""#));
        // Thread-invariance: no timing or sharding fields in the report.
        assert!(!json.contains("wall"), "{json}");
        assert!(!json.contains("threads"), "{json}");
        assert!(!json.contains("shard"), "{json}");
    }

    #[test]
    fn report_json_is_byte_identical_across_thread_counts() {
        let spec = tiny_spec();
        let a = exec::run(&spec, 1);
        let b = exec::run(&spec, 4);
        assert_eq!(
            fleet_report_json(&spec, &a.aggregate).to_string(),
            fleet_report_json(&spec, &b.aggregate).to_string()
        );
    }

    #[test]
    fn bench_json_is_host_normalized() {
        let spec = tiny_spec();
        let run = exec::run(&spec, 1);
        let json = fleet_bench_json(&spec, &run, Duration::from_millis(10)).to_string();
        assert!(json.starts_with(r#"{"schema":"coefficient-bench-fleet/1""#));
        assert!(json.contains(r#""vehicles_per_sec":"#));
        assert!(json.contains(r#""wall_per_cal":"#));
        assert!(json.contains(r#""vehicles_per_cal":"#));
        let parsed = Json::parse(&json).unwrap();
        assert!(parsed.get("vehicles_per_sec").unwrap().as_f64().unwrap() > 0.0);
    }
}
