//! Minimal fixed-width table printing for the experiments binary.

/// Prints a header and rows with column widths fitted to the content.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: Vec<String> = header
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:width$}", h, width = widths[i]))
        .collect();
    println!("{}", line.join("  "));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("{}", line.join("  "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printing_does_not_panic() {
        print_table(
            "demo",
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        print_table("empty", &["x"], &[]);
    }
}
