//! Tiny wall-clock benchmarking helper for the `benches/` binaries.
//!
//! The workspace compiles with no external crates, so the bench binaries
//! (`harness = false`) time themselves with `std::time::Instant` instead
//! of Criterion: a warm-up iteration, `iters` measured iterations, then a
//! one-line human summary and a machine-readable JSON line per benchmark.

use std::time::{Duration, Instant};

use crate::json::Json;

/// One timed benchmark case.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Case label (`group/case` by convention).
    pub label: String,
    /// Measured iterations (after one warm-up).
    pub iters: u32,
    /// Mean wall-clock per iteration.
    pub mean: Duration,
    /// Fastest iteration.
    pub min: Duration,
    /// Slowest iteration.
    pub max: Duration,
}

impl Timing {
    /// JSON form (`schema: "coefficient-bench-timing/1"`).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("schema", Json::str("coefficient-bench-timing/1")),
            ("label", Json::str(self.label.clone())),
            ("iters", Json::from(u64::from(self.iters))),
            ("mean_ms", Json::Float(self.mean.as_secs_f64() * 1e3)),
            ("min_ms", Json::Float(self.min.as_secs_f64() * 1e3)),
            ("max_ms", Json::Float(self.max.as_secs_f64() * 1e3)),
        ])
    }
}

/// Times `f` over one warm-up plus `iters` measured iterations and prints
/// both the human summary and the JSON line. The closure's return value
/// is consumed so the work cannot be optimized away.
///
/// # Panics
/// Panics if `iters` is zero.
pub fn bench<T>(label: &str, iters: u32, mut f: impl FnMut() -> T) -> Timing {
    assert!(iters > 0, "at least one measured iteration required");
    let _warmup = f();
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let start = Instant::now();
        let value = f();
        let elapsed = start.elapsed();
        drop(value);
        min = min.min(elapsed);
        max = max.max(elapsed);
        total += elapsed;
    }
    let timing = Timing {
        label: label.to_owned(),
        iters,
        mean: total / iters,
        min,
        max,
    };
    println!(
        "{label}: mean {:.2} ms (min {:.2}, max {:.2}, {iters} iters)",
        timing.mean.as_secs_f64() * 1e3,
        timing.min.as_secs_f64() * 1e3,
        timing.max.as_secs_f64() * 1e3,
    );
    println!("{}", timing.to_json());
    timing
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_all_iterations() {
        let mut calls = 0u32;
        let t = bench("test/case", 3, || calls += 1);
        assert_eq!(calls, 4, "one warm-up + three measured");
        assert_eq!(t.iters, 3);
        assert!(t.min <= t.mean && t.mean <= t.max);
        let json = t.to_json().to_string();
        assert!(json.contains(r#""label":"test/case""#));
    }
}
