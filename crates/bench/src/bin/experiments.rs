//! Regenerates every figure of the CoEfficient paper's evaluation.
//!
//! ```text
//! experiments [fig1|fig2|fig3|fig4a..fig4d|fig5|ablation|faults|verify|all] [--json]
//! ```
//!
//! `verify` re-runs the paper's headline claims and exits non-zero if any
//! fails — the one-command reproduction check.
//!
//! Without arguments, runs everything. `--json` additionally dumps the raw
//! rows as JSON to stdout (for plotting).

use bench_harness::experiments::{
    ablation, fault_model_ablation, fig3_bandwidth, fig4_latency, fig5_miss_ratio,
    fig_running_time, verify_reproduction, Segment,
};
use bench_harness::table::print_table;
use coefficient::Scenario;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let all = which.is_empty() || which.contains(&"all");
    let want = |f: &str| all || which.contains(&f);

    let counts: Vec<u64> = vec![200, 400, 600, 800, 1000];

    if want("fig1") {
        let rows = fig_running_time(&Scenario::ber7(), &counts);
        print_table(
            "Figure 1 — running time, BER-7 (seconds of simulated bus time)",
            &["workload", "slots", "policy", "messages", "running time [s]"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.workload.to_string(),
                        r.slots.to_string(),
                        r.policy.to_string(),
                        r.messages.to_string(),
                        format!("{:.3}", r.running_time_s),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        if json {
            println!("{}", serde_json::to_string(&rows).expect("serializable"));
        }
    }

    if want("fig2") {
        let rows = fig_running_time(&Scenario::ber9(), &counts);
        print_table(
            "Figure 2 — running time, BER-9 (seconds of simulated bus time)",
            &["workload", "slots", "policy", "messages", "running time [s]"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.workload.to_string(),
                        r.slots.to_string(),
                        r.policy.to_string(),
                        r.messages.to_string(),
                        format!("{:.3}", r.running_time_s),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        if json {
            println!("{}", serde_json::to_string(&rows).expect("serializable"));
        }
    }

    if want("fig3") {
        let rows = fig3_bandwidth();
        print_table(
            "Figure 3 — bandwidth utilization (%)",
            &["minislots", "policy", "utilization [%]"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.minislots.to_string(),
                        r.policy.to_string(),
                        format!("{:.1}", r.utilization_pct),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        if json {
            println!("{}", serde_json::to_string(&rows).expect("serializable"));
        }
    }

    for (fig, workload, segment) in [
        ("fig4a", "synthetic", Segment::Static),
        ("fig4b", "BBW+ACC", Segment::Static),
        ("fig4c", "synthetic", Segment::Dynamic),
        ("fig4d", "BBW+ACC", Segment::Dynamic),
    ] {
        if !want(fig) {
            continue;
        }
        let rows: Vec<_> = fig4_latency(workload)
            .into_iter()
            .filter(|r| r.segment == segment)
            .collect();
        print_table(
            &format!(
                "Figure 4({}) — average {} -segment latency, {workload} (ms)",
                &fig[4..],
                if segment == Segment::Static { "static" } else { "dynamic" },
            ),
            &["minislots", "scenario", "policy", "mean latency [ms]"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.minislots.to_string(),
                        r.scenario.to_string(),
                        r.policy.to_string(),
                        format!("{:.3}", r.mean_latency_ms),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        if json {
            println!("{}", serde_json::to_string(&rows).expect("serializable"));
        }
    }

    if want("verify") {
        let verdicts = verify_reproduction();
        print_table(
            "Reproduction verdict — the paper's headline claims vs this build",
            &["claim", "verdict", "evidence"],
            &verdicts
                .iter()
                .map(|v| {
                    vec![
                        v.claim.to_string(),
                        if v.pass { "PASS".into() } else { "FAIL".into() },
                        v.evidence.clone(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        if json {
            println!("{}", serde_json::to_string(&verdicts).expect("serializable"));
        }
        if verdicts.iter().any(|v| !v.pass) {
            std::process::exit(1);
        }
    }

    if want("ablation") {
        let rows = ablation();
        print_table(
            "Ablation — each CoEfficient mechanism isolated (BBW+ACC + SAE, 1 s)",
            &["variant", "delivered", "static lat [ms]", "dynamic lat [ms]", "util [%]", "miss [%]"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.variant.to_string(),
                        r.delivered.to_string(),
                        format!("{:.3}", r.static_latency_ms),
                        format!("{:.3}", r.dynamic_latency_ms),
                        format!("{:.1}", r.utilization_pct),
                        format!("{:.2}", r.miss_pct),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        if json {
            println!("{}", serde_json::to_string(&rows).expect("serializable"));
        }
    }

    if want("faults") {
        let rows = fault_model_ablation();
        print_table(
            "Fault-model ablation — Bernoulli vs Gilbert–Elliott at BER 1e-5",
            &["model", "policy", "delivered", "corrupted", "miss [%]"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.model.to_string(),
                        r.policy.to_string(),
                        r.delivered.to_string(),
                        r.corrupted.to_string(),
                        format!("{:.2}", r.miss_pct),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        if json {
            println!("{}", serde_json::to_string(&rows).expect("serializable"));
        }
    }

    if want("fig5") {
        let rows = fig5_miss_ratio();
        print_table(
            "Figure 5 — deadline miss ratio (%)",
            &["minislots", "scenario", "policy", "miss ratio [%]"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.minislots.to_string(),
                        r.scenario.to_string(),
                        r.policy.to_string(),
                        format!("{:.2}", r.miss_pct),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        if json {
            println!("{}", serde_json::to_string(&rows).expect("serializable"));
        }
    }
}
