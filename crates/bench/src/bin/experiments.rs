//! Regenerates every figure of the CoEfficient paper's evaluation, and
//! runs multi-seed sweeps on the same machinery.
//!
//! ```text
//! experiments [fig1|fig2|fig3|fig4a..fig4d|fig5|ablation|faults|verify|all] [--json]
//! experiments sweep  [--seeds N] [--master-seed X] [--minislots M]
//!                    [--horizon-ms H] [--threads T] [--policy P]...
//!                    [--scenario S]... [--shared-seeds] [--json] [--pretty]
//! experiments replay --cell POLICY,SCENARIO,SEED [sweep flags]
//! experiments trace  --cell POLICY,SCENARIO,SEED [--golden] [--out PATH]
//!                    [--format chrome|json] [--capacity N]
//!                    [--sample-every N] [sweep flags]
//! experiments golden record [--out PATH] [--name NAME]
//! experiments golden verify [--corpus PATH]
//! experiments determinism [--thread-counts 1,2,8] [sweep flags]
//! experiments chaos  [--campaign NAME] [--scenario S] [--policy P]...
//!                    [--require P]... [--seed N] [--horizon-cycles N]
//!                    [--recovery-budget N] [--hard-miss-budget N]
//!                    [--threads T] [--out PATH]
//! experiments cycles [--smoke] [--iters N] [--out PATH]
//!                    [--baseline PATH] [--tolerance F]
//! experiments backbone [--topology T] [--reservation R]... [--threads N]
//!                      [--hypercycles H] [--flows] [--out PATH]
//! experiments trace-overhead [--cell POLICY,SCENARIO,SEED] [--iters N]
//!                    [--capacity N] [--sample-every N] [--tolerance F]
//! experiments fleet  [--vehicles N] [--policy P]... [--env E] [--seed N]
//!                    [--threads T] [--shard-size N] [--horizon-ms H]
//!                    [--minislots M] [--out PATH] [--bench-out PATH]
//!                    [--stats-file PATH] [--stats-socket PATH]
//!                    [--stats-every-ms N] [--smoke]
//! ```
//!
//! `verify` re-runs the paper's headline claims and exits non-zero if any
//! fails — the one-command reproduction check. `sweep` executes a
//! `{policy × scenario × seed}` matrix in parallel and prints per-group
//! distribution summaries (schema `coefficient-sweep/1` with `--json`).
//! `replay` re-runs one cell of that matrix from its coordinates and
//! prints its fingerprint — it must match the cell in any sweep of the
//! same flags, at any thread count.
//!
//! `trace` replays one cell with structured event tracing enabled and
//! writes either a Chrome `trace_event` file (`--format chrome`, openable
//! in <https://ui.perfetto.dev>) or a `coefficient-trace/1` document
//! (`--format json`, the default). The cell is run twice and the event
//! streams must compare bit-for-bit; the traced fingerprint must equal an
//! untraced replay's. `--golden` selects the golden-corpus matrix instead
//! of the sweep flags.
//!
//! `golden record` runs the pinned 54-cell regression matrix and writes
//! the `coefficient-golden/1` corpus (default `corpus/golden.json`);
//! `golden verify` replays the corpus' own spec and exits non-zero on any
//! fingerprint, counter or metric divergence, printing a counter-level
//! diff. `determinism` runs the same sweep at several worker-thread
//! counts and exits non-zero if the fingerprints disagree.
//!
//! `cycles` runs the pinned per-policy throughput matrix (18 cells per
//! registered policy) and prints cycles/sec, ns/cycle and peak scratch
//! bytes per policy; `--out` writes the `coefficient-bench-cycles/1`
//! document (CI uploads it as `BENCH_cycles.json`) and `--baseline`
//! compares cycles/sec against a recorded baseline, exiting non-zero on a
//! regression beyond `--tolerance` (default 0.15).
//!
//! `backbone` runs the time-triggered Ethernet gateway matrix: a named
//! topology (two FlexRay domains bridged by GCL-windowed egress ports)
//! under every registered reservation policy, writing the
//! `coefficient-backbone/1` report with `--out`. It exits non-zero if an
//! admitted flow's observed end-to-end jitter exceeds its declared bound
//! or if the hypercycle policy shows no gain over the per-cycle baseline
//! on a shared `(scenario, seed)` cell. `trace-overhead` times a pinned
//! golden cell untraced vs traced (1 MiB ring, `sample_every(10)`) and
//! exits non-zero if the traced run costs more than `--tolerance`
//! (default 5%) over the untraced one.
//!
//! Without arguments, runs every figure. `--json` additionally dumps the
//! raw rows as JSON to stdout (for plotting).

use bench_harness::experiments::{
    ablation, dynamic_experiment_statics, fault_model_ablation, fig3_bandwidth, fig4_latency,
    fig5_miss_ratio, fig_running_time, run_once, verify_reproduction, Segment,
};
use std::path::Path;

use bench_harness::backbone::{backbone_report_json, check_matrix as check_backbone_matrix};
use bench_harness::chaos::{self, ChaosContract};
use bench_harness::cycles::{
    compare_to_baseline, cycles_from_json, cycles_spec, cycles_to_json, measure_cycles,
    CYCLES_TOLERANCE,
};
use bench_harness::fleet as fleet_bench;
use bench_harness::golden::{
    golden_spec, load_corpus, record_corpus, save_corpus, verify_backbone, verify_corpus,
    DEFAULT_CORPUS_PATH,
};
use bench_harness::json::Json;
use bench_harness::sweep::{
    cell_json, parse_policy, parse_scenario, policy_label, sweep_report_json, SweepSpec,
};
use bench_harness::table::print_table;
use bench_harness::trace::{counter_names, trace_json, validate_trace};
use coefficient::{CellCoord, Scenario, SeedStrategy, StopCondition, SweepRunner, TraceConfig};
use event_sim::SimDuration;
use fleet::FleetSpec;
use flexray::config::ClusterConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sweep") => run_sweep(&args[1..]),
        Some("replay") => run_replay(&args[1..]),
        Some("trace") => run_trace(&args[1..]),
        Some("golden") => run_golden(&args[1..]),
        Some("determinism") => run_determinism(&args[1..]),
        Some("storm-smoke") => run_storm_smoke(&args[1..]),
        Some("chaos") => run_chaos(&args[1..]),
        Some("cycles") => run_cycles(&args[1..]),
        Some("fleet") => run_fleet(&args[1..]),
        Some("backbone") => run_backbone(&args[1..]),
        Some("trace-overhead") => run_trace_overhead(&args[1..]),
        _ => run_figures(&args),
    }
}

// ---------------------------------------------------------------------------
// sweep / replay
// ---------------------------------------------------------------------------

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_number<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    flag_value(args, flag).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for {flag}: {v}");
            std::process::exit(2);
        })
    })
}

fn flag_values<'a>(args: &'a [String], flag: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == flag)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(String::as_str)
        .collect()
}

fn parse_spec(args: &[String]) -> SweepSpec {
    let mut spec = SweepSpec::default();
    if let Some(v) = parse_number(args, "--seeds") {
        spec.seeds = v;
    }
    if let Some(v) = parse_number(args, "--master-seed") {
        spec.master_seed = v;
    }
    if let Some(v) = parse_number(args, "--minislots") {
        spec.minislots = v;
    }
    if let Some(v) = parse_number(args, "--horizon-ms") {
        spec.horizon_ms = v;
    }
    if let Some(v) = parse_number(args, "--threads") {
        spec.threads = Some(v);
    }
    let policies: Vec<_> = flag_values(args, "--policy")
        .into_iter()
        .map(|v| {
            parse_policy(v).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            })
        })
        .collect();
    if !policies.is_empty() {
        spec.policies = policies;
    }
    let scenarios: Vec<_> = flag_values(args, "--scenario")
        .into_iter()
        .map(|v| {
            parse_scenario(v).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            })
        })
        .collect();
    if !scenarios.is_empty() {
        spec.scenarios = scenarios;
    }
    if args.iter().any(|a| a == "--shared-seeds") {
        spec.strategy = SeedStrategy::Shared;
    }
    spec
}

fn run_sweep(args: &[String]) {
    let spec = parse_spec(args);
    let report = spec.run().unwrap_or_else(|e| {
        eprintln!("sweep configuration is unschedulable: {e:?}");
        std::process::exit(1);
    });
    if args.iter().any(|a| a == "--json" || a == "--pretty") {
        let doc = sweep_report_json(&report);
        if args.iter().any(|a| a == "--pretty") {
            println!("{}", doc.pretty());
        } else {
            println!("{doc}");
        }
        return;
    }
    print_table(
        &format!(
            "Sweep — {} cells on {} threads in {:.0} ms (fingerprint {:016x})",
            report.cells.len(),
            report.threads,
            report.wall_clock.as_secs_f64() * 1e3,
            report.fingerprint(),
        ),
        &[
            "policy",
            "scenario",
            "seeds",
            "util mean±sd",
            "miss mean±sd",
            "dyn lat p90 [ms]",
        ],
        &report
            .groups
            .iter()
            .map(|g| {
                vec![
                    policy_label(g.policy).to_string(),
                    g.scenario.to_string(),
                    g.cells.to_string(),
                    format!("{:.3}±{:.3}", g.utilization.mean, g.utilization.std_dev),
                    format!("{:.4}±{:.4}", g.miss_ratio.mean, g.miss_ratio.std_dev),
                    format!("{:.3}", g.dynamic_latency_ms.p90),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Parses `--cell P,S,SEED` and bounds-checks it against `matrix`.
fn parse_cell(args: &[String], matrix: &coefficient::SweepMatrix, subcommand: &str) -> CellCoord {
    let Some(cell) = flag_value(args, "--cell") else {
        eprintln!("{subcommand} requires --cell POLICY_INDEX,SCENARIO_INDEX,SEED_INDEX");
        std::process::exit(2);
    };
    let indices: Vec<usize> = cell
        .split(',')
        .map(|p| {
            p.trim().parse().unwrap_or_else(|_| {
                eprintln!("invalid --cell component: {p}");
                std::process::exit(2);
            })
        })
        .collect();
    let [policy, scenario, seed] = indices[..] else {
        eprintln!("--cell needs exactly three comma-separated indices");
        std::process::exit(2);
    };
    let coord = CellCoord {
        policy,
        scenario,
        seed,
    };
    if coord.policy >= matrix.policies.len()
        || coord.scenario >= matrix.scenarios.len()
        || coord.seed >= matrix.seeds.len()
    {
        eprintln!(
            "--cell {cell} out of range for a {}x{}x{} matrix",
            matrix.policies.len(),
            matrix.scenarios.len(),
            matrix.seeds.len()
        );
        std::process::exit(2);
    }
    coord
}

fn run_replay(args: &[String]) {
    let spec = parse_spec(args);
    let runner = SweepRunner::new(spec.build_matrix());
    let coord = parse_cell(args, runner.matrix(), "replay");
    let outcome = runner.replay(coord).unwrap_or_else(|e| {
        eprintln!("replayed cell is unschedulable: {e:?}");
        std::process::exit(1);
    });
    println!("{}", cell_json(&outcome).pretty());
}

// ---------------------------------------------------------------------------
// trace
// ---------------------------------------------------------------------------

/// `experiments trace`: replays one cell with tracing on and exports the
/// event stream. Runs the cell twice and refuses to write anything if the
/// two streams differ or if the traced fingerprint diverges from an
/// untraced replay — the export is only as useful as its determinism.
fn run_trace(args: &[String]) {
    let spec = if args.iter().any(|a| a == "--golden") {
        golden_spec()
    } else {
        parse_spec(args)
    };
    let matrix = spec.build_matrix();
    let coord = parse_cell(args, &matrix, "trace");
    let capacity: usize = parse_number(args, "--capacity").unwrap_or(1 << 20);
    let sample_every: u64 = parse_number(args, "--sample-every").unwrap_or(10);
    let format = flag_value(args, "--format").unwrap_or("json");
    if !matches!(format, "json" | "chrome") {
        eprintln!("unknown --format: {format} (expected chrome|json)");
        std::process::exit(2);
    }

    let mut cfg = matrix.config(coord);
    cfg.trace = TraceConfig::ring(capacity).sample_every(sample_every);
    let run = |cfg: coefficient::RunConfig| {
        coefficient::Runner::new(cfg)
            .unwrap_or_else(|e| {
                eprintln!("traced cell is unschedulable: {e:?}");
                std::process::exit(1);
            })
            .run()
    };
    let first = run(cfg.clone());
    let second = run(cfg);
    if first.trace != second.trace {
        eprintln!("trace FAILED: two replays of the same cell produced different event streams");
        std::process::exit(1);
    }
    let untraced = SweepRunner::new(matrix.clone())
        .replay(coord)
        .unwrap_or_else(|e| {
            eprintln!("replayed cell is unschedulable: {e:?}");
            std::process::exit(1);
        });
    if first.fingerprint() != untraced.fingerprint {
        eprintln!(
            "trace FAILED: traced fingerprint {:016x} != untraced {:016x} — tracing perturbed the run",
            first.fingerprint(),
            untraced.fingerprint
        );
        std::process::exit(1);
    }

    let cell = coefficient::CellOutcome {
        coord,
        policy: matrix.policies[coord.policy],
        scenario: matrix.scenarios[coord.scenario].name,
        seed: matrix.cell_seed(coord),
        fingerprint: first.fingerprint(),
        report: first,
    };
    let log = cell.report.trace.as_ref().expect("tracing was enabled");
    let names = counter_names();
    let (content, default_name) = match format {
        "chrome" => (
            observe::chrome_trace_json(log, &names),
            format!(
                "trace-{}-{}-{}.chrome.json",
                coord.policy, coord.scenario, coord.seed
            ),
        ),
        _ => {
            let doc = trace_json(&cell).expect("trace is present");
            // Round-trip the document through the parser and the schema
            // validator before letting it out of the process.
            let parsed = Json::parse(&doc.to_string()).unwrap_or_else(|e| {
                eprintln!("trace FAILED: exported JSON does not parse: {e}");
                std::process::exit(1);
            });
            if let Err(defect) = validate_trace(&parsed) {
                eprintln!("trace FAILED: exported JSON violates coefficient-trace/1: {defect}");
                std::process::exit(1);
            }
            (
                doc.to_string(),
                format!(
                    "trace-{}-{}-{}.json",
                    coord.policy, coord.scenario, coord.seed
                ),
            )
        }
    };
    let out = flag_value(args, "--out")
        .map(String::from)
        .unwrap_or(default_name);
    std::fs::write(&out, &content).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!(
        "trace: {} {} seed {} -> {out}",
        policy_label(cell.policy),
        cell.scenario,
        cell.seed
    );
    println!(
        "  {} events ({} dropped, capacity {}), fingerprint {:016x} (= untraced replay)",
        log.events.len(),
        log.dropped,
        log.capacity,
        cell.fingerprint
    );
}

// ---------------------------------------------------------------------------
// golden / determinism
// ---------------------------------------------------------------------------

fn run_golden(args: &[String]) {
    match args.first().map(String::as_str) {
        Some("record") => {
            let out = flag_value(args, "--out").unwrap_or(DEFAULT_CORPUS_PATH);
            let name = flag_value(args, "--name").unwrap_or("default");
            let file = record_corpus(name, &golden_spec()).unwrap_or_else(|e| {
                eprintln!("golden record failed: {e}");
                std::process::exit(1);
            });
            save_corpus(Path::new(out), &file).unwrap_or_else(|e| {
                eprintln!("cannot write {out}: {e}");
                std::process::exit(1);
            });
            println!(
                "golden record: wrote {} cells, {} groups and {} backbone cells to {out}",
                file.corpus.cells.len(),
                file.corpus.groups.len(),
                file.backbone.len(),
            );
        }
        Some("verify") => {
            let path = flag_value(args, "--corpus").unwrap_or(DEFAULT_CORPUS_PATH);
            let file = load_corpus(Path::new(path)).unwrap_or_else(|e| {
                eprintln!("{e}");
                eprintln!("(record one with: experiments golden record --out {path})");
                std::process::exit(2);
            });
            let report = verify_corpus(&file).unwrap_or_else(|e| {
                eprintln!("golden verify could not replay: {e}");
                std::process::exit(1);
            });
            print!("{report}");
            let backbone_defects = verify_backbone(&file).unwrap_or_else(|e| {
                eprintln!("backbone replay failed to run: {e}");
                std::process::exit(1);
            });
            for defect in &backbone_defects {
                eprintln!("{defect}");
            }
            if backbone_defects.is_empty() {
                println!(
                    "backbone: {} cell(s) replayed bit-identically",
                    file.backbone.len()
                );
            }
            if !report.passed() || !backbone_defects.is_empty() {
                eprintln!(
                    "golden verify FAILED against {path}; if the change is intentional, \
                     re-record with: experiments golden record --out {path}"
                );
                std::process::exit(1);
            }
        }
        _ => {
            eprintln!("usage: experiments golden record|verify [--out|--corpus PATH]");
            std::process::exit(2);
        }
    }
}

// ---------------------------------------------------------------------------
// cycles (perf trajectory)
// ---------------------------------------------------------------------------

fn run_cycles(args: &[String]) {
    let mut spec = cycles_spec(args.iter().any(|a| a == "--smoke"));
    if let Some(iters) = parse_number(args, "--iters") {
        spec.iters = iters;
    }
    let report = measure_cycles(&spec).unwrap_or_else(|e| {
        eprintln!("cycles matrix is unschedulable: {e:?}");
        std::process::exit(1);
    });
    println!(
        "bench cycles ({} mode): {} scenarios x {} seeds, best of {} iters, \
         calibration {:.2} ms",
        report.mode,
        report.scenarios.len(),
        report.seeds,
        report.iters,
        report.calibration.as_secs_f64() * 1e3,
    );
    for p in &report.policies {
        println!(
            "  {:<12} {:>3} cells  {:>9} cycles  {:>8.1} ms  {:>12.0} cycles/s  {:>8.1} ns/cycle  {:>7} scratch B",
            p.policy,
            p.cells,
            p.sim_cycles,
            p.wall.as_secs_f64() * 1e3,
            p.cycles_per_sec(),
            p.ns_per_cycle(),
            p.peak_scratch_bytes,
        );
    }
    if let Some(out) = flag_value(args, "--out") {
        let text = cycles_to_json(&report).pretty() + "\n";
        std::fs::write(out, text).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        });
        println!("bench cycles: wrote {out}");
    }
    if let Some(path) = flag_value(args, "--baseline") {
        let tolerance: f64 = parse_number(args, "--tolerance").unwrap_or(CYCLES_TOLERANCE);
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            eprintln!("(record one with: experiments cycles --smoke --out {path})");
            std::process::exit(2);
        });
        let baseline = Json::parse(&text)
            .map_err(|e| e.to_string())
            .and_then(|doc| cycles_from_json(&doc))
            .unwrap_or_else(|e| {
                eprintln!("invalid baseline {path}: {e}");
                std::process::exit(2);
            });
        let comparisons = compare_to_baseline(&report, &baseline, tolerance).unwrap_or_else(|e| {
            eprintln!("cannot compare against {path}: {e}");
            std::process::exit(2);
        });
        let mut regressed = false;
        for c in &comparisons {
            let verdict = if c.regressed { "FAIL" } else { "PASS" };
            println!(
                "  [{verdict}] {:<12} {:>12.0} cycles/s vs baseline {:>12.0} \
                 ({:+.1}% host-normalized)",
                c.policy,
                c.current_cps,
                c.baseline_cps,
                (c.ratio - 1.0) * 100.0,
            );
            regressed |= c.regressed;
        }
        if regressed {
            eprintln!(
                "bench cycles: REGRESSION beyond {:.0}% against {path}; if intentional, \
                 re-record with: experiments cycles --smoke --out {path}",
                tolerance * 100.0,
            );
            std::process::exit(1);
        }
        println!(
            "bench cycles: all policies within {:.0}% of {path}",
            tolerance * 100.0,
        );
    }
}

// ---------------------------------------------------------------------------
// fleet
// ---------------------------------------------------------------------------

fn run_fleet(args: &[String]) {
    let mut spec = if args.iter().any(|a| a == "--smoke") {
        fleet_bench::smoke_spec()
    } else {
        FleetSpec::default()
    };
    if let Some(v) = flag_value(args, "--env") {
        spec.env = fleet::env::resolve(v).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    }
    if let Some(v) = parse_number(args, "--vehicles") {
        spec.vehicles = v;
    }
    if spec.vehicles == 0 {
        eprintln!(
            "fleet needs --vehicles >= 1 (environment models: {})",
            fleet::env_names().join(", ")
        );
        std::process::exit(2);
    }
    if let Some(v) = parse_number(args, "--seed") {
        spec.seed = v;
    }
    if let Some(v) = parse_number(args, "--shard-size") {
        if v == 0 {
            eprintln!(
                "fleet needs --shard-size >= 1 (environment models: {})",
                fleet::env_names().join(", ")
            );
            std::process::exit(2);
        }
        spec.shard_size = v;
    }
    if let Some(v) = parse_number(args, "--horizon-ms") {
        spec.horizon = fleet_bench::horizon_from_ms(v);
    }
    if let Some(v) = parse_number(args, "--minislots") {
        spec.minislots = v;
    }
    let policies: Vec<coefficient::PolicyRef> = flag_values(args, "--policy")
        .into_iter()
        .map(|v| {
            parse_policy(v).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            })
        })
        .collect();
    if !policies.is_empty() {
        spec.policies = policies;
    }
    let threads = parse_number(args, "--threads").unwrap_or(1);

    let stats = fleet::StatsConfig {
        file: flag_value(args, "--stats-file").map(Into::into),
        socket: flag_value(args, "--stats-socket").map(Into::into),
        every: parse_number(args, "--stats-every-ms").map(std::time::Duration::from_millis),
    };

    println!(
        "fleet: {} vehicles, env {}, seed {}, {} polic{}, {} shards x {}, {} threads",
        spec.vehicles,
        spec.env.name,
        spec.seed,
        spec.policies.len(),
        if spec.policies.len() == 1 { "y" } else { "ies" },
        spec.shard_count(),
        spec.shard_size,
        threads,
    );

    let calibration = fleet_bench::fleet_calibration();
    let run = fleet::stats::run_with_stats(&spec, threads, &stats);

    println!(
        "fleet: done in {:.1}s ({:.0} vehicles/s), digest {:016x}, \
         aggregation state {} KiB",
        run.wall_clock.as_secs_f64(),
        spec.vehicles as f64 / run.wall_clock.as_secs_f64().max(1e-9),
        run.aggregate.digest(),
        run.aggregation_bytes / 1024,
    );
    for (p, &policy) in spec.policies.iter().enumerate() {
        let agg = run.aggregate.policy(p);
        let q = |h: &metrics::LogHistogram, q: f64| {
            h.quantile_upper_bound(q)
                .map_or_else(|| "n/a".to_string(), |v| v.to_string())
        };
        println!(
            "  {}: {} vehicles ({} unschedulable), miss ratio {:.3e}, \
             miss ppb p50/p99/p99.99/p99.999 = {}/{}/{}/{}, recovery p99.999 {} ns",
            policy.label(),
            agg.vehicles,
            agg.unschedulable,
            agg.miss_ratio(),
            q(&agg.miss_ppb, 0.5),
            q(&agg.miss_ppb, 0.99),
            q(&agg.miss_ppb, 0.9999),
            q(&agg.miss_ppb, 0.99999),
            q(&agg.recovery_ns, 0.99999),
        );
    }

    if let Some(path) = flag_value(args, "--out") {
        let doc = fleet_bench::fleet_report_json(&spec, &run.aggregate);
        std::fs::write(path, format!("{doc}\n")).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("  wrote {path}");
    }
    if let Some(path) = flag_value(args, "--bench-out") {
        let doc = fleet_bench::fleet_bench_json(&spec, &run, calibration);
        std::fs::write(path, format!("{doc}\n")).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("  wrote {path}");
    }
}

fn run_backbone(args: &[String]) {
    let topology_name = flag_value(args, "--topology").unwrap_or("paper-duplex");
    let topology = backbone::resolve_topology(topology_name).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let mut spec = backbone::MatrixSpec::pinned(topology);
    let reservations = flag_values(args, "--reservation");
    if !reservations.is_empty() {
        spec.reservations = reservations
            .iter()
            .map(|name| {
                backbone::resolve_reservation(name).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                })
            })
            .collect();
    }
    if let Some(hypercycles) = parse_number(args, "--hypercycles") {
        spec.hypercycles = hypercycles;
    }
    let threads: usize = parse_number(args, "--threads").unwrap_or(1);
    let reports = backbone::run_matrix(&spec, threads).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    println!(
        "backbone {}: {} — hypercycle {} µs, {} flows, {} cells",
        topology.name,
        topology.summary,
        topology.hypercycle().as_nanos() / 1_000,
        topology.flows.len(),
        reports.len(),
    );
    for cell in &reports {
        let worst_p99 = cell
            .flows
            .iter()
            .filter(|f| f.admitted)
            .map(|f| f.p99_ns)
            .max()
            .unwrap_or(0);
        let reserved: u64 = cell.ports.iter().map(|p| p.windows_reserved).sum();
        let total: u64 = cell.ports.iter().map(|p| p.windows_total).sum();
        println!(
            "  {:<10} {:<12} seed {}  admitted {:>2}/{}  windows {:>2}/{}  \
             worst p99 {:>9} ns  missed {}  fingerprint {:016x}",
            cell.reservation,
            cell.scenario,
            cell.seed,
            cell.admitted,
            cell.flows.len(),
            reserved,
            total,
            worst_p99,
            cell.ports.iter().map(|p| p.missed_windows).sum::<u64>(),
            cell.fingerprint(),
        );
        if args.iter().any(|a| a == "--flows") {
            for flow in cell.flows.iter().filter(|f| f.admitted) {
                println!(
                    "    flow {:>3}  {:>3}/{:<3} delivered  p50 {:>9} ns  p99 {:>9} ns  \
                     jitter {:>9} ns (bound {} ns)",
                    flow.flow,
                    flow.counters.delivered,
                    flow.counters.instances,
                    flow.p50_ns,
                    flow.p99_ns,
                    flow.counters.jitter_ns,
                    flow.jitter_bound_ns,
                );
            }
        }
    }
    if let Some(out) = flag_value(args, "--out") {
        let doc = backbone_report_json(topology, &reports);
        std::fs::write(out, doc.pretty() + "\n").unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        });
        println!("  wrote {out}");
    }
    if let Err(defect) = check_backbone_matrix(&reports) {
        eprintln!("backbone GATE FAILED: {defect}");
        std::process::exit(1);
    }
    println!("backbone: gates passed (jitter within declared bounds, hypercycle gain present)");
}

fn run_trace_overhead(args: &[String]) {
    let spec = golden_spec();
    let matrix = spec.build_matrix();
    let coord = if flag_value(args, "--cell").is_some() {
        parse_cell(args, &matrix, "trace-overhead")
    } else {
        CellCoord {
            policy: 0,
            scenario: 2,
            seed: 1,
        }
    };
    let iters: u32 = parse_number(args, "--iters").unwrap_or(7);
    let capacity: usize = parse_number(args, "--capacity").unwrap_or(1 << 20);
    let sample_every: u64 = parse_number(args, "--sample-every").unwrap_or(10);
    let tolerance: f64 = parse_number(args, "--tolerance").unwrap_or(0.05);
    let run = |cfg: coefficient::RunConfig| {
        coefficient::Runner::new(cfg)
            .unwrap_or_else(|e| {
                eprintln!("overhead cell is unschedulable: {e:?}");
                std::process::exit(1);
            })
            .run()
    };
    let untraced_cfg = matrix.config(coord);
    let mut traced_cfg = matrix.config(coord);
    traced_cfg.trace = TraceConfig::ring(capacity).sample_every(sample_every);
    let untraced_fp = run(untraced_cfg.clone()).fingerprint();
    let traced_fp = run(traced_cfg.clone()).fingerprint();
    if untraced_fp != traced_fp {
        eprintln!(
            "trace-overhead FAILED: traced fingerprint {traced_fp:016x} != \
             untraced {untraced_fp:016x} — tracing perturbed the run"
        );
        std::process::exit(1);
    }
    let untraced = bench_harness::timing::bench("trace-overhead/untraced", iters, || {
        run(untraced_cfg.clone())
    });
    let traced =
        bench_harness::timing::bench("trace-overhead/traced", iters, || run(traced_cfg.clone()));
    let ratio = traced.min.as_secs_f64() / untraced.min.as_secs_f64();
    println!(
        "trace-overhead: cell {},{},{} — untraced best {:.3} ms, traced best {:.3} ms \
         (ring {capacity}, sample_every {sample_every}): {:+.2}% (gate < {:.0}%)",
        coord.policy,
        coord.scenario,
        coord.seed,
        untraced.min.as_secs_f64() * 1e3,
        traced.min.as_secs_f64() * 1e3,
        (ratio - 1.0) * 100.0,
        tolerance * 100.0,
    );
    if ratio > 1.0 + tolerance {
        eprintln!(
            "trace-overhead FAILED: traced run is {:.2}% slower than untraced \
             (gate {:.0}%)",
            (ratio - 1.0) * 100.0,
            tolerance * 100.0,
        );
        std::process::exit(1);
    }
}

fn run_determinism(args: &[String]) {
    let spec = parse_spec(args);
    let thread_counts: Vec<usize> = flag_value(args, "--thread-counts")
        .map(|v| {
            v.split(',')
                .map(|p| {
                    p.trim().parse().unwrap_or_else(|_| {
                        eprintln!("invalid --thread-counts component: {p}");
                        std::process::exit(2);
                    })
                })
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 8]);
    let mut fingerprints = Vec::with_capacity(thread_counts.len());
    for &threads in &thread_counts {
        let mut run = spec.clone();
        run.threads = Some(threads);
        let report = run.run().unwrap_or_else(|e| {
            eprintln!("sweep configuration is unschedulable: {e:?}");
            std::process::exit(1);
        });
        println!(
            "determinism: {} cells on {threads:>2} thread(s) in {:>7.0} ms -> fingerprint {:016x}",
            report.cells.len(),
            report.wall_clock.as_secs_f64() * 1e3,
            report.fingerprint(),
        );
        fingerprints.push(report.fingerprint());
    }
    if fingerprints.windows(2).any(|w| w[0] != w[1]) {
        eprintln!("determinism FAILED: fingerprints diverge across thread counts");
        std::process::exit(1);
    }
    println!("determinism: all {} runs agree", thread_counts.len());
}

// ---------------------------------------------------------------------------
// storm smoke
// ---------------------------------------------------------------------------

/// Pinned seed of the scripted CI fault storm (see `run_storm_smoke`).
const STORM_SMOKE_SEED: u64 = 1;

/// `experiments storm-smoke [--seed N] [--horizon-ms H]`: runs CoEfficient
/// through one scripted `BER-7-storm` fault storm on the paper's mixed
/// geometry and checks the fault-storm resilience contract — hard
/// (static) messages miss zero deadlines while soft dynamic traffic is
/// shed during the storm and nominal service is restored after it. Exits
/// non-zero if any check fails; CI runs this as the fault-storm gate.
///
/// The default seed/horizon pin a storm script in which every mechanism
/// engages (asymmetric bursts on both channels, a recovery window at the
/// end); the run is deterministic, so the gate is exact, not statistical.
fn run_storm_smoke(args: &[String]) {
    let seed = parse_number(args, "--seed").unwrap_or(STORM_SMOKE_SEED);
    let horizon_ms: u64 = parse_number(args, "--horizon-ms").unwrap_or(200);
    let report = run_once(
        ClusterConfig::paper_mixed(50),
        Scenario::ber7().storm(),
        dynamic_experiment_statics(),
        workloads::sae::message_set(workloads::sae::IdRange::For80Slots, seed),
        coefficient::COEFFICIENT,
        StopCondition::Horizon(SimDuration::from_millis(horizon_ms)),
        seed,
    );
    let c = report.counters;
    println!(
        "storm-smoke: seed {seed}, horizon {horizon_ms} ms, fingerprint {:016x}",
        report.fingerprint()
    );
    println!(
        "  frames {} ({} corrupted; channel A {}/{}, channel B {}/{})",
        report.frames,
        report.corrupted,
        report.channel_faults[0].faults_injected,
        report.channel_faults[0].frames_checked,
        report.channel_faults[1].faults_injected,
        report.channel_faults[1].frames_checked,
    );
    println!(
        "  static deadlines {}/{} met, dynamic {}/{} met",
        report.static_deadlines.met(),
        report.static_deadlines.met() + report.static_deadlines.missed(),
        report.dynamic_deadlines.met(),
        report.dynamic_deadlines.met() + report.dynamic_deadlines.missed(),
    );
    println!(
        "  health: {} transitions, {} storm entries, {} restores",
        c.health_transitions, c.storm_entries, c.service_restores
    );
    println!(
        "  degraded mode: {} soft shed, {} extra hard copies, {} failover mirrors",
        c.soft_shed, c.degraded_extra_copies, c.failover_mirrors
    );
    let checks: [(&str, bool); 5] = [
        (
            "hard (static) messages miss zero deadlines",
            report.static_deadlines.missed() == 0,
        ),
        ("a storm was detected", c.storm_entries >= 1),
        ("soft traffic was shed", c.soft_shed > 0),
        (
            "freed slack bought extra hard copies",
            c.degraded_extra_copies > 0,
        ),
        ("nominal service was restored", c.service_restores >= 1),
    ];
    let mut failed = false;
    for (claim, pass) in checks {
        println!("  [{}] {claim}", if pass { "PASS" } else { "FAIL" });
        failed |= !pass;
    }
    if failed {
        eprintln!("storm-smoke FAILED");
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------------
// chaos campaigns
// ---------------------------------------------------------------------------

/// `experiments chaos`: runs a pinned fault-injection campaign
/// ([`bench_harness::chaos::resolve_campaign`]) for every requested
/// policy, checks each run against the recovery contract, prints the
/// per-policy resilience scorecards, and writes the `coefficient-chaos/1`
/// document with `--out`. Exits 1 if any `--require`d policy fails its
/// contract. The document excludes thread counts and wall-clock, so its
/// bytes are identical at any `--threads` value — CI diffs 1 vs 8.
fn run_chaos(args: &[String]) {
    let campaign_name = flag_value(args, "--campaign").unwrap_or(chaos::DEFAULT_CAMPAIGN);
    let spec = chaos::resolve_campaign(campaign_name).unwrap_or_else(|| {
        eprintln!(
            "unknown campaign \"{campaign_name}\" (valid: {})",
            chaos::campaign_names().join(", ")
        );
        std::process::exit(2);
    });
    let base = flag_value(args, "--scenario").map_or_else(Scenario::ber7, |v| {
        parse_scenario(v).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    });
    let seed = parse_number(args, "--seed").unwrap_or(chaos::CHAOS_SEED);
    let horizon_cycles =
        parse_number(args, "--horizon-cycles").unwrap_or(chaos::DEFAULT_HORIZON_CYCLES);
    let threads = parse_number(args, "--threads").unwrap_or(1);
    let mut contract = ChaosContract::default();
    if let Some(v) = parse_number(args, "--recovery-budget") {
        contract.recovery_budget_cycles = v;
    }
    if let Some(v) = parse_number(args, "--hard-miss-budget") {
        contract.hard_miss_budget = v;
    }
    let parse_policies = |flag: &str| -> Vec<coefficient::PolicyRef> {
        flag_values(args, flag)
            .into_iter()
            .map(|v| {
                parse_policy(v).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                })
            })
            .collect()
    };
    let mut policies = parse_policies("--policy");
    if policies.is_empty() {
        policies = coefficient::registry::ALL.to_vec();
    }
    let required = parse_policies("--require");
    for &req in &required {
        assert!(
            policies.iter().any(|&p| std::ptr::eq(p, req)),
            "--require {} must also be among the policies under test",
            req.key()
        );
    }

    let scenario = chaos::chaos_scenario(base, campaign_name, spec);
    let cards = chaos::run_campaign(
        &scenario,
        &policies,
        horizon_cycles,
        seed,
        threads,
        contract,
    )
    .unwrap_or_else(|e| {
        eprintln!("chaos campaign failed to schedule: {e}");
        std::process::exit(1);
    });

    println!(
        "chaos: campaign {campaign_name}, scenario {}, seed {seed}, horizon {horizon_cycles} cycles",
        scenario.name
    );
    for card in &cards {
        let latency = if card.recovery_latencies.is_empty() {
            "n/a".to_string()
        } else {
            let min = card.recovery_latencies.iter().min().expect("non-empty");
            let max = card.recovery_latencies.iter().max().expect("non-empty");
            format!("{min}..{max} cycles")
        };
        println!(
            "  {}: availability {:.4}, recovery {latency}, worst outage {} cycles, \
             {} restores, static misses {}",
            card.label,
            card.chaos.availability(),
            card.worst_survived_outage_cycles
                .map_or_else(|| "n/a".to_string(), |v| v.to_string()),
            card.counters.service_restores,
            card.static_deadlines.1,
        );
        for check in &card.checks {
            println!(
                "    [{}] {}",
                if check.pass { "PASS" } else { "FAIL" },
                check.name
            );
        }
    }

    if let Some(path) = flag_value(args, "--out") {
        let doc = chaos::chaos_report_json(
            campaign_name,
            scenario.name,
            seed,
            horizon_cycles,
            contract,
            &cards,
        );
        std::fs::write(path, format!("{doc}\n")).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("  wrote {path}");
    }

    let mut failed = false;
    for &req in &required {
        let card = cards
            .iter()
            .find(|c| c.policy == req.key())
            .expect("required policy was run");
        if !card.passed() {
            eprintln!(
                "chaos: required policy {} FAILED its recovery contract",
                req.key()
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------------
// figures
// ---------------------------------------------------------------------------

fn running_time_json(rows: &[bench_harness::RunningTimeRow]) -> Json {
    Json::array(rows.iter().map(|r| {
        Json::object([
            ("workload", Json::str(r.workload)),
            ("slots", Json::from(r.slots)),
            ("policy", Json::str(r.policy)),
            ("scenario", Json::str(r.scenario)),
            ("messages", Json::from(r.messages)),
            ("running_time_s", Json::from(r.running_time_s)),
        ])
    }))
}

fn run_figures(args: &[String]) {
    let json = args.iter().any(|a| a == "--json");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let all = which.is_empty() || which.contains(&"all");
    let want = |f: &str| all || which.contains(&f);

    let counts: Vec<u64> = vec![200, 400, 600, 800, 1000];

    if want("fig1") {
        let rows = fig_running_time(&Scenario::ber7(), &counts);
        print_table(
            "Figure 1 — running time, BER-7 (seconds of simulated bus time)",
            &[
                "workload",
                "slots",
                "policy",
                "messages",
                "running time [s]",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.workload.to_string(),
                        r.slots.to_string(),
                        r.policy.to_string(),
                        r.messages.to_string(),
                        format!("{:.3}", r.running_time_s),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        if json {
            println!("{}", running_time_json(&rows));
        }
    }

    if want("fig2") {
        let rows = fig_running_time(&Scenario::ber9(), &counts);
        print_table(
            "Figure 2 — running time, BER-9 (seconds of simulated bus time)",
            &[
                "workload",
                "slots",
                "policy",
                "messages",
                "running time [s]",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.workload.to_string(),
                        r.slots.to_string(),
                        r.policy.to_string(),
                        r.messages.to_string(),
                        format!("{:.3}", r.running_time_s),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        if json {
            println!("{}", running_time_json(&rows));
        }
    }

    if want("fig3") {
        let rows = fig3_bandwidth();
        print_table(
            "Figure 3 — bandwidth utilization (%)",
            &["minislots", "policy", "utilization [%]"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.minislots.to_string(),
                        r.policy.to_string(),
                        format!("{:.1}", r.utilization_pct),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        if json {
            let doc = Json::array(rows.iter().map(|r| {
                Json::object([
                    ("minislots", Json::from(r.minislots)),
                    ("policy", Json::str(r.policy)),
                    ("utilization_pct", Json::from(r.utilization_pct)),
                ])
            }));
            println!("{doc}");
        }
    }

    for (fig, workload, segment) in [
        ("fig4a", "synthetic", Segment::Static),
        ("fig4b", "BBW+ACC", Segment::Static),
        ("fig4c", "synthetic", Segment::Dynamic),
        ("fig4d", "BBW+ACC", Segment::Dynamic),
    ] {
        if !want(fig) {
            continue;
        }
        let rows: Vec<_> = fig4_latency(workload)
            .into_iter()
            .filter(|r| r.segment == segment)
            .collect();
        print_table(
            &format!(
                "Figure 4({}) — average {} -segment latency, {workload} (ms)",
                &fig[4..],
                if segment == Segment::Static {
                    "static"
                } else {
                    "dynamic"
                },
            ),
            &["minislots", "scenario", "policy", "mean latency [ms]"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.minislots.to_string(),
                        r.scenario.to_string(),
                        r.policy.to_string(),
                        format!("{:.3}", r.mean_latency_ms),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        if json {
            let doc = Json::array(rows.iter().map(|r| {
                Json::object([
                    ("workload", Json::str(r.workload)),
                    (
                        "segment",
                        Json::str(if r.segment == Segment::Static {
                            "static"
                        } else {
                            "dynamic"
                        }),
                    ),
                    ("minislots", Json::from(r.minislots)),
                    ("scenario", Json::str(r.scenario)),
                    ("policy", Json::str(r.policy)),
                    ("mean_latency_ms", Json::from(r.mean_latency_ms)),
                ])
            }));
            println!("{doc}");
        }
    }

    if want("verify") {
        let verdicts = verify_reproduction();
        print_table(
            "Reproduction verdict — the paper's headline claims vs this build",
            &["claim", "verdict", "evidence"],
            &verdicts
                .iter()
                .map(|v| {
                    vec![
                        v.claim.to_string(),
                        if v.pass { "PASS".into() } else { "FAIL".into() },
                        v.evidence.clone(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        if json {
            let doc = Json::array(verdicts.iter().map(|v| {
                Json::object([
                    ("claim", Json::str(v.claim)),
                    ("pass", Json::from(v.pass)),
                    ("evidence", Json::str(v.evidence.clone())),
                ])
            }));
            println!("{doc}");
        }
        if verdicts.iter().any(|v| !v.pass) {
            std::process::exit(1);
        }
    }

    if want("ablation") {
        let rows = ablation();
        print_table(
            "Ablation — each CoEfficient mechanism isolated (BBW+ACC + SAE, 1 s)",
            &[
                "variant",
                "delivered",
                "static lat [ms]",
                "dynamic lat [ms]",
                "util [%]",
                "miss [%]",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.variant.to_string(),
                        r.delivered.to_string(),
                        format!("{:.3}", r.static_latency_ms),
                        format!("{:.3}", r.dynamic_latency_ms),
                        format!("{:.1}", r.utilization_pct),
                        format!("{:.2}", r.miss_pct),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        if json {
            let doc = Json::array(rows.iter().map(|r| {
                Json::object([
                    ("variant", Json::str(r.variant)),
                    ("delivered", Json::from(r.delivered)),
                    ("static_latency_ms", Json::from(r.static_latency_ms)),
                    ("dynamic_latency_ms", Json::from(r.dynamic_latency_ms)),
                    ("utilization_pct", Json::from(r.utilization_pct)),
                    ("miss_pct", Json::from(r.miss_pct)),
                ])
            }));
            println!("{doc}");
        }
    }

    if want("faults") {
        let rows = fault_model_ablation();
        print_table(
            "Fault-model ablation — Bernoulli vs Gilbert–Elliott at BER 1e-5",
            &["model", "policy", "delivered", "corrupted", "miss [%]"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.model.to_string(),
                        r.policy.to_string(),
                        r.delivered.to_string(),
                        r.corrupted.to_string(),
                        format!("{:.2}", r.miss_pct),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        if json {
            let doc = Json::array(rows.iter().map(|r| {
                Json::object([
                    ("model", Json::str(r.model)),
                    ("policy", Json::str(r.policy)),
                    ("delivered", Json::from(r.delivered)),
                    ("corrupted", Json::from(r.corrupted)),
                    ("miss_pct", Json::from(r.miss_pct)),
                ])
            }));
            println!("{doc}");
        }
    }

    if want("fig5") {
        let rows = fig5_miss_ratio();
        print_table(
            "Figure 5 — deadline miss ratio (%)",
            &["minislots", "scenario", "policy", "miss ratio [%]"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.minislots.to_string(),
                        r.scenario.to_string(),
                        r.policy.to_string(),
                        format!("{:.2}", r.miss_pct),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        if json {
            let doc = Json::array(rows.iter().map(|r| {
                Json::object([
                    ("minislots", Json::from(r.minislots)),
                    ("scenario", Json::str(r.scenario)),
                    ("policy", Json::str(r.policy)),
                    ("miss_pct", Json::from(r.miss_pct)),
                ])
            }));
            println!("{doc}");
        }
    }
}
