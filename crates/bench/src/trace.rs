//! The `coefficient-trace/1` JSON schema: export and validation.
//!
//! [`trace_json`] renders a traced cell ([`CellOutcome`] whose report
//! carries a [`TraceLog`]) as a compact self-describing document, and
//! [`validate_trace`] checks a parsed document against the schema — the
//! CI `trace-smoke` job round-trips an exported trace through
//! [`crate::json::Json::parse`] and this validator.
//!
//! Document shape:
//!
//! ```text
//! {
//!   "schema": "coefficient-trace/1",
//!   "policy": "CoEfficient", "scenario": "BER-7",
//!   "policy_index": 0, "scenario_index": 0, "seed_index": 0,
//!   "seed": 123, "fingerprint": "0123456789abcdef",
//!   "capacity": 65536, "dropped": 0,
//!   "counter_names": ["steal_attempts", ...],      // 20 names
//!   "events": [ {"at_ns": 0, "type": "cycle_start", "cycle": 0}, ... ]
//! }
//! ```
//!
//! Every event field is an exact integer (`at_ns` nanoseconds on the
//! simulated clock, durations as `*_ns`) or a bool, so documents are
//! byte-stable across replays — the determinism the `experiments trace`
//! subcommand asserts.

use coefficient::{RunCounters, TraceLog};
use observe::{EventKind, TraceEvent};

use crate::json::Json;
use crate::sweep::policy_label;
use coefficient::CellOutcome;

/// Schema tag of the trace document.
pub const TRACE_SCHEMA: &str = "coefficient-trace/1";

/// The run-counter field names, in the order [`EventKind::CounterSample`]
/// values are recorded (the order of [`RunCounters::fields`]).
pub fn counter_names() -> Vec<&'static str> {
    RunCounters::default()
        .fields()
        .iter()
        .map(|&(name, _)| name)
        .collect()
}

fn event_json(event: &TraceEvent) -> Json {
    let at = ("at_ns", Json::from(event.at.as_nanos()));
    match &event.kind {
        EventKind::CycleStart { cycle } => Json::object([
            at,
            ("type", Json::str("cycle_start")),
            ("cycle", Json::from(*cycle)),
        ]),
        EventKind::SlotFrame {
            channel,
            slot,
            frame_id,
            payload_bits,
            duration,
            corrupted,
        } => Json::object([
            at,
            ("type", Json::str("slot_frame")),
            ("channel", Json::from(u64::from(*channel))),
            ("slot", Json::from(*slot)),
            ("frame_id", Json::from(*frame_id)),
            ("payload_bits", Json::from(*payload_bits)),
            ("duration_ns", Json::from(duration.as_nanos())),
            ("corrupted", Json::from(*corrupted)),
        ]),
        EventKind::MinislotFrame {
            channel,
            slot_counter,
            minislot,
            frame_id,
            payload_bits,
            duration,
            corrupted,
        } => Json::object([
            at,
            ("type", Json::str("minislot_frame")),
            ("channel", Json::from(u64::from(*channel))),
            ("slot_counter", Json::from(*slot_counter)),
            ("minislot", Json::from(*minislot)),
            ("frame_id", Json::from(*frame_id)),
            ("payload_bits", Json::from(*payload_bits)),
            ("duration_ns", Json::from(duration.as_nanos())),
            ("corrupted", Json::from(*corrupted)),
        ]),
        EventKind::FaultHit {
            channel,
            frame_id,
            in_burst,
        } => Json::object([
            at,
            ("type", Json::str("fault_hit")),
            ("channel", Json::from(u64::from(*channel))),
            ("frame_id", Json::from(*frame_id)),
            ("in_burst", Json::from(*in_burst)),
        ]),
        EventKind::StealGranted {
            channel,
            slot,
            frame_id,
        } => Json::object([
            at,
            ("type", Json::str("steal_granted")),
            ("channel", Json::from(u64::from(*channel))),
            ("slot", Json::from(*slot)),
            ("frame_id", Json::from(*frame_id)),
        ]),
        EventKind::StealDenied { channel, slot } => Json::object([
            at,
            ("type", Json::str("steal_denied")),
            ("channel", Json::from(u64::from(*channel))),
            ("slot", Json::from(*slot)),
        ]),
        EventKind::EarlyCopy {
            channel,
            slot,
            frame_id,
        } => Json::object([
            at,
            ("type", Json::str("early_copy")),
            ("channel", Json::from(u64::from(*channel))),
            ("slot", Json::from(*slot)),
            ("frame_id", Json::from(*frame_id)),
        ]),
        EventKind::RetransmissionCopy { channel, frame_id } => Json::object([
            at,
            ("type", Json::str("retransmission_copy")),
            ("channel", Json::from(u64::from(*channel))),
            ("frame_id", Json::from(*frame_id)),
        ]),
        EventKind::SoftShed {
            frame_id,
            criticality,
        } => Json::object([
            at,
            ("type", Json::str("soft_shed")),
            ("frame_id", Json::from(*frame_id)),
            ("criticality", Json::from(u64::from(*criticality))),
        ]),
        EventKind::DegradedCopy {
            channel,
            slot,
            frame_id,
        } => Json::object([
            at,
            ("type", Json::str("degraded_copy")),
            ("channel", Json::from(u64::from(*channel))),
            ("slot", Json::from(*slot)),
            ("frame_id", Json::from(*frame_id)),
        ]),
        EventKind::FailoverMirror {
            channel,
            slot,
            frame_id,
        } => Json::object([
            at,
            ("type", Json::str("failover_mirror")),
            ("channel", Json::from(u64::from(*channel))),
            ("slot", Json::from(*slot)),
            ("frame_id", Json::from(*frame_id)),
        ]),
        EventKind::HealthTransition { scope, from, to } => Json::object([
            at,
            ("type", Json::str("health_transition")),
            ("scope", Json::from(u64::from(*scope))),
            ("from", Json::from(u64::from(*from))),
            ("to", Json::from(u64::from(*to))),
        ]),
        EventKind::CounterSample { cycle, values } => Json::object([
            at,
            ("type", Json::str("counter_sample")),
            ("cycle", Json::from(*cycle)),
            ("values", Json::array(values.iter().map(|&v| Json::from(v)))),
        ]),
        EventKind::CpuSlice {
            end,
            kind,
            task,
            job,
        } => Json::object([
            at,
            ("type", Json::str("cpu_slice")),
            ("end_ns", Json::from(end.as_nanos())),
            ("kind", Json::from(u64::from(*kind))),
            ("task", Json::from(*task)),
            ("job", Json::from(*job)),
        ]),
        EventKind::CpuStealGranted { budget } => Json::object([
            at,
            ("type", Json::str("cpu_steal_granted")),
            ("budget_ns", Json::from(budget.as_nanos())),
        ]),
        EventKind::CpuStealDenied => Json::object([at, ("type", Json::str("cpu_steal_denied"))]),
        EventKind::GatewayQueued {
            port,
            flow,
            instance,
        } => Json::object([
            at,
            ("type", Json::str("gateway_queued")),
            ("port", Json::from(u64::from(*port))),
            ("flow", Json::from(*flow)),
            ("instance", Json::from(*instance)),
        ]),
        EventKind::EthernetFrame {
            port,
            flow,
            instance,
            payload_bits,
            duration,
            missed_window,
        } => Json::object([
            at,
            ("type", Json::str("ethernet_frame")),
            ("port", Json::from(u64::from(*port))),
            ("flow", Json::from(*flow)),
            ("instance", Json::from(*instance)),
            ("payload_bits", Json::from(*payload_bits)),
            ("duration_ns", Json::from(duration.as_nanos())),
            ("missed_window", Json::from(*missed_window)),
        ]),
    }
}

/// Renders a [`TraceLog`] plus its cell coordinates as a
/// `coefficient-trace/1` document.
pub fn trace_log_json(cell: &CellOutcome, log: &TraceLog) -> Json {
    Json::object([
        ("schema", Json::str(TRACE_SCHEMA)),
        ("policy", Json::str(policy_label(cell.policy))),
        ("scenario", Json::str(cell.scenario)),
        ("policy_index", Json::from(cell.coord.policy)),
        ("scenario_index", Json::from(cell.coord.scenario)),
        ("seed_index", Json::from(cell.coord.seed)),
        ("seed", Json::from(cell.seed)),
        (
            "fingerprint",
            Json::String(format!("{:016x}", cell.fingerprint)),
        ),
        ("capacity", Json::from(log.capacity)),
        ("dropped", Json::from(log.dropped)),
        (
            "counter_names",
            Json::array(counter_names().into_iter().map(Json::str)),
        ),
        ("events", Json::array(log.events.iter().map(event_json))),
    ])
}

/// Renders a traced cell as a `coefficient-trace/1` document.
///
/// # Errors
/// A message if the cell's report carries no [`TraceLog`] (the run was
/// not configured with [`coefficient::TraceConfig::ring`]).
pub fn trace_json(cell: &CellOutcome) -> Result<Json, String> {
    let log = cell
        .report
        .trace
        .as_ref()
        .ok_or_else(|| "cell report carries no trace (tracing was off)".to_string())?;
    Ok(trace_log_json(cell, log))
}

fn require_u64(event: &Json, field: &str, index: usize) -> Result<u64, String> {
    event
        .get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("event {index}: missing integer field \"{field}\""))
}

fn require_bool(event: &Json, field: &str, index: usize) -> Result<bool, String> {
    event
        .get(field)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("event {index}: missing bool field \"{field}\""))
}

/// Validates a parsed document against the `coefficient-trace/1` schema:
/// header fields, per-type required event fields, counter-sample arity
/// and monotone non-decreasing `at_ns` per lane. Returns the event
/// count.
///
/// Monotonicity is checked per *lane* — one lane per
/// `(event type, channel)` pair — not globally: the bus engine
/// serializes channel A's whole segment before channel B's, the
/// scheduler emits cycle-N planning decisions (sheds, steals) before
/// the bus serializes cycle N itself, and the CPU stealer emits its
/// schedule slices after its live steal decisions. Only events of the
/// same type on the same channel are guaranteed to appear in stamp
/// order.
///
/// # Errors
/// A human-readable description of the first defect.
pub fn validate_trace(doc: &Json) -> Result<usize, String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(TRACE_SCHEMA) => {}
        other => return Err(format!("bad schema tag: {other:?}")),
    }
    for field in ["policy", "scenario"] {
        if doc.get(field).and_then(Json::as_str).is_none() {
            return Err(format!("missing string field \"{field}\""));
        }
    }
    let fingerprint = doc
        .get("fingerprint")
        .and_then(Json::as_str)
        .ok_or("missing \"fingerprint\"")?;
    if fingerprint.len() != 16 || !fingerprint.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("malformed fingerprint: {fingerprint:?}"));
    }
    for field in [
        "policy_index",
        "scenario_index",
        "seed_index",
        "seed",
        "capacity",
        "dropped",
    ] {
        if doc.get(field).and_then(Json::as_u64).is_none() {
            return Err(format!("missing integer field \"{field}\""));
        }
    }
    let names = doc
        .get("counter_names")
        .and_then(Json::as_array)
        .ok_or("missing \"counter_names\" array")?;
    if names.iter().any(|n| n.as_str().is_none()) {
        return Err("non-string entry in \"counter_names\"".to_string());
    }
    let events = doc
        .get("events")
        .and_then(Json::as_array)
        .ok_or("missing \"events\" array")?;

    // One monotonicity lane per (type, channel); channel-less events use
    // channel 2 as their lane key.
    let mut prev_at: std::collections::HashMap<(&str, u64), u64> = std::collections::HashMap::new();
    for (i, event) in events.iter().enumerate() {
        let at = require_u64(event, "at_ns", i)?;
        let ty = event
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing \"type\""))?;
        let u64_fields: &[&str] = match ty {
            "cycle_start" => &["cycle"],
            "slot_frame" => &["channel", "slot", "frame_id", "payload_bits", "duration_ns"],
            "minislot_frame" => &[
                "channel",
                "slot_counter",
                "minislot",
                "frame_id",
                "payload_bits",
                "duration_ns",
            ],
            "fault_hit" => &["channel", "frame_id"],
            "steal_granted" | "early_copy" | "degraded_copy" | "failover_mirror" => {
                &["channel", "slot", "frame_id"]
            }
            "steal_denied" => &["channel", "slot"],
            "retransmission_copy" => &["channel", "frame_id"],
            "soft_shed" => &["frame_id", "criticality"],
            "health_transition" => &["scope", "from", "to"],
            "counter_sample" => &["cycle"],
            "cpu_slice" => &["end_ns", "kind", "task", "job"],
            "cpu_steal_granted" => &["budget_ns"],
            "cpu_steal_denied" => &[],
            "gateway_queued" => &["port", "flow", "instance"],
            "ethernet_frame" => &["port", "flow", "instance", "payload_bits", "duration_ns"],
            other => return Err(format!("event {i}: unknown type {other:?}")),
        };
        for field in u64_fields {
            require_u64(event, field, i)?;
        }
        match ty {
            "slot_frame" | "minislot_frame" => {
                require_bool(event, "corrupted", i)?;
            }
            "fault_hit" => {
                require_bool(event, "in_burst", i)?;
            }
            "ethernet_frame" => {
                require_bool(event, "missed_window", i)?;
            }
            "counter_sample" => {
                let values = event
                    .get("values")
                    .and_then(Json::as_array)
                    .ok_or_else(|| format!("event {i}: missing \"values\" array"))?;
                if values.len() != names.len() {
                    return Err(format!(
                        "event {i}: {} counter values but {} names",
                        values.len(),
                        names.len()
                    ));
                }
                if values.iter().any(|v| v.as_u64().is_none()) {
                    return Err(format!("event {i}: non-integer counter value"));
                }
            }
            _ => {}
        }
        let channel = match event.get("channel").and_then(Json::as_u64) {
            Some(c @ (0 | 1)) => c,
            Some(c) => return Err(format!("event {i}: channel {c} out of range")),
            None => 2,
        };
        let lane = prev_at.entry((ty, channel)).or_insert(0);
        if at < *lane {
            return Err(format!(
                "event {i}: at_ns {at} goes backwards on the {ty}/ch{channel} lane (previous {lane})"
            ));
        }
        *lane = at;
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use coefficient::sweep::SweepRunner;
    use coefficient::{TraceConfig, TraceMode};

    use crate::golden::golden_spec;

    fn traced_cell() -> CellOutcome {
        let matrix = golden_spec().build_matrix();
        let coord = matrix.coords()[0];
        let mut cfg = matrix.config(coord);
        cfg.trace = TraceConfig::ring(1 << 16).sample_every(8);
        let report = coefficient::Runner::new(cfg).unwrap().run();
        CellOutcome {
            coord,
            policy: matrix.policies[coord.policy],
            scenario: matrix.scenarios[coord.scenario].name,
            seed: matrix.cell_seed(coord),
            fingerprint: report.fingerprint(),
            report,
        }
    }

    #[test]
    fn export_round_trips_through_parser_and_validator() {
        let cell = traced_cell();
        let doc = trace_json(&cell).unwrap();
        let text = doc.to_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        let events = validate_trace(&parsed).unwrap();
        assert!(events > 0, "a golden cell must produce events");
        assert_eq!(events, cell.report.trace.as_ref().unwrap().events.len());
    }

    #[test]
    fn untraced_cell_is_rejected() {
        let matrix = golden_spec().build_matrix();
        let coord = matrix.coords()[0];
        let runner = SweepRunner::new(matrix);
        let cell = runner.replay(coord).unwrap();
        assert!(cell.report.trace.is_none());
        assert!(trace_json(&cell).is_err());
    }

    #[test]
    fn validator_rejects_defects() {
        let cell = traced_cell();
        let good = trace_json(&cell).unwrap();

        let mut bad_schema = good.clone();
        if let Json::Object(pairs) = &mut bad_schema {
            pairs[0].1 = Json::str("coefficient-trace/999");
        }
        assert!(validate_trace(&bad_schema).is_err());

        let no_events = Json::object([("schema", Json::str(TRACE_SCHEMA))]);
        assert!(validate_trace(&no_events).is_err());

        // An event with a rewound clock must be rejected.
        let mut rewound = good;
        if let Json::Object(pairs) = &mut rewound {
            let events = pairs
                .iter_mut()
                .find(|(k, _)| k == "events")
                .map(|(_, v)| v)
                .unwrap();
            if let Json::Array(items) = events {
                let mut copy = items[0].clone();
                if let Json::Object(fields) = &mut copy {
                    for (k, v) in fields.iter_mut() {
                        if k == "at_ns" {
                            *v = Json::UInt(u64::MAX);
                        }
                    }
                }
                items.insert(0, copy);
            }
        }
        assert!(validate_trace(&rewound).is_err());
    }

    #[test]
    fn counter_names_match_run_counter_arity() {
        assert_eq!(counter_names().len(), RunCounters::default().fields().len());
        assert_eq!(counter_names().len(), 20);
    }

    #[test]
    fn trace_mode_default_is_off() {
        assert!(matches!(TraceConfig::default().mode, TraceMode::Off));
    }
}
