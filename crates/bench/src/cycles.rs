//! The `bench cycles` perf-trajectory harness.
//!
//! Runs a pinned 18-cell matrix per registered policy (6 scenarios × 3
//! seeds on the golden geometry) serially, and reports raw cycle-loop
//! throughput: simulated cycles per wall-clock second, nanoseconds per
//! cycle, and the peak scratch-buffer footprint of each policy's
//! scheduler. The resulting `BENCH_cycles.json`
//! (`schema: "coefficient-bench-cycles/1"`) is uploaded per PR by CI, and
//! the `bench-cycles` job compares cycles/sec against the checked-in
//! `corpus/bench_baseline.json`, failing on a regression beyond
//! [`CYCLES_TOLERANCE`].
//!
//! The matrix is pinned — same master seed, scenarios and horizon every
//! run — so trajectory points are comparable across commits. Host speed
//! is not pinned: the recording machine and the CI runner differ, and
//! even one machine drifts under load. Every report therefore embeds a
//! calibration measurement — the wall clock of a fixed CPU-bound
//! workload, timed in the same process — and the baseline gate compares
//! *host-normalized* throughput (simulated cycles per calibration unit),
//! which cancels first-order machine speed; the tolerance band absorbs
//! the rest.

use std::time::{Duration, Instant};

use coefficient::{Runner, Scenario, SchedulerError, SeedStrategy};

use crate::experiments::SEED;
use crate::json::Json;
use crate::sweep::SweepSpec;

/// Relative host-normalized cycles/sec drop below baseline that fails
/// the CI gate.
pub const CYCLES_TOLERANCE: f64 = 0.15;

/// One pass of the calibration workload: a fixed number of SplitMix64
/// finalizer rounds, CPU-bound and allocation-free, sized to take a few
/// milliseconds on current hardware.
pub(crate) fn calibration_pass() -> Duration {
    const ITERS: u64 = 8_000_000;
    let started = Instant::now();
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for _ in 0..ITERS {
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
    }
    std::hint::black_box(x);
    started.elapsed()
}

/// Default path of the checked-in smoke-mode baseline.
pub const DEFAULT_BASELINE_PATH: &str = "corpus/bench_baseline.json";

/// Description of one `bench cycles` measurement.
#[derive(Debug, Clone)]
pub struct CyclesSpec {
    /// The matrix every policy runs (the harness times each policy's
    /// slice of it separately, single-threaded).
    pub sweep: SweepSpec,
    /// Timing repetitions per policy; the best (minimum) wall clock is
    /// reported, damping scheduler noise on shared CI hosts.
    pub iters: u32,
    /// `"smoke"` or `"full"` — recorded in the report so baselines are
    /// only ever compared against measurements of the same matrix.
    pub mode: &'static str,
}

/// The pinned spec: 18 cells per policy (6 scenarios × 3 seeds), every
/// registered policy, golden geometry and master seed. Smoke mode runs a
/// shorter horizon for CI; full mode is the recorded trajectory point.
pub fn cycles_spec(smoke: bool) -> CyclesSpec {
    CyclesSpec {
        sweep: SweepSpec {
            minislots: 50,
            horizon_ms: if smoke { 100 } else { 400 },
            seeds: 3,
            master_seed: SEED,
            threads: Some(1),
            policies: coefficient::registry::all().to_vec(),
            scenarios: vec![
                Scenario::ber7(),
                Scenario::ber9(),
                Scenario::ber7().storm(),
                Scenario::fault_free(),
                Scenario::ber7().bursty(),
                Scenario::ber9().storm(),
            ],
            strategy: SeedStrategy::PerCell,
        },
        // More repetitions in smoke mode: CI hosts are noisy and the
        // walls are short, so the best-of minimum needs more samples.
        iters: if smoke { 7 } else { 5 },
        mode: if smoke { "smoke" } else { "full" },
    }
}

/// Throughput measurement of one policy over its cell slice.
#[derive(Debug, Clone)]
pub struct PolicyCycles {
    /// Policy label (as in the registry / table output).
    pub policy: String,
    /// Cells this policy ran.
    pub cells: u64,
    /// Simulated communication cycles across those cells (deterministic).
    pub sim_cycles: u64,
    /// Best-of-iters wall clock for the whole slice.
    pub wall: Duration,
    /// Best-of-iters slice wall divided by the calibration wall timed
    /// immediately before that same slice (dimensionless). The temporal
    /// pairing means a load spike inflates both sides of one round's
    /// ratio, and the min across rounds discards mismatched rounds.
    pub wall_per_cal: f64,
    /// Peak scheduler scratch-buffer bytes over the slice.
    pub peak_scratch_bytes: u64,
}

impl PolicyCycles {
    /// Simulated cycles executed per wall-clock second.
    pub fn cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.wall.as_secs_f64().max(1e-12)
    }

    /// Wall-clock nanoseconds per simulated cycle.
    pub fn ns_per_cycle(&self) -> f64 {
        self.wall.as_nanos() as f64 / (self.sim_cycles as f64).max(1.0)
    }

    /// Host-normalized throughput: simulated cycles per calibration unit
    /// of wall clock. This is what the baseline gate compares.
    pub fn cycles_per_cal(&self) -> f64 {
        self.sim_cycles as f64 / self.wall_per_cal.max(1e-12)
    }
}

/// Result of one [`measure_cycles`] run.
#[derive(Debug, Clone)]
pub struct CyclesReport {
    /// `"smoke"` or `"full"`.
    pub mode: String,
    /// Per-cell horizon, milliseconds.
    pub horizon_ms: u64,
    /// Seeds per scenario.
    pub seeds: u64,
    /// Timing repetitions the wall clocks are the best of.
    pub iters: u32,
    /// Scenario names of the matrix.
    pub scenarios: Vec<String>,
    /// Best-of wall clock of one calibration pass on this host, measured
    /// interleaved with the rounds. The baseline gate divides throughput
    /// by host speed via this value.
    pub calibration: Duration,
    /// One entry per policy, registry order.
    pub policies: Vec<PolicyCycles>,
}

/// Runs the matrix once per policy per iteration and reports best-of-iters
/// throughput.
///
/// # Errors
/// Returns [`SchedulerError`] if a cell is unschedulable.
pub fn measure_cycles(spec: &CyclesSpec) -> Result<CyclesReport, SchedulerError> {
    let matrix = spec.sweep.build_matrix();
    let cycle_ns = matrix.cluster.cycle_duration().as_nanos().max(1);
    let coords = matrix.coords();
    let mut policies: Vec<PolicyCycles> = spec
        .sweep
        .policies
        .iter()
        .enumerate()
        .map(|(p_idx, policy)| PolicyCycles {
            policy: policy.label().to_string(),
            cells: coords.iter().filter(|c| c.policy == p_idx).count() as u64,
            sim_cycles: 0,
            wall: Duration::MAX,
            wall_per_cal: f64::INFINITY,
            peak_scratch_bytes: 0,
        })
        .collect();
    // Rounds interleave the policies (round 1 times every policy, then
    // round 2, ...) so a transient load spike on the host degrades one
    // round of every policy instead of every round of one policy — the
    // per-policy best-of minimum then shrugs it off. Each policy slice is
    // preceded by its own calibration pass so the paired ratio sees the
    // same load conditions on both sides.
    let mut calibration = calibration_pass(); // warm-up pass still counts
    for iter in 0..spec.iters.max(1) {
        for (p_idx, entry) in policies.iter_mut().enumerate() {
            let cal = calibration_pass();
            calibration = calibration.min(cal);
            let started = Instant::now();
            let mut cycles_this_iter = 0u64;
            let mut scratch_this_iter = 0u64;
            for coord in coords.iter().filter(|c| c.policy == p_idx) {
                let report = Runner::new(matrix.config(*coord))?.run();
                cycles_this_iter += report.running_time.as_nanos() / cycle_ns;
                scratch_this_iter = scratch_this_iter.max(report.peak_scratch_bytes);
            }
            let wall = started.elapsed();
            if iter == 0 {
                entry.sim_cycles = cycles_this_iter;
                entry.peak_scratch_bytes = scratch_this_iter;
            } else {
                debug_assert_eq!(
                    entry.sim_cycles, cycles_this_iter,
                    "matrix is deterministic"
                );
            }
            entry.wall = entry.wall.min(wall);
            entry.wall_per_cal = entry
                .wall_per_cal
                .min(wall.as_secs_f64() / cal.as_secs_f64().max(1e-12));
        }
    }
    Ok(CyclesReport {
        mode: spec.mode.to_string(),
        horizon_ms: spec.sweep.horizon_ms,
        seeds: spec.sweep.seeds,
        iters: spec.iters.max(1),
        scenarios: spec
            .sweep
            .scenarios
            .iter()
            .map(|s| s.name.to_string())
            .collect(),
        calibration,
        policies,
    })
}

/// JSON form of a [`CyclesReport`] (`schema: "coefficient-bench-cycles/1"`).
pub fn cycles_to_json(report: &CyclesReport) -> Json {
    Json::object([
        ("schema", Json::str("coefficient-bench-cycles/1")),
        ("mode", Json::str(report.mode.clone())),
        ("horizon_ms", Json::from(report.horizon_ms)),
        ("seeds", Json::from(report.seeds)),
        ("iters", Json::from(u64::from(report.iters))),
        (
            "calibration_ns",
            Json::from(report.calibration.as_nanos() as u64),
        ),
        (
            "scenarios",
            Json::array(report.scenarios.iter().map(|s| Json::str(s.clone()))),
        ),
        (
            "policies",
            Json::array(report.policies.iter().map(|p| {
                Json::object([
                    ("policy", Json::str(p.policy.clone())),
                    ("cells", Json::from(p.cells)),
                    ("sim_cycles", Json::from(p.sim_cycles)),
                    ("wall_ms", Json::Float(p.wall.as_secs_f64() * 1e3)),
                    ("wall_per_cal", Json::Float(p.wall_per_cal)),
                    ("cycles_per_sec", Json::Float(p.cycles_per_sec())),
                    ("ns_per_cycle", Json::Float(p.ns_per_cycle())),
                    ("peak_scratch_bytes", Json::from(p.peak_scratch_bytes)),
                ])
            })),
        ),
    ])
}

fn want<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing key {key:?}"))
}

fn want_u64(doc: &Json, key: &str) -> Result<u64, String> {
    want(doc, key)?
        .as_u64()
        .ok_or_else(|| format!("key {key:?} is not an integer"))
}

fn want_f64(doc: &Json, key: &str) -> Result<f64, String> {
    want(doc, key)?
        .as_f64()
        .ok_or_else(|| format!("key {key:?} is not a number"))
}

fn want_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    want(doc, key)?
        .as_str()
        .ok_or_else(|| format!("key {key:?} is not a string"))
}

/// Parses a `coefficient-bench-cycles/1` document back into a
/// [`CyclesReport`] (used to load the checked-in baseline).
///
/// # Errors
/// Returns a description of the first schema violation.
pub fn cycles_from_json(doc: &Json) -> Result<CyclesReport, String> {
    let schema = want_str(doc, "schema")?;
    if schema != "coefficient-bench-cycles/1" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let scenarios = want(doc, "scenarios")?
        .as_array()
        .ok_or("scenarios is not an array")?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| "scenario entry is not a string".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    let policies = want(doc, "policies")?
        .as_array()
        .ok_or("policies is not an array")?
        .iter()
        .map(|p| {
            Ok(PolicyCycles {
                policy: want_str(p, "policy")?.to_string(),
                cells: want_u64(p, "cells")?,
                sim_cycles: want_u64(p, "sim_cycles")?,
                wall: Duration::from_secs_f64(want_f64(p, "wall_ms")?.max(0.0) / 1e3),
                wall_per_cal: want_f64(p, "wall_per_cal")?,
                peak_scratch_bytes: want_u64(p, "peak_scratch_bytes")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(CyclesReport {
        mode: want_str(doc, "mode")?.to_string(),
        horizon_ms: want_u64(doc, "horizon_ms")?,
        seeds: want_u64(doc, "seeds")?,
        iters: u32::try_from(want_u64(doc, "iters")?).map_err(|_| "iters out of range")?,
        scenarios,
        calibration: Duration::from_nanos(want_u64(doc, "calibration_ns")?),
        policies,
    })
}

/// One policy's current-vs-baseline verdict.
#[derive(Debug, Clone)]
pub struct PolicyComparison {
    /// Policy label.
    pub policy: String,
    /// Baseline cycles/sec, raw (as recorded on the baseline host).
    pub baseline_cps: f64,
    /// Current cycles/sec, raw (on this host).
    pub current_cps: f64,
    /// Host-normalized `current / baseline`: the ratio of the two sides'
    /// [`PolicyCycles::cycles_per_cal`], cancelling machine speed.
    pub ratio: f64,
    /// `true` if the normalized drop exceeds the tolerance band.
    pub regressed: bool,
}

/// Compares a current report against a baseline with a relative tolerance
/// (`0.15` = fail when *host-normalized* throughput drops more than 15%
/// below baseline). Each side's throughput is measured in simulated
/// cycles per calibration unit ([`PolicyCycles::cycles_per_cal`]), so a
/// slower or busier host moves both the measurement and the yardstick and
/// the ratio stays put. Faster-than-baseline results always pass — the
/// gate is one-sided.
///
/// # Errors
/// Returns an error when the reports measured different matrices (mode,
/// horizon or seed count mismatch) or a baseline policy is missing from
/// the current report — comparisons would be meaningless.
pub fn compare_to_baseline(
    current: &CyclesReport,
    baseline: &CyclesReport,
    tolerance: f64,
) -> Result<Vec<PolicyComparison>, String> {
    if current.mode != baseline.mode
        || current.horizon_ms != baseline.horizon_ms
        || current.seeds != baseline.seeds
    {
        return Err(format!(
            "matrix mismatch: current {}/{}ms/{} seeds vs baseline {}/{}ms/{} seeds \
             (re-record the baseline with the same flags)",
            current.mode,
            current.horizon_ms,
            current.seeds,
            baseline.mode,
            baseline.horizon_ms,
            baseline.seeds,
        ));
    }
    baseline
        .policies
        .iter()
        .map(|base| {
            let cur = current
                .policies
                .iter()
                .find(|p| p.policy == base.policy)
                .ok_or_else(|| format!("policy {:?} missing from current report", base.policy))?;
            let baseline_cps = base.cycles_per_sec();
            let current_cps = cur.cycles_per_sec();
            let ratio = cur.cycles_per_cal() / base.cycles_per_cal().max(1e-12);
            Ok(PolicyComparison {
                policy: base.policy.clone(),
                baseline_cps,
                current_cps,
                ratio,
                regressed: ratio < 1.0 - tolerance,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CyclesSpec {
        CyclesSpec {
            sweep: SweepSpec {
                horizon_ms: 10,
                seeds: 1,
                policies: vec![coefficient::COEFFICIENT, coefficient::GREEDY],
                scenarios: vec![Scenario::ber7()],
                threads: Some(1),
                ..SweepSpec::default()
            },
            iters: 2,
            mode: "smoke",
        }
    }

    #[test]
    fn pinned_spec_is_18_cells_per_policy() {
        for smoke in [false, true] {
            let spec = cycles_spec(smoke);
            let matrix = spec.sweep.build_matrix();
            let per_policy = spec.sweep.seeds as usize * spec.sweep.scenarios.len();
            assert_eq!(per_policy, 18);
            assert_eq!(
                matrix.cell_count(),
                per_policy * coefficient::registry::all().len()
            );
        }
        assert_eq!(cycles_spec(true).mode, "smoke");
        assert_eq!(cycles_spec(false).mode, "full");
    }

    #[test]
    fn measure_and_round_trip_json() {
        let report = measure_cycles(&tiny_spec()).unwrap();
        assert_eq!(report.policies.len(), 2);
        for p in &report.policies {
            assert_eq!(p.cells, 1);
            assert!(p.sim_cycles > 0, "{}: no cycles measured", p.policy);
            assert!(p.cycles_per_sec() > 0.0);
            assert!(p.ns_per_cycle() > 0.0);
            assert!(p.wall_per_cal.is_finite() && p.wall_per_cal > 0.0);
            assert!(p.cycles_per_cal() > 0.0);
            assert!(p.peak_scratch_bytes > 0);
        }
        let json = cycles_to_json(&report);
        let text = json.to_string();
        assert!(text.starts_with(r#"{"schema":"coefficient-bench-cycles/1""#));
        let parsed = cycles_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed.mode, report.mode);
        assert_eq!(parsed.calibration, report.calibration);
        assert!(parsed.calibration > Duration::ZERO);
        assert_eq!(parsed.policies.len(), report.policies.len());
        for (a, b) in parsed.policies.iter().zip(&report.policies) {
            assert_eq!(a.policy, b.policy);
            assert_eq!(a.sim_cycles, b.sim_cycles);
            assert_eq!(a.peak_scratch_bytes, b.peak_scratch_bytes);
            assert!((a.cycles_per_sec() - b.cycles_per_sec()).abs() / b.cycles_per_sec() < 1e-3);
            assert!((a.wall_per_cal - b.wall_per_cal).abs() / b.wall_per_cal < 1e-9);
        }
    }

    #[test]
    fn comparison_gates_on_regression_only() {
        let report = measure_cycles(&tiny_spec()).unwrap();
        // Identical reports: everything passes.
        let same = compare_to_baseline(&report, &report, CYCLES_TOLERANCE).unwrap();
        assert!(same.iter().all(|c| !c.regressed));
        // A baseline twice as fast: current regresses beyond any sane band.
        let mut fast = report.clone();
        for p in &mut fast.policies {
            p.wall /= 2;
            p.wall_per_cal /= 2.0;
        }
        let against_fast = compare_to_baseline(&report, &fast, CYCLES_TOLERANCE).unwrap();
        assert!(against_fast.iter().all(|c| c.regressed));
        // A baseline twice as slow: current is faster, which always passes.
        let mut slow = report.clone();
        for p in &mut slow.policies {
            p.wall *= 2;
            p.wall_per_cal *= 2.0;
        }
        let against_slow = compare_to_baseline(&report, &slow, CYCLES_TOLERANCE).unwrap();
        assert!(against_slow.iter().all(|c| !c.regressed && c.ratio > 1.5));
    }

    #[test]
    fn comparison_normalizes_away_host_speed() {
        let report = measure_cycles(&tiny_spec()).unwrap();
        // A baseline recorded on a host twice as fast: every wall halves,
        // including each slice's paired calibration pass, so `wall_per_cal`
        // is unchanged. Normalized throughput is identical and the gate
        // must not fire.
        let mut fast_host = report.clone();
        fast_host.calibration /= 2;
        for p in &mut fast_host.policies {
            p.wall /= 2;
        }
        let cmp = compare_to_baseline(&report, &fast_host, CYCLES_TOLERANCE).unwrap();
        for c in &cmp {
            assert!(
                !c.regressed,
                "{}: host speed leaked into the gate",
                c.policy
            );
            assert!(
                (c.ratio - 1.0).abs() < 1e-12,
                "{}: ratio {}",
                c.policy,
                c.ratio
            );
            // Raw numbers still show the host difference for display
            // (Duration halving truncates to whole nanoseconds).
            assert!((c.baseline_cps / c.current_cps - 2.0).abs() < 1e-6);
        }
        // A genuine regression — the sim slowed down but the host did not
        // (paired calibration unchanged) — still fails.
        let mut slower_sim = report.clone();
        for p in &mut slower_sim.policies {
            p.wall *= 2;
            p.wall_per_cal *= 2.0;
        }
        let cmp = compare_to_baseline(&slower_sim, &report, CYCLES_TOLERANCE).unwrap();
        assert!(cmp.iter().all(|c| c.regressed));
    }

    #[test]
    fn comparison_rejects_mismatched_matrices() {
        let report = measure_cycles(&tiny_spec()).unwrap();
        let mut other = report.clone();
        other.mode = "full".to_string();
        let err = compare_to_baseline(&report, &other, CYCLES_TOLERANCE).unwrap_err();
        assert!(err.contains("matrix mismatch"), "{err}");
        let mut missing = report.clone();
        missing.policies.push(PolicyCycles {
            policy: "NotARealPolicy".to_string(),
            cells: 1,
            sim_cycles: 1,
            wall: Duration::from_millis(1),
            wall_per_cal: 0.1,
            peak_scratch_bytes: 1,
        });
        let err = compare_to_baseline(&report, &missing, CYCLES_TOLERANCE).unwrap_err();
        assert!(err.contains("missing from current report"), "{err}");
    }
}
