//! Scripted fault-campaign scorecards and the recovery contract.
//!
//! The `experiments chaos` subcommand runs a pinned disturbance campaign
//! ([`resolve_campaign`]) against every requested policy on the paper's
//! mixed geometry, then checks each run against a declarative
//! **recovery contract** ([`ChaosContract`]):
//!
//! * run counters stay monotone non-decreasing across the whole run;
//! * after every *cleared* fault window, `service_restores` fires within
//!   the recovery budget (effective health back to `Nominal`);
//! * the health monitors never latch in `Storm` once all faults end;
//! * hard (static) deadline misses stay within the campaign's budget;
//! * service restores at least once per disjoint disturbance episode.
//!
//! The result is a per-policy resilience scorecard — recovery-latency
//! distribution, availability, worst survived outage — emitted as a
//! `coefficient-chaos/1` document. The document deliberately excludes
//! wall-clock times and thread counts, so the bytes are identical at any
//! parallelism (CI diffs a 1-thread run against an 8-thread run).

use coefficient::sweep::run_parallel;
use coefficient::{
    CampaignSpec, CampaignTarget, ChaosObservation, PolicyRef, RunConfig, RunCounters, RunReport,
    Scenario, SchedulerError, StopCondition, TraceConfig,
};
use flexray::config::ClusterConfig;
use reliability::monitor::HealthState;

use crate::experiments::dynamic_experiment_statics;
use crate::json::Json;

/// Pinned seed of the CI chaos gate (see `experiments chaos`).
pub const CHAOS_SEED: u64 = 7;

/// Default campaign of the CI chaos gate.
pub const DEFAULT_CAMPAIGN: &str = "blackout";

/// Default run length in communication cycles: long enough that every
/// pinned campaign clears and the slowest policy's health decays back to
/// `Nominal` well before the horizon.
pub const DEFAULT_HORIZON_CYCLES: u64 = 220;

/// Every pinned campaign name [`resolve_campaign`] accepts.
pub fn campaign_names() -> [&'static str; 5] {
    ["blackout", "double-blackout", "spike", "babble", "dropout"]
}

/// Resolves a pinned campaign by name. The scripts are part of the CI
/// contract: changing a window moves the chaos scorecards, so treat them
/// like golden inputs.
pub fn resolve_campaign(name: &str) -> Option<CampaignSpec> {
    Some(match name {
        // The canonical CI gate: channel A goes completely dark for 50
        // cycles while channel B stays nominal — the failover path must
        // carry hard traffic and service must restore after cycle 90.
        "blackout" => CampaignSpec::new().blackout(CampaignTarget::A, 40, 50),
        // Two disjoint outages, one per channel: two recovery episodes,
        // two service restores.
        "double-blackout" => CampaignSpec::new()
            .blackout(CampaignTarget::A, 30, 40)
            .blackout(CampaignTarget::B, 110, 30),
        // EMI ramp on both channels: corruption climbs linearly to 35%.
        "spike" => CampaignSpec::new().ber_spike(CampaignTarget::Both, 40, 60, 0.35),
        // A babbling node saturates channel B at 50% duty.
        "babble" => CampaignSpec::new().babble(CampaignTarget::B, 50, 40, 0.5),
        // The fault sensor goes dark while a blackout rages underneath:
        // the monitors must still classify and recover once both clear.
        "dropout" => CampaignSpec::new()
            .sensor_dropout(CampaignTarget::A, 30, 30)
            .blackout(CampaignTarget::A, 45, 30),
        _ => return None,
    })
}

/// Applies `spec` to `base` under a `base+campaign` scenario name.
///
/// [`Scenario::with_campaign`] requires a `&'static str` (scenario names
/// flow into seed derivation and reports); the CLI composes base and
/// campaign at runtime, so the composed name is leaked — a few bytes once
/// per invocation.
pub fn chaos_scenario(base: Scenario, campaign_name: &str, spec: CampaignSpec) -> Scenario {
    let name: &'static str = Box::leak(format!("{}+{campaign_name}", base.name).into_boxed_str());
    base.with_campaign(name, spec)
}

/// The declarative recovery contract a chaos run is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosContract {
    /// Maximum cycles between a fault window clearing and the effective
    /// health returning to `Nominal`.
    pub recovery_budget_cycles: u64,
    /// Maximum hard (static) deadline misses tolerated across the run —
    /// the disturbance may cost some, but the count is bounded and pinned.
    pub hard_miss_budget: u64,
}

impl Default for ChaosContract {
    fn default() -> Self {
        // The budgets are pinned against the default blackout campaign:
        // CoEfficient recovers in single-digit cycles and loses 13 hard
        // deadlines while channel A is dark (failover + degraded mode
        // absorb the rest); a policy without those mechanisms (e.g.
        // Greedy at 34 misses) blows the hard-miss budget and fails the
        // contract — the gate separates the resilient from the lucky.
        ChaosContract {
            recovery_budget_cycles: 40,
            hard_miss_budget: 20,
        }
    }
}

/// One contract check: a human-readable claim and whether it held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractCheck {
    /// The claim, phrased to be printed next to `[PASS]`/`[FAIL]`.
    pub name: String,
    /// Whether the run satisfied it.
    pub pass: bool,
}

/// The per-policy resilience scorecard of one campaign run.
#[derive(Debug, Clone)]
pub struct ChaosScorecard {
    /// Registry key of the policy.
    pub policy: &'static str,
    /// Display label of the policy.
    pub label: &'static str,
    /// The run's fingerprint (thread-count independent).
    pub fingerprint: u64,
    /// The runner's recovery observations.
    pub chaos: ChaosObservation,
    /// Full run counters.
    pub counters: RunCounters,
    /// Static (hard) deadlines met / missed.
    pub static_deadlines: (u64, u64),
    /// Dynamic (soft) deadlines met / missed.
    pub dynamic_deadlines: (u64, u64),
    /// Recovery latency in cycles of every restored finite event, in
    /// spec order (`restored_at − clear`; 0 = nominal on the first clean
    /// cycle).
    pub recovery_latencies: Vec<u64>,
    /// Longest finite fault window the policy recovered from.
    pub worst_survived_outage_cycles: Option<u64>,
    /// The contract checks, in a fixed order.
    pub checks: Vec<ContractCheck>,
}

impl ChaosScorecard {
    /// Evaluates `report` (which must come from a campaign scenario)
    /// against `contract`.
    ///
    /// # Panics
    /// Panics if the report carries no [`ChaosObservation`] — i.e. the
    /// scenario had no campaign.
    pub fn from_report(report: &RunReport, contract: ChaosContract) -> ChaosScorecard {
        let chaos = report
            .chaos
            .clone()
            .expect("chaos scorecards require a campaign scenario");
        let c = report.counters;
        let finite: Vec<(u64, u64, Option<u64>)> = chaos
            .events
            .iter()
            .filter_map(|e| {
                e.clear_cycle
                    .map(|clear| (e.start_cycle, clear, e.restored_at_cycle))
            })
            .collect();
        let recovery_latencies: Vec<u64> = finite
            .iter()
            .filter_map(|&(_, clear, restored)| restored.map(|r| r - clear))
            .collect();
        let worst_survived_outage_cycles = finite
            .iter()
            .filter(|&&(_, _, restored)| restored.is_some())
            .map(|&(start, clear, _)| clear - start)
            .max();
        let campaign_over = chaos.events.iter().all(|e| e.clear_cycle.is_some());
        let episodes = disjoint_episodes(&finite);
        let mut checks = vec![
            ContractCheck {
                name: "run counters are monotone non-decreasing".to_string(),
                pass: chaos.counters_monotone,
            },
            ContractCheck {
                name: format!(
                    "service restores within {} cycles of every cleared fault",
                    contract.recovery_budget_cycles
                ),
                pass: finite.iter().all(|&(_, clear, restored)| {
                    restored.is_some_and(|r| r - clear <= contract.recovery_budget_cycles)
                }),
            },
            ContractCheck {
                name: format!(
                    "hard (static) deadline misses within budget ({})",
                    contract.hard_miss_budget
                ),
                pass: report.static_deadlines.missed() <= contract.hard_miss_budget,
            },
            ContractCheck {
                name: format!("at least one service restore per disturbance episode ({episodes})"),
                pass: c.service_restores >= episodes,
            },
        ];
        if campaign_over {
            checks.push(ContractCheck {
                name: "health does not latch in Storm after the campaign ends".to_string(),
                pass: chaos.final_health != HealthState::Storm,
            });
        }
        ChaosScorecard {
            policy: report.policy.key(),
            label: report.policy.label(),
            fingerprint: report.fingerprint(),
            chaos,
            counters: c,
            static_deadlines: (
                report.static_deadlines.met(),
                report.static_deadlines.missed(),
            ),
            dynamic_deadlines: (
                report.dynamic_deadlines.met(),
                report.dynamic_deadlines.missed(),
            ),
            recovery_latencies,
            worst_survived_outage_cycles,
            checks,
        }
    }

    /// `true` iff every contract check held.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }
}

/// Counts the disjoint disturbance episodes among finite fault windows:
/// overlapping or touching `[start, clear)` windows merge into one
/// episode, since the health can only restore once after the union.
fn disjoint_episodes(finite: &[(u64, u64, Option<u64>)]) -> u64 {
    let mut windows: Vec<(u64, u64)> = finite.iter().map(|&(s, c, _)| (s, c)).collect();
    windows.sort_unstable();
    let mut episodes = 0u64;
    let mut current_end: Option<u64> = None;
    for (start, end) in windows {
        match current_end {
            Some(e) if start <= e => current_end = Some(e.max(end)),
            _ => {
                episodes += 1;
                current_end = Some(end);
            }
        }
    }
    episodes
}

/// Builds the per-policy run configurations of one campaign: the paper's
/// mixed geometry, the dynamic-experiment workloads, a cycle-denominated
/// horizon, and the campaign scenario shared across policies.
pub fn chaos_configs(
    scenario: &Scenario,
    policies: &[PolicyRef],
    horizon_cycles: u64,
    seed: u64,
) -> Vec<RunConfig> {
    let cluster = ClusterConfig::paper_mixed(50);
    let horizon = cluster.cycle_duration() * horizon_cycles;
    policies
        .iter()
        .map(|&policy| RunConfig {
            cluster: cluster.clone(),
            scenario: scenario.clone(),
            static_messages: dynamic_experiment_statics(),
            dynamic_messages: workloads::sae::message_set(
                workloads::sae::IdRange::For80Slots,
                seed,
            ),
            policy,
            stop: StopCondition::Horizon(horizon),
            seed,
            trace: TraceConfig::off(),
        })
        .collect()
}

/// Runs one campaign for every policy (fanning cells across `threads`
/// workers) and evaluates the contract on each.
///
/// # Errors
/// Propagates the first [`SchedulerError`] from any cell.
pub fn run_campaign(
    scenario: &Scenario,
    policies: &[PolicyRef],
    horizon_cycles: u64,
    seed: u64,
    threads: usize,
    contract: ChaosContract,
) -> Result<Vec<ChaosScorecard>, SchedulerError> {
    let configs = chaos_configs(scenario, policies, horizon_cycles, seed);
    let reports = run_parallel(configs, threads)?;
    Ok(reports
        .iter()
        .map(|r| ChaosScorecard::from_report(r, contract))
        .collect())
}

fn target_str(target: CampaignTarget) -> &'static str {
    match target {
        CampaignTarget::A => "A",
        CampaignTarget::B => "B",
        CampaignTarget::Both => "both",
    }
}

fn health_str(health: HealthState) -> &'static str {
    match health {
        HealthState::Nominal => "nominal",
        HealthState::Stressed => "stressed",
        HealthState::Storm => "storm",
    }
}

fn opt_u64_json(v: Option<u64>) -> Json {
    v.map_or(Json::Null, Json::from)
}

fn scorecard_json(card: &ChaosScorecard) -> Json {
    let latency = if card.recovery_latencies.is_empty() {
        Json::Null
    } else {
        let min = *card.recovery_latencies.iter().min().expect("non-empty");
        let max = *card.recovery_latencies.iter().max().expect("non-empty");
        let mean = card.recovery_latencies.iter().sum::<u64>() as f64
            / card.recovery_latencies.len() as f64;
        Json::object([
            ("min_cycles", Json::from(min)),
            ("mean_cycles", Json::Float(mean)),
            ("max_cycles", Json::from(max)),
        ])
    };
    Json::object([
        ("policy", Json::str(card.policy)),
        ("label", Json::str(card.label)),
        (
            "fingerprint",
            Json::String(format!("{:016x}", card.fingerprint)),
        ),
        (
            "events",
            Json::array(card.chaos.events.iter().map(|e| {
                Json::object([
                    ("kind", Json::str(e.kind)),
                    ("target", Json::str(target_str(e.target))),
                    ("start_cycle", Json::from(e.start_cycle)),
                    ("clear_cycle", opt_u64_json(e.clear_cycle)),
                    ("restored_at_cycle", opt_u64_json(e.restored_at_cycle)),
                    (
                        "recovery_latency_cycles",
                        opt_u64_json(
                            e.clear_cycle
                                .and_then(|c| e.restored_at_cycle.map(|r| r - c)),
                        ),
                    ),
                ])
            })),
        ),
        ("availability", Json::Float(card.chaos.availability())),
        ("nominal_cycles", Json::from(card.chaos.nominal_cycles)),
        ("degraded_cycles", Json::from(card.chaos.degraded_cycles)),
        (
            "final_health",
            Json::str(health_str(card.chaos.final_health)),
        ),
        ("recovery_latency", latency),
        (
            "worst_survived_outage_cycles",
            opt_u64_json(card.worst_survived_outage_cycles),
        ),
        (
            "deadlines",
            Json::object([
                ("static_met", Json::from(card.static_deadlines.0)),
                ("static_missed", Json::from(card.static_deadlines.1)),
                ("dynamic_met", Json::from(card.dynamic_deadlines.0)),
                ("dynamic_missed", Json::from(card.dynamic_deadlines.1)),
            ]),
        ),
        (
            "counters",
            Json::object(
                card.counters
                    .fields()
                    .into_iter()
                    .map(|(name, value)| (name, Json::from(value))),
            ),
        ),
        (
            "checks",
            Json::array(card.checks.iter().map(|c| {
                Json::object([
                    ("name", Json::str(c.name.clone())),
                    ("pass", Json::from(c.pass)),
                ])
            })),
        ),
        ("passed", Json::from(card.passed())),
    ])
}

/// The `coefficient-chaos/1` document: campaign identity, contract
/// parameters and one scorecard per policy. No wall-clock and no thread
/// count — the bytes are identical at any parallelism.
pub fn chaos_report_json(
    campaign: &str,
    scenario: &str,
    seed: u64,
    horizon_cycles: u64,
    contract: ChaosContract,
    cards: &[ChaosScorecard],
) -> Json {
    Json::object([
        ("schema", Json::str("coefficient-chaos/1")),
        ("campaign", Json::str(campaign)),
        ("scenario", Json::str(scenario)),
        ("seed", Json::from(seed)),
        ("horizon_cycles", Json::from(horizon_cycles)),
        (
            "contract",
            Json::object([
                (
                    "recovery_budget_cycles",
                    Json::from(contract.recovery_budget_cycles),
                ),
                ("hard_miss_budget", Json::from(contract.hard_miss_budget)),
            ]),
        ),
        ("policies", Json::array(cards.iter().map(scorecard_json))),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use coefficient::registry::{COEFFICIENT, GREEDY};

    #[test]
    fn campaign_registry_resolves_every_name_and_rejects_others() {
        for name in campaign_names() {
            let spec = resolve_campaign(name).expect(name);
            assert!(!spec.is_empty());
            assert!(
                !spec.has_permanent_event(),
                "pinned campaigns must clear so recovery is checkable"
            );
            assert!(
                spec.last_clear_cycle().unwrap() < DEFAULT_HORIZON_CYCLES,
                "{name} must clear inside the default horizon"
            );
        }
        assert!(resolve_campaign("earthquake").is_none());
    }

    #[test]
    fn blackout_campaign_satisfies_the_contract_for_coefficient() {
        let spec = resolve_campaign(DEFAULT_CAMPAIGN).expect("pinned");
        let scenario = chaos_scenario(Scenario::ber7(), DEFAULT_CAMPAIGN, spec);
        let cards = run_campaign(
            &scenario,
            &[COEFFICIENT],
            DEFAULT_HORIZON_CYCLES,
            CHAOS_SEED,
            1,
            ChaosContract::default(),
        )
        .expect("schedulable");
        assert_eq!(cards.len(), 1);
        let card = &cards[0];
        for check in &card.checks {
            assert!(check.pass, "failed: {}", check.name);
        }
        assert!(card.passed());
        assert_eq!(card.recovery_latencies.len(), 1, "one cleared outage");
        assert_eq!(card.worst_survived_outage_cycles, Some(50));
        let availability = card.chaos.availability();
        assert!(availability > 0.0 && availability < 1.0, "{availability}");
        assert!(card.counters.campaign_blackout_faults > 0);
    }

    #[test]
    fn chaos_document_is_thread_count_invariant() {
        let spec = resolve_campaign(DEFAULT_CAMPAIGN).expect("pinned");
        let scenario = chaos_scenario(Scenario::ber7(), DEFAULT_CAMPAIGN, spec);
        let contract = ChaosContract::default();
        let policies = [COEFFICIENT, GREEDY];
        let render = |threads: usize| {
            let cards = run_campaign(
                &scenario,
                &policies,
                DEFAULT_HORIZON_CYCLES,
                CHAOS_SEED,
                threads,
                contract,
            )
            .expect("schedulable");
            chaos_report_json(
                DEFAULT_CAMPAIGN,
                scenario.name,
                CHAOS_SEED,
                DEFAULT_HORIZON_CYCLES,
                contract,
                &cards,
            )
            .to_string()
        };
        assert_eq!(render(1), render(4));
    }

    #[test]
    fn episodes_merge_overlapping_windows() {
        assert_eq!(disjoint_episodes(&[]), 0);
        assert_eq!(disjoint_episodes(&[(10, 20, None)]), 1);
        assert_eq!(disjoint_episodes(&[(10, 20, None), (15, 30, None)]), 1);
        assert_eq!(disjoint_episodes(&[(10, 20, None), (20, 30, None)]), 1);
        assert_eq!(disjoint_episodes(&[(10, 20, None), (40, 50, None)]), 2);
    }
}
