//! The `coefficient-backbone/1` report and the pinned-matrix gates.
//!
//! `experiments backbone` runs a [`backbone::MatrixSpec`] and emits one
//! JSON document: per-cell admission, reservation utilization and
//! per-flow latency/jitter percentiles. Everything in the document is
//! derived from simulated time — no wall-clock fields — so two runs (at
//! any worker-thread count) produce byte-identical reports.

use backbone::{CellReport, Topology};

use crate::json::Json;

/// The stable JSON schema of a backbone matrix run
/// (`schema: "coefficient-backbone/1"`).
pub fn backbone_report_json(topology: &Topology, reports: &[CellReport]) -> Json {
    Json::object([
        ("schema", Json::str("coefficient-backbone/1")),
        ("topology", Json::str(topology.name.clone())),
        ("summary", Json::str(topology.summary.clone())),
        (
            "hypercycle_ns",
            Json::from(topology.hypercycle().as_nanos()),
        ),
        ("flows", Json::from(topology.flows.len() as u64)),
        ("cells", Json::array(reports.iter().map(cell_json))),
    ])
}

fn cell_json(cell: &CellReport) -> Json {
    Json::object([
        ("reservation", Json::str(cell.reservation)),
        ("scenario", Json::str(cell.scenario.clone())),
        ("seed", Json::from(cell.seed)),
        ("hypercycles", Json::from(cell.hypercycles)),
        ("admitted", Json::from(cell.admitted)),
        ("jitter_violations", Json::from(cell.jitter_violations)),
        (
            "fingerprint",
            Json::str(format!("{:016x}", cell.fingerprint())),
        ),
        (
            "ports",
            Json::array(cell.ports.iter().map(|p| {
                Json::object([
                    ("windows_total", Json::from(p.windows_total)),
                    ("windows_reserved", Json::from(p.windows_reserved)),
                    (
                        "utilization_permille",
                        Json::from(
                            (p.windows_reserved * 1000)
                                .checked_div(p.windows_total)
                                .unwrap_or(0),
                        ),
                    ),
                    ("frames", Json::from(p.frames)),
                    ("missed_windows", Json::from(p.missed_windows)),
                    ("peak_queue", Json::from(p.peak_queue)),
                ])
            })),
        ),
        (
            "flows",
            Json::array(cell.flows.iter().map(|f| {
                Json::object([
                    ("flow", Json::from(u64::from(f.flow))),
                    ("admitted", Json::Bool(f.admitted)),
                    ("instances", Json::from(f.counters.instances)),
                    ("delivered", Json::from(f.counters.delivered)),
                    ("lost", Json::from(f.counters.lost)),
                    ("missed_windows", Json::from(f.counters.missed_windows)),
                    ("latency_p50_ns", Json::from(f.p50_ns)),
                    ("latency_p99_ns", Json::from(f.p99_ns)),
                    ("latency_max_ns", Json::from(f.counters.latency_max_ns)),
                    ("jitter_ns", Json::from(f.counters.jitter_ns)),
                    ("jitter_bound_ns", Json::from(f.jitter_bound_ns)),
                ])
            })),
        ),
    ])
}

/// The pinned-matrix acceptance gates: every admitted flow's observed
/// jitter stays within its declared bound, and — whenever both policies
/// ran the same `(scenario, seed)` cell — the hypercycle policy either
/// admits strictly more flows than the per-cycle baseline or matches its
/// admission with a strictly lower worst per-flow p99 latency.
///
/// # Errors
/// Returns a human-readable description of the first violated gate.
pub fn check_matrix(reports: &[CellReport]) -> Result<(), String> {
    for cell in reports {
        if cell.jitter_violations > 0 {
            let worst = cell
                .flows
                .iter()
                .filter(|f| f.admitted && f.counters.jitter_ns > f.jitter_bound_ns)
                .map(|f| f.flow)
                .collect::<Vec<_>>();
            return Err(format!(
                "{} {} seed {}: {} flow(s) exceeded their declared jitter bound: {:?}",
                cell.reservation, cell.scenario, cell.seed, cell.jitter_violations, worst
            ));
        }
    }
    for hyper in reports.iter().filter(|c| c.reservation == "hypercycle") {
        let Some(base) = reports.iter().find(|c| {
            c.reservation == "per-cycle"
                && c.scenario == hyper.scenario
                && c.seed == hyper.seed
                && c.topology == hyper.topology
        }) else {
            continue;
        };
        if hyper.admitted > base.admitted {
            continue;
        }
        let worst_p99 = |cell: &CellReport| {
            cell.flows
                .iter()
                .filter(|f| f.admitted)
                .map(|f| f.p99_ns)
                .max()
                .unwrap_or(0)
        };
        if hyper.admitted == base.admitted && worst_p99(hyper) < worst_p99(base) {
            continue;
        }
        return Err(format!(
            "{} seed {}: hypercycle policy shows no gain over per-cycle \
             (admitted {} vs {}, worst p99 {} vs {} ns)",
            hyper.scenario,
            hyper.seed,
            hyper.admitted,
            base.admitted,
            worst_p99(hyper),
            worst_p99(base),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use backbone::{run_matrix, MatrixSpec};

    fn quick_matrix() -> Vec<CellReport> {
        let spec = MatrixSpec {
            hypercycles: 2,
            ..MatrixSpec::pinned(backbone::topology::default_topology())
        };
        run_matrix(&spec, 2).unwrap()
    }

    #[test]
    fn report_round_trips_and_has_no_wall_clock() {
        let reports = quick_matrix();
        let doc = backbone_report_json(backbone::topology::default_topology(), &reports);
        let text = doc.pretty();
        let parsed = Json::parse(&text).expect("report parses");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("coefficient-backbone/1")
        );
        assert_eq!(
            parsed
                .get("cells")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(reports.len())
        );
        for field in ["wall", "elapsed", "_ms", "secs"] {
            assert!(
                !text.contains(field),
                "report leaked a wall-clock field: {field}"
            );
        }
    }

    #[test]
    fn pinned_matrix_passes_the_gates() {
        let reports = quick_matrix();
        check_matrix(&reports).expect("pinned matrix gates hold");
        // The headline claim is visible in the report itself.
        let admitted = |key: &str| {
            reports
                .iter()
                .find(|c| c.reservation == key)
                .map(|c| c.admitted)
                .unwrap()
        };
        assert!(admitted("hypercycle") > admitted("per-cycle"));
    }
}
