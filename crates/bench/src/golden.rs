//! Golden-corpus persistence and entry points for the `experiments
//! golden record|verify` CLI.
//!
//! The comparison logic (fingerprint identity, tolerance bands,
//! counter-level diffs) lives in [`coefficient::golden`]; this module
//! owns the `coefficient-golden/1` JSON schema, the pinned corpus spec
//! the CI gate runs, and file I/O.
//!
//! A corpus file is self-describing: it embeds the [`SweepSpec`] it was
//! recorded from, so `verify` rebuilds exactly the recorded matrix —
//! the checked-in file is the single source of truth, and drift between
//! "what was recorded" and "what is replayed" is impossible by
//! construction.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use coefficient::golden::{GoldenGroup, SCHEMA};
use coefficient::{
    CellCoord, GoldenCell, GoldenCorpus, GoldenMetrics, RunCounters, Scenario, SchedulerError,
    SeedStrategy, Tolerances, VerifyReport,
};

use backbone::{resolve_reservation, resolve_topology, run_cell, run_matrix};
use backbone::{CellSpec as BackboneCellSpec, MatrixSpec as BackboneMatrixSpec};

use crate::experiments::SEED;
use crate::json::Json;
use crate::sweep::{parse_policy, parse_scenario, policy_label, SweepSpec};

/// Default on-disk location of the checked-in corpus.
pub const DEFAULT_CORPUS_PATH: &str = "corpus/golden.json";

/// The pinned spec of the CI regression gate: every registered policy ×
/// 3 scenarios × 3 seeds = 54 cells on the paper's mixed geometry, with
/// a horizon short enough for every CI run but long enough that faults,
/// steals and early copies all occur in every cell. The `BER-7-storm`
/// column pins the resilience subsystem: monitor transitions,
/// degraded-mode shedding and dual-channel failover all engage there and
/// their counters are part of the recorded fingerprints. Per-cell seeds
/// key on the scenario *name* (not the policy), and the registry lists
/// the legacy pair first, so growing the policy axis appends columns
/// without shifting the original CoEfficient/FSPEC cells' coordinates,
/// seeds or digests.
pub fn golden_spec() -> SweepSpec {
    SweepSpec {
        minislots: 50,
        horizon_ms: 100,
        seeds: 3,
        master_seed: SEED,
        threads: None,
        policies: coefficient::registry::all().to_vec(),
        scenarios: vec![Scenario::ber7(), Scenario::ber9(), Scenario::ber7().storm()],
        strategy: SeedStrategy::PerCell,
    }
}

/// A corpus together with the spec that produced it — the unit the
/// `coefficient-golden/1` file stores.
#[derive(Debug, Clone)]
pub struct CorpusFile {
    /// The sweep spec the corpus was recorded from (and is verified
    /// against).
    pub spec: SweepSpec,
    /// The recorded cells, groups and tolerances.
    pub corpus: GoldenCorpus,
    /// The recorded end-to-end backbone cells (empty in corpora from
    /// before the gateway subsystem existed).
    pub backbone: Vec<BackboneGoldenCell>,
}

/// One recorded cell of the pinned backbone matrix. Unlike the sweep
/// cells — which carry tolerance-banded metrics — a backbone cell is
/// pure identity: it stores the replayable coordinates plus the report
/// fingerprint, and `verify` re-runs exactly those coordinates and
/// demands a bit-identical digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackboneGoldenCell {
    /// Registered topology name.
    pub topology: String,
    /// Reservation-policy registry key.
    pub reservation: String,
    /// Fault-scenario name.
    pub scenario: String,
    /// Master seed of the cell.
    pub seed: u64,
    /// Hypercycles in the measured span.
    pub hypercycles: u64,
    /// Flows the reservation policy admitted.
    pub admitted: u64,
    /// Full [`backbone::CellReport`] fingerprint.
    pub fingerprint: u64,
}

/// Records a corpus by running `spec` and capturing every cell, plus
/// the pinned backbone matrix on the default topology.
///
/// # Errors
/// Returns a rendered message if a sweep cell is unschedulable or a
/// backbone cell fails to run.
pub fn record_corpus(name: &str, spec: &SweepSpec) -> Result<CorpusFile, String> {
    let report = spec
        .run()
        .map_err(|e: SchedulerError| format!("golden spec is unschedulable: {e}"))?;
    let labels: Vec<&str> = spec.policies.iter().map(|&p| policy_label(p)).collect();
    Ok(CorpusFile {
        spec: spec.clone(),
        corpus: GoldenCorpus::record(name, &report, &labels),
        backbone: record_backbone_cells()?,
    })
}

/// Runs the pinned backbone matrix and snapshots each cell's identity.
fn record_backbone_cells() -> Result<Vec<BackboneGoldenCell>, String> {
    let spec = BackboneMatrixSpec::pinned(backbone::topology::default_topology());
    let reports = run_matrix(&spec, 4).map_err(|e| e.to_string())?;
    Ok(reports
        .iter()
        .map(|r| BackboneGoldenCell {
            topology: r.topology.clone(),
            reservation: r.reservation.to_string(),
            scenario: r.scenario.clone(),
            seed: r.seed,
            hypercycles: r.hypercycles,
            admitted: r.admitted,
            fingerprint: r.fingerprint(),
        })
        .collect())
}

/// Replays the corpus' own spec and verifies the fresh sweep against it.
/// Backbone cells are checked separately by [`verify_backbone`].
///
/// # Errors
/// Returns a rendered message if a cell is unschedulable.
pub fn verify_corpus(file: &CorpusFile) -> Result<VerifyReport, String> {
    let fresh = file
        .spec
        .run()
        .map_err(|e: SchedulerError| format!("recorded spec is unschedulable: {e}"))?;
    Ok(file.corpus.verify(&fresh))
}

/// Replays every recorded backbone cell from its stored coordinates and
/// compares fingerprints. Returns one description per diverging cell
/// (empty means the replay was bit-identical).
///
/// # Errors
/// Returns a rendered message when a recorded coordinate no longer
/// resolves (unknown topology/reservation/scenario) or a cell fails to
/// run — distinct from a divergence, which is a gate failure.
pub fn verify_backbone(file: &CorpusFile) -> Result<Vec<String>, String> {
    let mut defects = Vec::new();
    for cell in &file.backbone {
        let topology = resolve_topology(&cell.topology).map_err(|e| e.to_string())?;
        let reservation = resolve_reservation(&cell.reservation).map_err(|e| e.to_string())?;
        let scenario = parse_scenario(&cell.scenario).map_err(|e| e.to_string())?;
        let report = run_cell(&BackboneCellSpec {
            topology,
            reservation,
            scenario,
            seed: cell.seed,
            hypercycles: cell.hypercycles,
        })
        .map_err(|e| e.to_string())?;
        let fresh = report.fingerprint();
        if fresh != cell.fingerprint || report.admitted != cell.admitted {
            defects.push(format!(
                "backbone {} {} {} seed {}: recorded fingerprint {:016x} (admitted {}), \
                 replay produced {fresh:016x} (admitted {})",
                cell.topology,
                cell.reservation,
                cell.scenario,
                cell.seed,
                cell.fingerprint,
                cell.admitted,
                report.admitted,
            ));
        }
    }
    Ok(defects)
}

// ---------------------------------------------------------------------------
// JSON serialization
// ---------------------------------------------------------------------------

/// Serializes a corpus file into the `coefficient-golden/1` document.
pub fn corpus_to_json(file: &CorpusFile) -> Json {
    let spec = &file.spec;
    let corpus = &file.corpus;
    Json::object([
        ("schema", Json::str(SCHEMA)),
        ("name", Json::str(corpus.name.clone())),
        (
            "tolerance",
            Json::object([
                ("ratio_abs", Json::from(corpus.tolerance.ratio_abs)),
                ("scale_rel", Json::from(corpus.tolerance.scale_rel)),
            ]),
        ),
        (
            "spec",
            Json::object([
                ("minislots", Json::from(spec.minislots)),
                ("horizon_ms", Json::from(spec.horizon_ms)),
                ("seeds", Json::from(spec.seeds)),
                ("master_seed", Json::from(spec.master_seed)),
                (
                    "shared_seeds",
                    Json::from(matches!(spec.strategy, SeedStrategy::Shared)),
                ),
                (
                    "policies",
                    Json::array(spec.policies.iter().map(|&p| Json::str(policy_label(p)))),
                ),
                (
                    "scenarios",
                    Json::array(spec.scenarios.iter().map(|s| Json::str(s.name))),
                ),
            ]),
        ),
        ("cells", Json::array(corpus.cells.iter().map(cell_to_json))),
        (
            "groups",
            Json::array(corpus.groups.iter().map(group_to_json)),
        ),
        (
            "backbone",
            Json::array(file.backbone.iter().map(backbone_cell_to_json)),
        ),
    ])
}

fn backbone_cell_to_json(cell: &BackboneGoldenCell) -> Json {
    Json::object([
        ("topology", Json::str(cell.topology.clone())),
        ("reservation", Json::str(cell.reservation.clone())),
        ("scenario", Json::str(cell.scenario.clone())),
        ("seed", Json::from(cell.seed)),
        ("hypercycles", Json::from(cell.hypercycles)),
        ("admitted", Json::from(cell.admitted)),
        (
            "fingerprint",
            Json::String(format!("{:016x}", cell.fingerprint)),
        ),
    ])
}

fn cell_to_json(cell: &GoldenCell) -> Json {
    Json::object([
        ("policy", Json::str(cell.policy.clone())),
        ("scenario", Json::str(cell.scenario.clone())),
        ("policy_index", Json::from(cell.coord.policy)),
        ("scenario_index", Json::from(cell.coord.scenario)),
        ("seed_index", Json::from(cell.coord.seed)),
        ("seed", Json::from(cell.seed)),
        (
            "fingerprint",
            Json::String(format!("{:016x}", cell.fingerprint)),
        ),
        (
            "metrics",
            Json::object(
                cell.metrics
                    .fields()
                    .iter()
                    .map(|&(name, value, _)| (name, Json::from(value))),
            ),
        ),
        (
            "counters",
            Json::object(
                cell.counters
                    .fields()
                    .iter()
                    .map(|&(name, value)| (name, Json::from(value))),
            ),
        ),
    ])
}

fn group_to_json(group: &GoldenGroup) -> Json {
    let mut pairs = vec![
        ("policy_index", Json::from(group.policy)),
        ("scenario_index", Json::from(group.scenario)),
    ];
    pairs.extend(
        group
            .fields()
            .iter()
            .map(|&(name, value, _)| (name, Json::from(value))),
    );
    Json::object(pairs)
}

// ---------------------------------------------------------------------------
// JSON deserialization
// ---------------------------------------------------------------------------

/// A structural defect in a corpus document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusError {
    /// What was wrong, with the offending key.
    pub message: String,
}

impl CorpusError {
    fn new(message: impl Into<String>) -> CorpusError {
        CorpusError {
            message: message.into(),
        }
    }
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid golden corpus: {}", self.message)
    }
}

impl std::error::Error for CorpusError {}

fn want<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, CorpusError> {
    doc.get(key)
        .ok_or_else(|| CorpusError::new(format!("missing key {key:?}")))
}

fn want_u64(doc: &Json, key: &str) -> Result<u64, CorpusError> {
    want(doc, key)?
        .as_u64()
        .ok_or_else(|| CorpusError::new(format!("{key:?} is not an unsigned integer")))
}

fn want_f64(doc: &Json, key: &str) -> Result<f64, CorpusError> {
    want(doc, key)?
        .as_f64()
        .ok_or_else(|| CorpusError::new(format!("{key:?} is not a number")))
}

fn want_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, CorpusError> {
    want(doc, key)?
        .as_str()
        .ok_or_else(|| CorpusError::new(format!("{key:?} is not a string")))
}

fn want_array<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], CorpusError> {
    want(doc, key)?
        .as_array()
        .ok_or_else(|| CorpusError::new(format!("{key:?} is not an array")))
}

/// Parses a `coefficient-golden/1` document back into a corpus file.
///
/// # Errors
/// Returns [`CorpusError`] on a schema mismatch or any missing or
/// mistyped field.
pub fn corpus_from_json(doc: &Json) -> Result<CorpusFile, CorpusError> {
    let schema = want_str(doc, "schema")?;
    if schema != SCHEMA {
        return Err(CorpusError::new(format!(
            "schema {schema:?} is not {SCHEMA:?}"
        )));
    }
    let tolerance = want(doc, "tolerance")?;
    let tolerance = Tolerances {
        ratio_abs: want_f64(tolerance, "ratio_abs")?,
        scale_rel: want_f64(tolerance, "scale_rel")?,
    };
    let spec = spec_from_json(want(doc, "spec")?)?;
    let cells = want_array(doc, "cells")?
        .iter()
        .map(cell_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let groups = want_array(doc, "groups")?
        .iter()
        .map(group_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    // The backbone cells joined the schema after the first corpora were
    // recorded; an absent key means the gateway subsystem did not exist
    // yet, so an empty list is the faithful value.
    let backbone = match doc.get("backbone") {
        None => Vec::new(),
        Some(v) => v
            .as_array()
            .ok_or_else(|| CorpusError::new("\"backbone\" is not an array"))?
            .iter()
            .map(backbone_cell_from_json)
            .collect::<Result<Vec<_>, _>>()?,
    };
    Ok(CorpusFile {
        spec,
        corpus: GoldenCorpus {
            name: want_str(doc, "name")?.to_string(),
            tolerance,
            cells,
            groups,
        },
        backbone,
    })
}

fn backbone_cell_from_json(doc: &Json) -> Result<BackboneGoldenCell, CorpusError> {
    let fingerprint = want_str(doc, "fingerprint")?;
    let fingerprint = u64::from_str_radix(fingerprint, 16)
        .map_err(|_| CorpusError::new(format!("fingerprint {fingerprint:?} is not hex")))?;
    // Resolve eagerly so an unknown name in a corpus file lists every
    // registered topology/reservation, mirroring the policy axis.
    let topology = want_str(doc, "topology")?;
    resolve_topology(topology).map_err(|e| CorpusError::new(e.to_string()))?;
    let reservation = want_str(doc, "reservation")?;
    resolve_reservation(reservation).map_err(|e| CorpusError::new(e.to_string()))?;
    Ok(BackboneGoldenCell {
        topology: topology.to_string(),
        reservation: reservation.to_string(),
        scenario: want_str(doc, "scenario")?.to_string(),
        seed: want_u64(doc, "seed")?,
        hypercycles: want_u64(doc, "hypercycles")?,
        admitted: want_u64(doc, "admitted")?,
        fingerprint,
    })
}

fn spec_from_json(doc: &Json) -> Result<SweepSpec, CorpusError> {
    let policies = want_array(doc, "policies")?
        .iter()
        .map(|p| {
            let name = p
                .as_str()
                .ok_or_else(|| CorpusError::new(format!("policy {p} is not a string")))?;
            // Surface the registry's own error so an unknown name in a
            // corpus file lists every registered policy.
            parse_policy(name).map_err(|e| CorpusError::new(e.to_string()))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let scenarios = want_array(doc, "scenarios")?
        .iter()
        .map(|s| {
            s.as_str()
                .ok_or_else(|| CorpusError::new(format!("scenario entry {s} is not a string")))
                .and_then(|name| parse_scenario(name).map_err(|e| CorpusError::new(e.to_string())))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let shared = want(doc, "shared_seeds")?
        .as_bool()
        .ok_or_else(|| CorpusError::new("\"shared_seeds\" is not a bool"))?;
    Ok(SweepSpec {
        minislots: want_u64(doc, "minislots")?,
        horizon_ms: want_u64(doc, "horizon_ms")?,
        seeds: want_u64(doc, "seeds")?,
        master_seed: want_u64(doc, "master_seed")?,
        threads: None,
        policies,
        scenarios,
        strategy: if shared {
            SeedStrategy::Shared
        } else {
            SeedStrategy::PerCell
        },
    })
}

fn cell_from_json(doc: &Json) -> Result<GoldenCell, CorpusError> {
    let fingerprint = want_str(doc, "fingerprint")?;
    let fingerprint = u64::from_str_radix(fingerprint, 16)
        .map_err(|_| CorpusError::new(format!("fingerprint {fingerprint:?} is not hex")))?;
    Ok(GoldenCell {
        coord: CellCoord {
            policy: want_u64(doc, "policy_index")? as usize,
            scenario: want_u64(doc, "scenario_index")? as usize,
            seed: want_u64(doc, "seed_index")? as usize,
        },
        policy: want_str(doc, "policy")?.to_string(),
        scenario: want_str(doc, "scenario")?.to_string(),
        seed: want_u64(doc, "seed")?,
        fingerprint,
        metrics: metrics_from_json(want(doc, "metrics")?)?,
        counters: counters_from_json(want(doc, "counters")?)?,
    })
}

fn metrics_from_json(doc: &Json) -> Result<GoldenMetrics, CorpusError> {
    Ok(GoldenMetrics {
        running_time_ms: want_f64(doc, "running_time_ms")?,
        utilization: want_f64(doc, "utilization")?,
        wire_utilization: want_f64(doc, "wire_utilization")?,
        static_miss_ratio: want_f64(doc, "static_miss_ratio")?,
        dynamic_miss_ratio: want_f64(doc, "dynamic_miss_ratio")?,
        miss_ratio: want_f64(doc, "miss_ratio")?,
        delivery_ratio: want_f64(doc, "delivery_ratio")?,
        delivered_per_second: want_f64(doc, "delivered_per_second")?,
        static_latency_mean_ms: want_f64(doc, "static_latency_mean_ms")?,
        static_latency_max_ms: want_f64(doc, "static_latency_max_ms")?,
        dynamic_latency_mean_ms: want_f64(doc, "dynamic_latency_mean_ms")?,
        dynamic_latency_max_ms: want_f64(doc, "dynamic_latency_max_ms")?,
    })
}

/// Reads an optional counter, defaulting to zero when the key is absent.
/// The resilience counters joined the schema after the first corpora were
/// recorded; corpora from before then simply never engaged the subsystem,
/// so zero is the faithful value (and the conditional fingerprint folding
/// makes an all-zero resilience block digest-neutral).
fn opt_u64(doc: &Json, key: &str) -> Result<u64, CorpusError> {
    match doc.get(key) {
        None => Ok(0),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| CorpusError::new(format!("{key:?} is not an unsigned integer"))),
    }
}

fn counters_from_json(doc: &Json) -> Result<RunCounters, CorpusError> {
    Ok(RunCounters {
        steal_attempts: want_u64(doc, "steal_attempts")?,
        steal_granted: want_u64(doc, "steal_granted")?,
        steal_denied: want_u64(doc, "steal_denied")?,
        early_copies_sent: want_u64(doc, "early_copies_sent")?,
        dropped_copies: want_u64(doc, "dropped_copies")?,
        retransmission_budget_used: want_u64(doc, "retransmission_budget_used")?,
        preemptions: want_u64(doc, "preemptions")?,
        frames_checked: want_u64(doc, "frames_checked")?,
        faults_injected: want_u64(doc, "faults_injected")?,
        faults_recovered: want_u64(doc, "faults_recovered")?,
        health_transitions: opt_u64(doc, "health_transitions")?,
        storm_entries: opt_u64(doc, "storm_entries")?,
        service_restores: opt_u64(doc, "service_restores")?,
        soft_shed: opt_u64(doc, "soft_shed")?,
        degraded_extra_copies: opt_u64(doc, "degraded_extra_copies")?,
        failover_mirrors: opt_u64(doc, "failover_mirrors")?,
        campaign_events: opt_u64(doc, "campaign_events")?,
        campaign_blackout_faults: opt_u64(doc, "campaign_blackout_faults")?,
        campaign_extra_faults: opt_u64(doc, "campaign_extra_faults")?,
        campaign_dropout_cycles: opt_u64(doc, "campaign_dropout_cycles")?,
    })
}

fn group_from_json(doc: &Json) -> Result<GoldenGroup, CorpusError> {
    let triple = |prefix: &str| -> Result<[f64; 3], CorpusError> {
        Ok([
            want_f64(doc, &format!("{prefix}_p50"))?,
            want_f64(doc, &format!("{prefix}_p90"))?,
            want_f64(doc, &format!("{prefix}_p99"))?,
        ])
    };
    Ok(GoldenGroup {
        policy: want_u64(doc, "policy_index")? as usize,
        scenario: want_u64(doc, "scenario_index")? as usize,
        static_latency_ms_p: triple("static_latency_ms")?,
        dynamic_latency_ms_p: triple("dynamic_latency_ms")?,
        miss_ratio_p: triple("miss_ratio")?,
    })
}

// ---------------------------------------------------------------------------
// file I/O
// ---------------------------------------------------------------------------

/// Writes a corpus file to `path` (pretty-printed, creating parent
/// directories, with a trailing newline so it diffs cleanly in git).
///
/// # Errors
/// Propagates filesystem errors.
pub fn save_corpus(path: &Path, file: &CorpusFile) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut text = corpus_to_json(file).pretty();
    text.push('\n');
    fs::write(path, text)
}

/// Reads and parses a corpus file from `path`.
///
/// # Errors
/// Returns a rendered message for filesystem, JSON-syntax or schema
/// defects (the CLI prints it verbatim).
pub fn load_corpus(path: &Path) -> Result<CorpusFile, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    corpus_from_json(&doc).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            horizon_ms: 20,
            seeds: 2,
            scenarios: vec![Scenario::ber7()],
            threads: Some(2),
            ..SweepSpec::default()
        }
    }

    #[test]
    fn golden_spec_covers_the_whole_registry_with_a_storm_column() {
        let spec = golden_spec();
        let matrix = spec.build_matrix();
        assert_eq!(spec.policies.len(), coefficient::registry::all().len());
        assert_eq!(matrix.cell_count(), 9 * spec.policies.len());
        assert_eq!(matrix.cell_count(), 54);
        // The legacy pair leads the axis, so its cells keep coordinates
        // (and, via scenario-keyed seeds, digests) from the 18-cell era.
        assert_eq!(spec.policies[0], coefficient::COEFFICIENT);
        assert_eq!(spec.policies[1], coefficient::FSPEC);
        assert!(spec.scenarios.iter().any(|s| s.name == "BER-7-storm"));
    }

    #[test]
    fn unknown_policy_in_a_corpus_file_lists_the_registry() {
        let recorded = record_corpus("bad-policy", &tiny_spec()).unwrap();
        let doc = corpus_to_json(&recorded)
            .to_string()
            .replace("\"CoEfficient\"", "\"NoSuchPolicy\"");
        let err = corpus_from_json(&Json::parse(&doc).unwrap()).unwrap_err();
        assert!(
            err.message.contains("unknown policy \"NoSuchPolicy\""),
            "{err}"
        );
        for policy in coefficient::registry::all() {
            assert!(err.message.contains(policy.key()), "{err}");
        }
    }

    #[test]
    fn corpus_round_trips_through_json() {
        let recorded = record_corpus("roundtrip", &tiny_spec()).unwrap();
        let text = corpus_to_json(&recorded).pretty();
        let parsed = corpus_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed.corpus, recorded.corpus);
        assert_eq!(parsed.backbone, recorded.backbone);
        assert_eq!(parsed.spec.minislots, recorded.spec.minislots);
        assert_eq!(parsed.spec.horizon_ms, recorded.spec.horizon_ms);
        assert_eq!(parsed.spec.seeds, recorded.spec.seeds);
        assert_eq!(parsed.spec.master_seed, recorded.spec.master_seed);
        assert_eq!(parsed.spec.policies, recorded.spec.policies);
        let names = |spec: &SweepSpec| spec.scenarios.iter().map(|s| s.name).collect::<Vec<_>>();
        assert_eq!(names(&parsed.spec), names(&recorded.spec));
    }

    #[test]
    fn parsed_corpus_verifies_against_a_fresh_replay() {
        let recorded = record_corpus("replay", &tiny_spec()).unwrap();
        let text = corpus_to_json(&recorded).to_string();
        let parsed = corpus_from_json(&Json::parse(&text).unwrap()).unwrap();
        let report = verify_corpus(&parsed).unwrap();
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn rejects_wrong_schema_and_broken_fields() {
        let recorded = record_corpus("bad", &tiny_spec()).unwrap();
        let good = corpus_to_json(&recorded).to_string();

        let wrong_schema = good.replace("coefficient-golden/1", "coefficient-golden/999");
        let err = corpus_from_json(&Json::parse(&wrong_schema).unwrap()).unwrap_err();
        assert!(err.message.contains("schema"), "{err}");

        let bad_policy = good.replace("\"CoEfficient\"", "\"NoSuchPolicy\"");
        assert!(corpus_from_json(&Json::parse(&bad_policy).unwrap()).is_err());

        let truncated = good.replace("\"steal_attempts\"", "\"renamed_counter\"");
        assert!(corpus_from_json(&Json::parse(&truncated).unwrap()).is_err());
    }

    #[test]
    fn backbone_cells_join_the_corpus_and_replay() {
        let mut recorded = record_corpus("backbone", &tiny_spec()).unwrap();
        // The pinned matrix: 2 reservation policies x {BER-7, BER-7-storm}.
        assert_eq!(recorded.backbone.len(), 4);
        assert!(verify_backbone(&recorded).unwrap().is_empty());
        recorded.backbone[0].fingerprint ^= 1;
        let defects = verify_backbone(&recorded).unwrap();
        assert_eq!(defects.len(), 1, "{defects:?}");
        assert!(defects[0].contains("backbone paper-duplex"), "{defects:?}");
    }

    #[test]
    fn corpus_without_a_backbone_key_still_parses() {
        let recorded = record_corpus("legacy", &tiny_spec()).unwrap();
        let Json::Object(entries) = corpus_to_json(&recorded) else {
            panic!("corpus document is not an object");
        };
        let legacy = Json::Object(
            entries
                .into_iter()
                .filter(|(k, _)| k != "backbone")
                .collect(),
        );
        let parsed = corpus_from_json(&legacy).unwrap();
        assert!(parsed.backbone.is_empty());
        assert_eq!(parsed.corpus, recorded.corpus);
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("coefficient-golden-test");
        let path = dir.join("nested").join("golden.json");
        let recorded = record_corpus("disk", &tiny_spec()).unwrap();
        save_corpus(&path, &recorded).unwrap();
        let loaded = load_corpus(&path).unwrap();
        assert_eq!(loaded.corpus, recorded.corpus);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_reports_readable_errors() {
        let missing = load_corpus(Path::new("/nonexistent/golden.json")).unwrap_err();
        assert!(missing.contains("cannot read"), "{missing}");
    }
}
