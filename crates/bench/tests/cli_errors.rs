//! CLI error-path contract for the `experiments` binary.
//!
//! An unknown policy name anywhere in the CLI — `sweep`, `replay`,
//! `trace` or a corrupted golden corpus — must produce a diagnostic that
//! *lists every registered policy name* and a clean non-zero exit, never
//! a panic. The listing comes from `coefficient::registry`, so these
//! tests stay correct as the zoo grows.

use bench_harness::experiments::SEED;
use bench_harness::golden::{corpus_to_json, record_corpus};
use bench_harness::sweep::SweepSpec;
use coefficient::Scenario;
use std::process::{Command, Output};

fn experiments(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn assert_lists_registry(stderr: &str, bad_name: &str) {
    assert!(
        stderr.contains(&format!("unknown policy \"{bad_name}\"")),
        "diagnostic does not name the offender: {stderr}"
    );
    for policy in coefficient::registry::all() {
        assert!(
            stderr.contains(policy.key()),
            "diagnostic does not list {:?}: {stderr}",
            policy.key()
        );
    }
}

#[test]
fn sweep_with_an_unknown_policy_lists_the_registered_names() {
    let out = experiments(&["sweep", "--policy", "bogus"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert_lists_registry(&stderr, "bogus");
}

#[test]
fn trace_with_an_unknown_policy_lists_the_registered_names() {
    let out = experiments(&["trace", "--cell", "0,0,0", "--policy", "SPEC-F"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert_lists_registry(&stderr, "SPEC-F");
}

#[test]
fn replay_with_an_unknown_policy_lists_the_registered_names() {
    let out = experiments(&["replay", "--cell", "0,0,0", "--policy", "hosa2"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert_lists_registry(&stderr, "hosa2");
}

#[test]
fn golden_verify_against_a_corpus_with_an_unknown_policy_lists_the_registry() {
    // Record a real (tiny) corpus, then corrupt its policy column the way
    // a stale file from a renamed policy would look.
    let spec = SweepSpec {
        horizon_ms: 8,
        seeds: 1,
        scenarios: vec![Scenario::ber7()],
        threads: Some(2),
        ..SweepSpec::default()
    };
    let recorded = record_corpus("cli-bad-policy", &spec).expect("tiny spec is schedulable");
    let doc = corpus_to_json(&recorded)
        .to_string()
        .replace("\"CoEfficient\"", "\"NoSuchPolicy\"");
    let path = std::env::temp_dir().join(format!("cli-bad-policy-{SEED}.json"));
    std::fs::write(&path, doc).expect("temp corpus writes");

    let out = experiments(&["golden", "verify", "--corpus", path.to_str().unwrap()]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    let _ = std::fs::remove_file(&path);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert_lists_registry(&stderr, "NoSuchPolicy");
}

fn assert_lists_scenarios(stderr: &str, bad_name: &str) {
    assert!(
        stderr.contains(&format!("unknown scenario \"{bad_name}\"")),
        "diagnostic does not name the offender: {stderr}"
    );
    for name in bench_harness::sweep::scenario_names() {
        assert!(
            stderr.contains(name),
            "diagnostic does not list {name:?}: {stderr}"
        );
    }
}

#[test]
fn sweep_with_an_unknown_scenario_lists_the_valid_names() {
    let out = experiments(&["sweep", "--scenario", "ber11"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert_lists_scenarios(&stderr, "ber11");
}

#[test]
fn chaos_with_an_unknown_scenario_lists_the_valid_names() {
    let out = experiments(&["chaos", "--scenario", "sunny-day"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert_lists_scenarios(&stderr, "sunny-day");
}

#[test]
fn chaos_with_an_unknown_campaign_lists_the_pinned_names() {
    let out = experiments(&["chaos", "--campaign", "earthquake"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(
        stderr.contains("unknown campaign \"earthquake\""),
        "diagnostic does not name the offender: {stderr}"
    );
    for name in bench_harness::chaos::campaign_names() {
        assert!(
            stderr.contains(name),
            "diagnostic does not list {name:?}: {stderr}"
        );
    }
}

fn assert_lists_env_models(stderr: &str) {
    for name in fleet::env_names() {
        assert!(
            stderr.contains(name),
            "diagnostic does not list {name:?}: {stderr}"
        );
    }
}

#[test]
fn fleet_with_an_unknown_env_lists_the_valid_models() {
    let out = experiments(&["fleet", "--env", "parking-lot"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(
        stderr.contains("unknown environment model \"parking-lot\""),
        "diagnostic does not name the offender: {stderr}"
    );
    assert_lists_env_models(&stderr);
}

#[test]
fn fleet_with_zero_vehicles_lists_the_valid_models() {
    let out = experiments(&["fleet", "--vehicles", "0"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(
        stderr.contains("--vehicles >= 1"),
        "diagnostic does not explain the bound: {stderr}"
    );
    assert_lists_env_models(&stderr);
}

#[test]
fn fleet_with_an_unknown_policy_lists_the_registered_names() {
    let out = experiments(&["fleet", "--policy", "bogus"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert_lists_registry(&stderr, "bogus");
}

#[test]
fn every_env_model_is_accepted_by_the_fleet_cli() {
    // Happy path of `--env`: every registered model parses and a tiny
    // fleet completes — keeps the error tests honest against registry
    // typos, like the sweep-side twin below.
    for name in fleet::env_names() {
        let out = experiments(&[
            "fleet",
            "--env",
            name,
            "--vehicles",
            "4",
            "--horizon-ms",
            "5",
        ]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(0), "{name:?} rejected: {stderr}");
    }
}

#[test]
fn backbone_with_an_unknown_topology_lists_the_registered_names() {
    let out = experiments(&["backbone", "--topology", "star-of-death"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(
        stderr.contains("unknown topology \"star-of-death\""),
        "diagnostic does not name the offender: {stderr}"
    );
    for name in backbone::topology::names() {
        assert!(
            stderr.contains(name),
            "diagnostic does not list {name:?}: {stderr}"
        );
    }
}

#[test]
fn backbone_with_an_unknown_reservation_lists_the_registered_names() {
    let out = experiments(&["backbone", "--reservation", "first-come"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(
        stderr.contains("unknown reservation \"first-come\""),
        "diagnostic does not name the offender: {stderr}"
    );
    for name in backbone::reservation::names() {
        assert!(
            stderr.contains(name),
            "diagnostic does not list {name:?}: {stderr}"
        );
    }
}

#[test]
fn every_registered_topology_and_reservation_is_accepted_by_the_backbone_cli() {
    // Happy path of both backbone registries, same spirit as the
    // sweep-side twin: every registered name must parse and complete.
    for topology in backbone::topology::names() {
        for reservation in backbone::reservation::names() {
            let out = experiments(&[
                "backbone",
                "--topology",
                topology,
                "--reservation",
                reservation,
                "--hypercycles",
                "2",
            ]);
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert_eq!(
                out.status.code(),
                Some(0),
                "{topology:?}/{reservation:?} rejected: {stderr}"
            );
        }
    }
}

#[test]
fn every_registered_name_is_accepted_by_the_sweep_cli() {
    // The happy path of the same flag: each registry key parses and the
    // single-cell sweep completes. Keeps the error tests honest — a typo
    // in the registry keys would otherwise pass them vacuously.
    for policy in coefficient::registry::all() {
        let out = experiments(&[
            "sweep",
            "--policy",
            policy.key(),
            "--seeds",
            "1",
            "--horizon-ms",
            "8",
            "--scenario",
            "ber7",
            "--json",
        ]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{:?} rejected: {stderr}",
            policy.key()
        );
    }
}
