//! FlexRay frame format.
//!
//! A frame is 5 header bytes, 0–254 payload bytes (counted in 2-byte
//! words) and a 3-byte trailer CRC:
//!
//! ```text
//! | ind(5) | frame id(11) | length(7) | header CRC(11) | cycle(6) | payload | CRC(24) |
//! ```
//!
//! The five indicator bits are: reserved, payload preamble, null frame,
//! sync frame, startup frame.

use std::fmt;

use crate::channel::ChannelId;
use crate::crc;

/// A validated FlexRay frame identifier (1–2047; 0 is reserved/invalid).
/// The frame ID doubles as the slot number in the static segment and the
/// arbitration priority in the dynamic segment — **lower IDs win**, which
/// is why the paper's dynamic messages carry IDs above the static range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(u16);

impl FrameId {
    /// Largest valid frame id.
    pub const MAX: u16 = 2047;

    /// Creates a validated frame id.
    ///
    /// # Panics
    /// Panics if `id` is 0 or exceeds [`FrameId::MAX`]; use
    /// [`FrameId::try_new`] for fallible construction.
    pub fn new(id: u16) -> Self {
        Self::try_new(id).expect("frame id must be 1–2047")
    }

    /// Fallible constructor: `None` if `id` is 0 or exceeds
    /// [`FrameId::MAX`].
    pub fn try_new(id: u16) -> Option<Self> {
        if (1..=Self::MAX).contains(&id) {
            Some(FrameId(id))
        } else {
            None
        }
    }

    /// The numeric id.
    pub fn get(self) -> u16 {
        self.0
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameHeader {
    /// Payload-preamble indicator (payload begins with a network-management
    /// vector or message id).
    pub payload_preamble: bool,
    /// Null-frame indicator (slot owner transmitted no new data).
    pub null_frame: bool,
    /// Sync-frame indicator (frame participates in clock sync).
    pub sync_frame: bool,
    /// Startup-frame indicator (frame participates in cold start).
    pub startup_frame: bool,
    /// The frame/slot identifier.
    pub frame_id: FrameId,
    /// Payload length in 2-byte words (0–127).
    pub payload_words: u8,
    /// The 11-bit header CRC over (sync, startup, id, length).
    pub header_crc: u16,
    /// Cycle counter value (0–63) stamped at transmission.
    pub cycle_count: u8,
}

impl FrameHeader {
    /// Builds a header, computing the header CRC.
    ///
    /// # Panics
    /// Panics if `payload_words > 127` or `cycle_count > 63`.
    pub fn new(
        frame_id: FrameId,
        payload_words: u8,
        cycle_count: u8,
        sync_frame: bool,
        startup_frame: bool,
    ) -> Self {
        assert!(payload_words <= 127, "payload length field is 7 bits");
        assert!(cycle_count <= 63, "cycle counter is 6 bits");
        let header_crc = Self::compute_crc(frame_id, payload_words, sync_frame, startup_frame);
        FrameHeader {
            payload_preamble: false,
            null_frame: false,
            sync_frame,
            startup_frame,
            frame_id,
            payload_words,
            header_crc,
            cycle_count,
        }
    }

    /// The CRC the header *should* carry given its protected fields.
    pub fn compute_crc(
        frame_id: FrameId,
        payload_words: u8,
        sync_frame: bool,
        startup_frame: bool,
    ) -> u16 {
        let bits = crc::low_bits(u32::from(sync_frame), 1)
            .chain(crc::low_bits(u32::from(startup_frame), 1))
            .chain(crc::low_bits(u32::from(frame_id.get()), 11))
            .chain(crc::low_bits(u32::from(payload_words), 7));
        crc::header_crc(bits)
    }

    /// `true` if the stored header CRC matches the protected fields.
    pub fn crc_valid(&self) -> bool {
        self.header_crc
            == Self::compute_crc(
                self.frame_id,
                self.payload_words,
                self.sync_frame,
                self.startup_frame,
            )
    }

    /// Serializes the 40 header bits, MSB-first.
    pub fn bits(&self) -> Vec<bool> {
        let mut v = Vec::with_capacity(40);
        v.push(false); // reserved bit
        v.push(self.payload_preamble);
        v.push(self.null_frame);
        v.push(self.sync_frame);
        v.push(self.startup_frame);
        v.extend(crc::low_bits(u32::from(self.frame_id.get()), 11));
        v.extend(crc::low_bits(u32::from(self.payload_words), 7));
        v.extend(crc::low_bits(u32::from(self.header_crc), 11));
        v.extend(crc::low_bits(u32::from(self.cycle_count), 6));
        debug_assert_eq!(v.len(), 40);
        v
    }
}

/// A complete FlexRay frame: header, payload and (computed) trailer CRC.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Frame {
    header: FrameHeader,
    payload: Vec<u8>,
}

impl Frame {
    /// Builds a data frame around `payload` (padded to a whole word).
    ///
    /// # Panics
    /// Panics if the payload exceeds 254 bytes or `cycle_count > 63`.
    pub fn new(frame_id: FrameId, mut payload: Vec<u8>, cycle_count: u8) -> Self {
        assert!(payload.len() <= 254, "payload exceeds 254 bytes");
        if payload.len() % 2 == 1 {
            payload.push(0);
        }
        let words = (payload.len() / 2) as u8;
        Frame {
            header: FrameHeader::new(frame_id, words, cycle_count, false, false),
            payload,
        }
    }

    /// Builds a sync/startup frame (used by the clock-sync and startup
    /// machinery).
    pub fn sync_frame(frame_id: FrameId, payload: Vec<u8>, cycle_count: u8) -> Self {
        let mut f = Frame::new(frame_id, payload, cycle_count);
        f.header = FrameHeader::new(frame_id, f.header.payload_words, cycle_count, true, true);
        f
    }

    /// The frame header.
    pub fn header(&self) -> &FrameHeader {
        &self.header
    }

    /// The frame id.
    pub fn id(&self) -> FrameId {
        self.header.frame_id
    }

    /// The payload bytes (always an even count).
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Serializes header + payload bits (the region covered by the frame
    /// CRC), MSB-first.
    pub fn protected_bits(&self) -> Vec<bool> {
        let mut v = self.header.bits();
        v.extend(crc::byte_bits(&self.payload));
        v
    }

    /// The 24-bit frame CRC for transmission on `channel`.
    pub fn frame_crc(&self, channel: ChannelId) -> u32 {
        crc::frame_crc(self.protected_bits(), channel)
    }

    /// Verifies a received `(frame, crc)` pair against `channel`'s init
    /// vector.
    pub fn verify(&self, received_crc: u32, channel: ChannelId) -> bool {
        self.header.crc_valid() && self.frame_crc(channel) == received_crc
    }

    /// Number of frame bytes on the wire (header + payload + trailer).
    pub fn byte_count(&self) -> u64 {
        crate::codec::HEADER_BYTES + self.payload.len() as u64 + crate::codec::TRAILER_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_id_validation() {
        assert!(FrameId::try_new(0).is_none());
        assert!(FrameId::try_new(2048).is_none());
        assert_eq!(FrameId::try_new(1).unwrap().get(), 1);
        assert_eq!(FrameId::new(2047).get(), 2047);
        assert_eq!(FrameId::new(5).to_string(), "#5");
    }

    #[test]
    #[should_panic(expected = "frame id must be")]
    fn frame_id_zero_panics() {
        let _ = FrameId::new(0);
    }

    #[test]
    fn header_crc_roundtrip() {
        let h = FrameHeader::new(FrameId::new(42), 8, 3, false, false);
        assert!(h.crc_valid());
        let mut tampered = h;
        tampered.payload_words = 9;
        assert!(!tampered.crc_valid());
    }

    #[test]
    fn header_bits_are_forty() {
        let h = FrameHeader::new(FrameId::new(2047), 127, 63, true, true);
        let bits = h.bits();
        assert_eq!(bits.len(), 40);
        // Indicators: reserved=0, preamble=0, null=0, sync=1, startup=1.
        assert_eq!(&bits[..5], &[false, false, false, true, true]);
    }

    #[test]
    fn frame_pads_odd_payload() {
        let f = Frame::new(FrameId::new(7), vec![1, 2, 3], 0);
        assert_eq!(f.payload().len(), 4);
        assert_eq!(f.header().payload_words, 2);
        assert_eq!(f.byte_count(), 5 + 4 + 3);
    }

    #[test]
    fn frame_crc_verifies_and_detects_channel_swap() {
        let f = Frame::new(FrameId::new(9), vec![0xAA; 16], 5);
        let crc_a = f.frame_crc(ChannelId::A);
        assert!(f.verify(crc_a, ChannelId::A));
        assert!(
            !f.verify(crc_a, ChannelId::B),
            "cross-channel CRC must fail"
        );
    }

    #[test]
    fn frame_crc_detects_payload_corruption() {
        let f = Frame::new(FrameId::new(9), vec![0u8; 8], 0);
        let crc = f.frame_crc(ChannelId::A);
        let mut corrupted = Frame::new(FrameId::new(9), vec![0u8; 8], 0);
        corrupted.payload[3] ^= 0x10;
        assert_ne!(corrupted.frame_crc(ChannelId::A), crc);
    }

    #[test]
    fn sync_frame_sets_indicators() {
        let f = Frame::sync_frame(FrameId::new(3), vec![0; 2], 1);
        assert!(f.header().sync_frame);
        assert!(f.header().startup_frame);
        assert!(f.header().crc_valid());
    }

    #[test]
    #[should_panic(expected = "exceeds 254")]
    fn oversized_payload_rejected() {
        let _ = Frame::new(FrameId::new(1), vec![0; 255], 0);
    }

    #[test]
    fn cycle_count_in_header() {
        let f = Frame::new(FrameId::new(1), vec![0; 2], 63);
        assert_eq!(f.header().cycle_count, 63);
    }
}
