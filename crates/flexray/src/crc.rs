//! FlexRay CRC codes.
//!
//! FlexRay protects the frame header with an 11-bit CRC (generator
//! `x¹¹+x⁹+x⁸+x⁷+x²+1`, init `0x01A`) and the whole frame with a 24-bit
//! CRC (generator `x²⁴+x²²+x²⁰+x¹⁹+x¹⁸+x¹⁶+x¹⁴+x¹³+x¹¹+x¹⁰+x⁸+x⁷+x⁶+x³+x+1`,
//! init `0xFEDCBA` on channel A and `0xABCDEF` on channel B — the
//! channel-specific init vectors make cross-channel frame confusion
//! detectable).
//!
//! Bits are processed most-significant first, matching the spec's
//! serialization order.

use crate::channel::ChannelId;

/// Generator polynomial of the header CRC (low 11 bits; the implicit x¹¹
/// term is handled by the algorithm).
pub const HEADER_CRC_POLY: u16 = 0x385;
/// Initialization vector of the header CRC.
pub const HEADER_CRC_INIT: u16 = 0x01A;
/// Generator polynomial of the frame CRC (low 24 bits).
pub const FRAME_CRC_POLY: u32 = 0x5D_6DCB;
/// Frame CRC initialization vector for channel A.
pub const FRAME_CRC_INIT_A: u32 = 0xFE_DCBA;
/// Frame CRC initialization vector for channel B.
pub const FRAME_CRC_INIT_B: u32 = 0xAB_CDEF;

/// Computes an `n`-bit CRC (MSB-first) over a bit stream.
///
/// `poly` holds the low `n` bits of the generator; `init` preloads the
/// register. Returns the low `n` bits of the register after all input bits.
fn crc_bits<I: IntoIterator<Item = bool>>(bits: I, n: u32, poly: u32, init: u32) -> u32 {
    let mask: u32 = if n == 32 { u32::MAX } else { (1 << n) - 1 };
    let top: u32 = 1 << (n - 1);
    let mut reg = init & mask;
    for bit in bits {
        let fb = ((reg & top) != 0) ^ bit;
        reg = (reg << 1) & mask;
        if fb {
            reg ^= poly & mask;
        }
    }
    reg
}

/// Computes the 11-bit header CRC over the header's protected bits
/// (sync indicator, startup indicator, 11-bit frame id, 7-bit payload
/// length — 20 bits total), given MSB-first.
pub fn header_crc<I: IntoIterator<Item = bool>>(bits: I) -> u16 {
    crc_bits(
        bits,
        11,
        u32::from(HEADER_CRC_POLY),
        u32::from(HEADER_CRC_INIT),
    ) as u16
}

/// Computes the 24-bit frame CRC over the full frame bits (header +
/// payload), MSB-first, with the init vector of `channel`.
pub fn frame_crc<I: IntoIterator<Item = bool>>(bits: I, channel: ChannelId) -> u32 {
    let init = match channel {
        ChannelId::A => FRAME_CRC_INIT_A,
        ChannelId::B => FRAME_CRC_INIT_B,
    };
    crc_bits(bits, 24, FRAME_CRC_POLY, init)
}

/// Expands bytes to an MSB-first bit iterator (helper for CRC input).
pub fn byte_bits(bytes: &[u8]) -> impl Iterator<Item = bool> + '_ {
    bytes
        .iter()
        .flat_map(|b| (0..8).rev().map(move |i| (b >> i) & 1 == 1))
}

/// Expands the low `n` bits of `v` to an MSB-first bit iterator.
pub fn low_bits(v: u32, n: u32) -> impl Iterator<Item = bool> {
    (0..n).rev().map(move |i| (v >> i) & 1 == 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_crc_is_deterministic_and_pinned() {
        // Pin a regression value: frame id 1, payload length 0, no
        // indicators (20 zero bits except the id's lowest bit).
        let bits: Vec<bool> = low_bits(0, 2) // sync, startup
            .chain(low_bits(1, 11)) // frame id
            .chain(low_bits(0, 7)) // payload length
            .collect();
        let c1 = header_crc(bits.clone());
        let c2 = header_crc(bits);
        assert_eq!(c1, c2);
        assert!(c1 < (1 << 11));
    }

    #[test]
    fn header_crc_detects_single_bit_flips() {
        let base: Vec<bool> = low_bits(0b01, 2)
            .chain(low_bits(0x2A5, 11))
            .chain(low_bits(16, 7))
            .collect();
        let reference = header_crc(base.clone());
        for i in 0..base.len() {
            let mut flipped = base.clone();
            flipped[i] = !flipped[i];
            assert_ne!(header_crc(flipped), reference, "flip at bit {i} undetected");
        }
    }

    #[test]
    fn frame_crc_differs_per_channel() {
        let payload = [0xDEu8, 0xAD, 0xBE, 0xEF];
        let a = frame_crc(byte_bits(&payload), ChannelId::A);
        let b = frame_crc(byte_bits(&payload), ChannelId::B);
        assert_ne!(a, b, "channel-specific init vectors must differ");
        assert!(a < (1 << 24) && b < (1 << 24));
    }

    #[test]
    fn frame_crc_detects_burst_errors_up_to_width() {
        // A CRC of degree 24 detects any burst of ≤ 24 bits.
        let payload = [0x12u8, 0x34, 0x56, 0x78, 0x9A, 0xBC];
        let reference = frame_crc(byte_bits(&payload), ChannelId::A);
        let bits: Vec<bool> = byte_bits(&payload).collect();
        for start in 0..bits.len() - 24 {
            for len in [1usize, 8, 17, 24] {
                let mut corrupted = bits.clone();
                for b in corrupted.iter_mut().skip(start).take(len) {
                    *b = !*b;
                }
                // Only flip if something actually changed (len ≥ 1 always).
                assert_ne!(
                    frame_crc(corrupted, ChannelId::A),
                    reference,
                    "burst start={start} len={len} undetected"
                );
            }
        }
    }

    #[test]
    fn empty_input_returns_init_register() {
        assert_eq!(header_crc(std::iter::empty()), HEADER_CRC_INIT);
        assert_eq!(
            frame_crc(std::iter::empty(), ChannelId::A),
            FRAME_CRC_INIT_A
        );
    }

    #[test]
    fn byte_bits_order_is_msb_first() {
        let bits: Vec<bool> = byte_bits(&[0b1000_0001]).collect();
        assert_eq!(
            bits,
            vec![true, false, false, false, false, false, false, true]
        );
    }

    #[test]
    fn low_bits_width() {
        let bits: Vec<bool> = low_bits(0b101, 3).collect();
        assert_eq!(bits, vec![true, false, true]);
        assert_eq!(low_bits(0xFFFF_FFFF, 4).count(), 4);
    }
}
