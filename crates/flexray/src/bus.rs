//! The dual-channel bus engine.
//!
//! [`BusEngine`] plays out communication cycles at slot/minislot
//! granularity: TDMA in the static segment, FTDMA (minislot counting with
//! `pLatestTx` gating) in the dynamic segment, independently per channel,
//! with BER-driven fault injection on each transmitted frame.
//!
//! Traffic is supplied by a [`TrafficSource`] — either a cluster of
//! [`crate::node::Node`]s (see [`NodeCluster`]) or a scheduler-level
//! implementation such as the CoEfficient/FSPEC runners in the
//! `coefficient` crate. Everything the paper's metrics need (who occupied
//! the bus when, and whether the frame was corrupted) is reported through
//! [`TransmissionOutcome`].

use event_sim::{SimDuration, SimTime};

use observe::{EventKind, Tracer};
use reliability::fault::{FaultProcess, NoFaults};
use reliability::monitor::{HealthState, MonitorConfig, ReliabilityMonitor};

use crate::channel::ChannelId;
use crate::codec::FrameCoding;
use crate::config::ClusterConfig;
use crate::node::Node;
use crate::schedule::MessageId;

/// A payload handed to the engine for transmission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutboundPayload {
    /// Which message is being transmitted.
    pub message: MessageId,
    /// Payload length in bytes (even).
    pub payload_bytes: u16,
    /// When the host produced the message (for latency accounting).
    pub produced_at: SimTime,
}

/// Where in the cycle a transmission happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotLocation {
    /// A static slot (1-based).
    Static {
        /// Slot number.
        slot: u16,
    },
    /// A dynamic slot.
    Dynamic {
        /// The dynamic slot counter value (continues after the static
        /// slots).
        slot_counter: u64,
        /// The minislot index (0-based) at which transmission started.
        minislot: u64,
    },
}

/// The engine's record of one frame transmission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransmissionOutcome {
    /// Communication cycle index (unbounded).
    pub cycle: u64,
    /// Channel the frame went out on.
    pub channel: ChannelId,
    /// Slot/minislot placement.
    pub location: SlotLocation,
    /// The transmitted message.
    pub message: MessageId,
    /// Transmission start instant.
    pub start: SimTime,
    /// Time the frame occupied the wire.
    pub duration: SimDuration,
    /// On-wire length in bits (coding overhead included).
    pub wire_bits: u64,
    /// `true` if fault injection corrupted the frame (receivers observe a
    /// CRC failure).
    pub corrupted: bool,
    /// When the host produced the message.
    pub produced_at: SimTime,
}

impl TransmissionOutcome {
    /// Latency from production to the end of this transmission.
    pub fn latency(&self) -> SimDuration {
        (self.start + self.duration).saturating_duration_since(self.produced_at)
    }
}

/// Supplies frames to the engine, one decision at a time.
///
/// Implementations must be deterministic: the engine polls in a fixed
/// order (cycle → channel A then B → slot order).
pub trait TrafficSource {
    /// The frame to transmit in static `slot` on `channel` during `cycle`
    /// (whose 0–63 counter is `cycle_counter`), or `None` for a null/idle
    /// slot.
    fn static_frame(
        &mut self,
        cycle: u64,
        cycle_counter: u8,
        slot: u16,
        channel: ChannelId,
    ) -> Option<OutboundPayload>;

    /// The frame to transmit in the dynamic slot with counter value
    /// `slot_counter` on `channel`, or `None` to let the minislot pass.
    /// The returned payload must not exceed `max_payload_bytes` (what fits
    /// in the remaining minislots); the engine panics otherwise.
    fn dynamic_frame(
        &mut self,
        cycle: u64,
        channel: ChannelId,
        slot_counter: u64,
        max_payload_bytes: u16,
    ) -> Option<OutboundPayload>;

    /// Notification after every transmission (success or corruption) —
    /// retransmission schemes hook here.
    fn on_outcome(&mut self, outcome: &TransmissionOutcome) {
        let _ = outcome;
    }
}

/// Aggregate per-channel counters maintained by the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Frames transmitted.
    pub frames: u64,
    /// Frames corrupted by fault injection.
    pub corrupted: u64,
    /// Static slots that carried no frame.
    pub idle_static_slots: u64,
    /// Minislots that passed without a transmission.
    pub idle_minislots: u64,
    /// Total wire-busy time (frame bits on the wire).
    pub busy: SimDuration,
    /// Total *allocated* time: occupied static slots count whole (TDMA
    /// reserves the slot regardless of the frame length) and dynamic
    /// transmissions count their consumed minislots. This is the
    /// "bandwidth actually used" of the paper's utilization metric — time
    /// nobody else could have used.
    pub occupied: SimDuration,
}

impl ChannelStats {
    /// Wire-busy fraction of `[0, horizon)`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        assert!(horizon > SimTime::ZERO, "horizon must be positive");
        (self.busy.as_nanos() as f64 / horizon.as_nanos() as f64).min(1.0)
    }

    /// Allocated (slot-granular) fraction of `[0, horizon)`.
    pub fn occupied_utilization(&self, horizon: SimTime) -> f64 {
        assert!(horizon > SimTime::ZERO, "horizon must be positive");
        (self.occupied.as_nanos() as f64 / horizon.as_nanos() as f64).min(1.0)
    }
}

/// The cycle-level dual-channel bus simulator.
pub struct BusEngine {
    config: ClusterConfig,
    coding: FrameCoding,
    /// Bits transferable per minislot, precomputed from the config once —
    /// the dynamic segment consults it every cycle on both channels.
    minislot_bits: u64,
    /// Coded wire bits of a zero-payload dynamic frame (header + trailer
    /// overhead), precomputed from the coding parameters.
    dynamic_overhead_bits: u64,
    faults: [Box<dyn FaultProcess>; 2],
    stats: [ChannelStats; 2],
    /// Optional per-channel reliability monitors, fed each cycle from the
    /// fault processes' counters (see [`with_health_monitoring`]).
    ///
    /// [`with_health_monitoring`]: Self::with_health_monitoring
    monitors: Option<[ReliabilityMonitor; 2]>,
    record: bool,
    outcomes: Vec<TransmissionOutcome>,
    cycles_run: u64,
    tracer: Tracer,
}

impl std::fmt::Debug for BusEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BusEngine")
            .field("config", &self.config)
            .field("cycles_run", &self.cycles_run)
            .field("stats", &self.stats)
            .field("recorded_outcomes", &self.outcomes.len())
            .finish()
    }
}

impl BusEngine {
    /// Creates a fault-free engine.
    pub fn new(config: ClusterConfig) -> Self {
        let coding = FrameCoding::default();
        BusEngine {
            minislot_bits: (config.minislot_duration().as_nanos() as u128
                * config.bit_rate_bps() as u128
                / 1_000_000_000u128) as u64,
            dynamic_overhead_bits: coding.frame_wire_bits(0, true),
            config,
            coding,
            faults: [Box::new(NoFaults::new()), Box::new(NoFaults::new())],
            stats: [ChannelStats::default(), ChannelStats::default()],
            monitors: None,
            record: false,
            outcomes: Vec::new(),
            cycles_run: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Replaces the physical coding parameters.
    pub fn with_coding(mut self, coding: FrameCoding) -> Self {
        self.coding = coding;
        self.dynamic_overhead_bits = coding.frame_wire_bits(0, true);
        self
    }

    /// Installs independent fault processes for channels A and B.
    pub fn with_faults(mut self, a: Box<dyn FaultProcess>, b: Box<dyn FaultProcess>) -> Self {
        self.faults = [a, b];
        self
    }

    /// Enables per-channel health monitoring: each channel's fault
    /// counters feed an independent [`ReliabilityMonitor`] at the end of
    /// every cycle, and [`channel_health`](Self::channel_health) exposes
    /// the resulting [`HealthState`]s. Monitoring never perturbs the
    /// transmission schedule or the fault RNGs, so enabling it does not
    /// change a run's outcomes.
    pub fn with_health_monitoring(mut self, cfg: MonitorConfig) -> Self {
        let mut monitors = [ReliabilityMonitor::new(cfg), ReliabilityMonitor::new(cfg)];
        if self.tracer.is_enabled() {
            for (i, monitor) in monitors.iter_mut().enumerate() {
                monitor.set_tracer(self.tracer.clone(), i as u8);
            }
        }
        self.monitors = Some(monitors);
        self
    }

    /// Attaches a structured event tracer. The engine emits cycle
    /// boundaries, slot/minislot occupancy and fault hits through it,
    /// and hands clones to the per-channel reliability monitors
    /// (scopes 0 and 1) so health transitions are timestamped too.
    /// Tracing observes — it never perturbs the schedule or the fault
    /// RNGs.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        if let Some(monitors) = self.monitors.as_mut() {
            for (i, monitor) in monitors.iter_mut().enumerate() {
                monitor.set_tracer(tracer.clone(), i as u8);
            }
        }
        self.tracer = tracer;
    }

    /// Enables in-memory recording of every [`TransmissionOutcome`]
    /// (disabled by default: long runs produce millions).
    pub fn record_outcomes(&mut self, on: bool) {
        self.record = on;
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Aggregate counters for `channel`.
    pub fn stats(&self, channel: ChannelId) -> &ChannelStats {
        &self.stats[channel.index()]
    }

    /// Injection counters of `channel`'s fault process (frames consulted
    /// and faults injected so far).
    pub fn fault_counters(&self, channel: ChannelId) -> reliability::fault::FaultCounters {
        self.faults[channel.index()].counters()
    }

    /// Campaign-layer counters of `channel`'s fault process, when it is a
    /// scripted [`reliability::campaign::CampaignFaults`] decorator
    /// (`None` for plain stochastic processes).
    pub fn campaign_counters(
        &self,
        channel: ChannelId,
    ) -> Option<reliability::campaign::CampaignCounters> {
        self.faults[channel.index()].campaign_counters()
    }

    /// The health classification of `channel` from its reliability
    /// monitor. Always [`HealthState::Nominal`] when monitoring was not
    /// enabled via [`with_health_monitoring`](Self::with_health_monitoring).
    pub fn channel_health(&self, channel: ChannelId) -> HealthState {
        self.monitors
            .as_ref()
            .map_or(HealthState::Nominal, |m| m[channel.index()].state())
    }

    /// The reliability monitor watching `channel`, if monitoring is
    /// enabled.
    pub fn channel_monitor(&self, channel: ChannelId) -> Option<&ReliabilityMonitor> {
        self.monitors.as_ref().map(|m| &m[channel.index()])
    }

    /// Recorded outcomes (empty unless [`record_outcomes`] was enabled).
    ///
    /// [`record_outcomes`]: Self::record_outcomes
    pub fn outcomes(&self) -> &[TransmissionOutcome] {
        &self.outcomes
    }

    /// Number of cycles simulated so far.
    pub fn cycles_run(&self) -> u64 {
        self.cycles_run
    }

    /// Simulated time elapsed (cycles × cycle duration).
    pub fn elapsed(&self) -> SimTime {
        self.config.cycle_start(self.cycles_run)
    }

    /// Runs one communication cycle, pulling traffic from `source`.
    /// Cycles must be run in order starting from 0.
    ///
    /// # Panics
    /// Panics if `cycle` is not the next cycle, if a static frame exceeds
    /// the slot capacity, or if a dynamic frame exceeds the advertised
    /// maximum.
    pub fn run_cycle(&mut self, cycle: u64, source: &mut dyn TrafficSource) {
        assert_eq!(cycle, self.cycles_run, "cycles must be run in order");
        if self.tracer.is_enabled() {
            self.tracer.emit(
                self.config.cycle_start(cycle),
                EventKind::CycleStart { cycle },
            );
        }
        let cycle_counter = self.config.cycle_counter(cycle);
        // Announce the cycle to both fault processes first: scripted
        // campaigns key their disturbance windows off this clock. A no-op
        // for stochastic processes (no RNG draws, no counter writes).
        for fault in &mut self.faults {
            fault.on_cycle_start(cycle);
        }
        for channel in ChannelId::BOTH {
            self.run_static_segment(cycle, cycle_counter, channel, source);
            self.run_dynamic_segment(cycle, channel, source);
        }
        if let Some(monitors) = self.monitors.as_mut() {
            let cycle_end = self.config.cycle_start(cycle + 1);
            for (i, monitor) in monitors.iter_mut().enumerate() {
                monitor.set_trace_clock(cycle_end);
                let _ = monitor.observe(self.faults[i].counters());
            }
        }
        self.cycles_run += 1;
    }

    fn run_static_segment(
        &mut self,
        cycle: u64,
        cycle_counter: u8,
        channel: ChannelId,
        source: &mut dyn TrafficSource,
    ) {
        let capacity = self.config.static_slot_capacity_bits();
        for slot in 1..=self.config.static_slot_count() {
            let slot_u16 = slot as u16;
            match source.static_frame(cycle, cycle_counter, slot_u16, channel) {
                Some(payload) => {
                    let wire_bits = self
                        .coding
                        .frame_wire_bits(u64::from(payload.payload_bytes), false);
                    assert!(
                        wire_bits <= capacity,
                        "frame of {wire_bits} wire bits exceeds static slot capacity {capacity}"
                    );
                    let start = self.config.static_slot_start(cycle, slot)
                        + self.config.mt(self.config.action_point_offset());
                    let duration = self.config.transmission_duration(wire_bits);
                    let corrupted = self.faults[channel.index()].corrupts(wire_bits as u32);
                    let outcome = TransmissionOutcome {
                        cycle,
                        channel,
                        location: SlotLocation::Static { slot: slot_u16 },
                        message: payload.message,
                        start,
                        duration,
                        wire_bits,
                        corrupted,
                        produced_at: payload.produced_at,
                    };
                    let st = &mut self.stats[channel.index()];
                    st.frames += 1;
                    st.corrupted += u64::from(corrupted);
                    st.busy += duration;
                    st.occupied += self.config.static_slot_duration();
                    if self.tracer.is_enabled() {
                        let ch = channel.index() as u8;
                        self.tracer.emit(
                            start,
                            EventKind::SlotFrame {
                                channel: ch,
                                slot: u64::from(slot_u16),
                                frame_id: u64::from(outcome.message),
                                payload_bits: wire_bits,
                                duration,
                                corrupted,
                            },
                        );
                        if corrupted {
                            self.tracer.emit(
                                start,
                                EventKind::FaultHit {
                                    channel: ch,
                                    frame_id: u64::from(outcome.message),
                                    in_burst: self.faults[channel.index()].in_burst(),
                                },
                            );
                        }
                    }
                    source.on_outcome(&outcome);
                    if self.record {
                        self.outcomes.push(outcome);
                    }
                }
                None => {
                    self.stats[channel.index()].idle_static_slots += 1;
                }
            }
        }
    }

    fn run_dynamic_segment(
        &mut self,
        cycle: u64,
        channel: ChannelId,
        source: &mut dyn TrafficSource,
    ) {
        let n_ms = self.config.minislot_count();
        let latest_tx = self.config.latest_tx();
        let ms_bits = self.minislot_bits;
        let mut ms: u64 = 0;
        let mut slot_counter = self.config.static_slot_count() + 1;
        while ms < n_ms {
            // A transmission may start in this minislot only before
            // pLatestTx; afterwards the remaining minislots tick away empty.
            let max_payload = if ms < latest_tx {
                self.max_dynamic_payload(n_ms - ms, ms_bits)
            } else {
                0
            };
            let frame = if max_payload > 0 {
                source.dynamic_frame(cycle, channel, slot_counter, max_payload)
            } else {
                None
            };
            match frame {
                Some(payload) => {
                    assert!(
                        payload.payload_bytes <= max_payload,
                        "dynamic payload {} exceeds advertised maximum {max_payload}",
                        payload.payload_bytes
                    );
                    let wire_bits = self
                        .coding
                        .frame_wire_bits(u64::from(payload.payload_bytes), true);
                    let used_ms = self.config.minislots_for(wire_bits);
                    debug_assert!(ms + used_ms <= n_ms, "engine sizing is consistent");
                    let start = self.config.cycle_start(cycle) + self.config.minislot_offset(ms);
                    let duration = self.config.transmission_duration(wire_bits);
                    let corrupted = self.faults[channel.index()].corrupts(wire_bits as u32);
                    let outcome = TransmissionOutcome {
                        cycle,
                        channel,
                        location: SlotLocation::Dynamic {
                            slot_counter,
                            minislot: ms,
                        },
                        message: payload.message,
                        start,
                        duration,
                        wire_bits,
                        corrupted,
                        produced_at: payload.produced_at,
                    };
                    let st = &mut self.stats[channel.index()];
                    st.frames += 1;
                    st.corrupted += u64::from(corrupted);
                    st.busy += duration;
                    st.occupied += self.config.minislot_duration() * used_ms;
                    if self.tracer.is_enabled() {
                        let ch = channel.index() as u8;
                        self.tracer.emit(
                            start,
                            EventKind::MinislotFrame {
                                channel: ch,
                                slot_counter,
                                minislot: ms,
                                frame_id: u64::from(outcome.message),
                                payload_bits: wire_bits,
                                duration,
                                corrupted,
                            },
                        );
                        if corrupted {
                            self.tracer.emit(
                                start,
                                EventKind::FaultHit {
                                    channel: ch,
                                    frame_id: u64::from(outcome.message),
                                    in_burst: self.faults[channel.index()].in_burst(),
                                },
                            );
                        }
                    }
                    source.on_outcome(&outcome);
                    if self.record {
                        self.outcomes.push(outcome);
                    }
                    ms += used_ms;
                }
                None => {
                    self.stats[channel.index()].idle_minislots += 1;
                    ms += 1;
                }
            }
            slot_counter += 1;
        }
    }

    /// Largest payload (bytes) whose coded frame fits in `minislots_left`
    /// minislots of `ms_bits` bits each, accounting for the dynamic slot
    /// idle phase and coding overhead.
    fn max_dynamic_payload(&self, minislots_left: u64, ms_bits: u64) -> u16 {
        let idle = self.config.dynamic_slot_idle_phase();
        if minislots_left <= idle {
            return 0;
        }
        let budget_bits = (minislots_left - idle) * ms_bits;
        let overhead = self.dynamic_overhead_bits;
        if budget_bits <= overhead {
            return 0;
        }
        let payload_bits = budget_bits - overhead;
        let bytes = payload_bits / crate::codec::BITS_PER_BYTE_CODED;
        (bytes.min(254) as u16) & !1 // round down to an even byte count
    }
}

/// A cluster of [`Node`]s acting as one [`TrafficSource`]: static slots are
/// answered by the owning node's controller, dynamic slots by polling every
/// node (exactly one can own a frame id at a time on a channel).
#[derive(Debug, Default)]
pub struct NodeCluster {
    nodes: Vec<Node>,
}

impl NodeCluster {
    /// Creates a cluster over `nodes`.
    pub fn new(nodes: Vec<Node>) -> Self {
        NodeCluster { nodes }
    }

    /// The member nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The member nodes, mutably (host-side message production).
    pub fn nodes_mut(&mut self) -> &mut [Node] {
        &mut self.nodes
    }
}

impl TrafficSource for NodeCluster {
    fn static_frame(
        &mut self,
        _cycle: u64,
        cycle_counter: u8,
        slot: u16,
        channel: ChannelId,
    ) -> Option<OutboundPayload> {
        for node in &mut self.nodes {
            if let Some(staged) = node
                .controller_mut()
                .static_frame(cycle_counter, slot, channel)
            {
                return Some(OutboundPayload {
                    message: staged.message,
                    payload_bytes: staged.payload_bytes,
                    produced_at: staged.produced_at,
                });
            }
        }
        None
    }

    fn dynamic_frame(
        &mut self,
        _cycle: u64,
        channel: ChannelId,
        slot_counter: u64,
        max_payload_bytes: u16,
    ) -> Option<OutboundPayload> {
        let Ok(frame_id) = u16::try_from(slot_counter) else {
            return None;
        };
        for node in &mut self.nodes {
            // Only take the frame if it fits; otherwise it waits for the
            // next cycle (its id will match again).
            let fits = node
                .controller()
                .chi()
                .peek_dynamic(channel)
                .map(|r| {
                    r.frame_id.get() == frame_id && r.staged.payload_bytes <= max_payload_bytes
                })
                .unwrap_or(false);
            if !fits {
                continue;
            }
            if let Some(req) = node.controller_mut().dynamic_frame(channel, frame_id) {
                return Some(OutboundPayload {
                    message: req.staged.message,
                    payload_bytes: req.staged.payload_bytes,
                    produced_at: req.staged.produced_at,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelSet;
    use crate::frame::FrameId;
    use crate::node::NodeId;
    use crate::schedule::{ScheduleEntry, ScheduleTable};
    use reliability::fault::BernoulliFaults;
    use reliability::Ber;

    fn config() -> ClusterConfig {
        ClusterConfig::builder()
            .macroticks_per_cycle(1000)
            .static_slots(4, 60)
            .minislots(100, 2)
            .bit_rate(10_000_000)
            .build()
            .unwrap()
    }

    /// A scripted source for engine-level tests.
    #[derive(Debug, Default)]
    struct Script {
        static_payloads: Vec<(u64, u16, ChannelId, OutboundPayload)>,
        dynamic_payloads: Vec<(u64, ChannelId, u64, OutboundPayload)>,
        outcomes: Vec<TransmissionOutcome>,
    }

    impl TrafficSource for Script {
        fn static_frame(
            &mut self,
            cycle: u64,
            _cycle_counter: u8,
            slot: u16,
            channel: ChannelId,
        ) -> Option<OutboundPayload> {
            let idx = self
                .static_payloads
                .iter()
                .position(|(c, s, ch, _)| *c == cycle && *s == slot && *ch == channel)?;
            Some(self.static_payloads.remove(idx).3)
        }

        fn dynamic_frame(
            &mut self,
            cycle: u64,
            channel: ChannelId,
            slot_counter: u64,
            max_payload_bytes: u16,
        ) -> Option<OutboundPayload> {
            let idx = self.dynamic_payloads.iter().position(|(c, ch, sc, p)| {
                *c == cycle
                    && *ch == channel
                    && *sc == slot_counter
                    && p.payload_bytes <= max_payload_bytes
            })?;
            Some(self.dynamic_payloads.remove(idx).3)
        }

        fn on_outcome(&mut self, outcome: &TransmissionOutcome) {
            self.outcomes.push(outcome.clone());
        }
    }

    fn payload(message: MessageId, bytes: u16) -> OutboundPayload {
        OutboundPayload {
            message,
            payload_bytes: bytes,
            produced_at: SimTime::ZERO,
        }
    }

    #[test]
    fn static_transmission_lands_in_its_slot() {
        let mut engine = BusEngine::new(config());
        engine.record_outcomes(true);
        let mut src = Script::default();
        src.static_payloads
            .push((0, 2, ChannelId::A, payload(7, 8)));
        engine.run_cycle(0, &mut src);
        let out = &engine.outcomes()[0];
        assert_eq!(out.message, 7);
        assert_eq!(out.location, SlotLocation::Static { slot: 2 });
        // Slot 2 starts at 60 MT; +1 MT action point.
        assert_eq!(out.start, SimTime::from_micros(61));
        // 8-byte payload → (5+8+3)*10 + 5+1+2 = 168 bits → 16.8 µs.
        assert_eq!(out.wire_bits, 168);
        assert_eq!(out.duration, SimDuration::from_nanos(16_800));
        assert_eq!(engine.stats(ChannelId::A).frames, 1);
        assert_eq!(engine.stats(ChannelId::A).idle_static_slots, 3);
        assert_eq!(engine.stats(ChannelId::B).idle_static_slots, 4);
    }

    #[test]
    fn dynamic_transmission_consumes_minislots() {
        let mut engine = BusEngine::new(config());
        engine.record_outcomes(true);
        let mut src = Script::default();
        // Dynamic slot counter starts at 5 (4 static slots).
        src.dynamic_payloads
            .push((0, ChannelId::A, 7, payload(42, 16)));
        engine.run_cycle(0, &mut src);
        let out = &engine.outcomes()[0];
        match out.location {
            SlotLocation::Dynamic {
                slot_counter,
                minislot,
            } => {
                assert_eq!(slot_counter, 7);
                // Counters 5 and 6 passed as empty minislots 0 and 1.
                assert_eq!(minislot, 2);
            }
            other => panic!("unexpected location {other:?}"),
        }
        // 16-byte payload → (5+16+3)*10 + 5+1+2+2 = 250 bits → 13 minislots
        // of 20 bits + 1 idle phase = 14 minislots consumed.
        assert_eq!(out.wire_bits, 250);
        let st = engine.stats(ChannelId::A);
        assert_eq!(st.frames, 1);
        // 100 minislots total: 2 empty before + 14 used + 84 empty after.
        assert_eq!(st.idle_minislots, 86);
    }

    #[test]
    fn latest_tx_blocks_late_starts() {
        let cfg = ClusterConfig::builder()
            .macroticks_per_cycle(1000)
            .static_slots(4, 60)
            .minislots(100, 2)
            .latest_tx(3)
            .bit_rate(10_000_000)
            .build()
            .unwrap();
        let mut engine = BusEngine::new(cfg);
        engine.record_outcomes(true);
        let mut src = Script::default();
        // Would match at minislot 4 (slot counter 9) — after pLatestTx 3.
        src.dynamic_payloads
            .push((0, ChannelId::A, 9, payload(1, 2)));
        engine.run_cycle(0, &mut src);
        assert!(engine.outcomes().is_empty(), "late start must be blocked");
        assert_eq!(engine.stats(ChannelId::A).frames, 0);
    }

    #[test]
    fn fault_injection_marks_corruption() {
        // BER 0.5: a 100+-bit frame is corrupted essentially always.
        let ber = Ber::new(0.5).unwrap();
        let mut engine = BusEngine::new(config()).with_faults(
            Box::new(BernoulliFaults::new(ber, 1)),
            Box::new(BernoulliFaults::new(ber, 2)),
        );
        engine.record_outcomes(true);
        let mut src = Script::default();
        src.static_payloads
            .push((0, 1, ChannelId::A, payload(1, 8)));
        engine.run_cycle(0, &mut src);
        assert!(engine.outcomes()[0].corrupted);
        assert_eq!(engine.stats(ChannelId::A).corrupted, 1);
    }

    #[test]
    fn channels_are_independent_and_both_polled() {
        let mut engine = BusEngine::new(config());
        engine.record_outcomes(true);
        let mut src = Script::default();
        src.static_payloads
            .push((0, 1, ChannelId::A, payload(1, 2)));
        src.static_payloads
            .push((0, 1, ChannelId::B, payload(2, 2)));
        engine.run_cycle(0, &mut src);
        assert_eq!(engine.outcomes().len(), 2);
        assert_eq!(engine.stats(ChannelId::A).frames, 1);
        assert_eq!(engine.stats(ChannelId::B).frames, 1);
    }

    #[test]
    #[should_panic(expected = "cycles must be run in order")]
    fn out_of_order_cycles_rejected() {
        let mut engine = BusEngine::new(config());
        let mut src = Script::default();
        engine.run_cycle(1, &mut src);
    }

    #[test]
    fn elapsed_tracks_cycles() {
        let mut engine = BusEngine::new(config());
        let mut src = Script::default();
        engine.run_cycle(0, &mut src);
        engine.run_cycle(1, &mut src);
        assert_eq!(engine.cycles_run(), 2);
        assert_eq!(engine.elapsed(), SimTime::from_millis(2));
    }

    #[test]
    fn node_cluster_serves_static_and_dynamic() {
        let me = NodeId::new(0);
        let table = ScheduleTable::new(
            4,
            vec![ScheduleEntry {
                slot: 1,
                base_cycle: 0,
                repetition: 1,
                node: me,
                channels: ChannelSet::AOnly,
                message: 11,
            }],
        )
        .unwrap();
        let mut node = Node::new(me, table);
        node.produce_static(1, 11, 4, SimTime::ZERO);
        node.produce_dynamic(ChannelId::A, FrameId::new(6), 99, 4, SimTime::ZERO);
        let mut cluster = NodeCluster::new(vec![node]);
        let mut engine = BusEngine::new(config());
        engine.record_outcomes(true);
        engine.run_cycle(0, &mut cluster);
        let msgs: Vec<MessageId> = engine.outcomes().iter().map(|o| o.message).collect();
        assert_eq!(msgs, vec![11, 99]);
        match engine.outcomes()[1].location {
            SlotLocation::Dynamic {
                slot_counter,
                minislot,
            } => {
                assert_eq!(slot_counter, 6);
                assert_eq!(minislot, 1);
            }
            _ => panic!("expected dynamic"),
        }
    }

    #[test]
    fn max_dynamic_payload_is_even_and_bounded() {
        let engine = BusEngine::new(config());
        // Full segment: 100 minislots, 1 idle → 99 * 20 = 1980 bits budget;
        // overhead (0-byte payload, dynamic) = 5+1+80+2+2 = 90 → 1890 bits
        // → 189 bytes → floor to even = 188.
        assert_eq!(engine.max_dynamic_payload(100, 20), 188);
        assert_eq!(engine.max_dynamic_payload(1, 20), 0);
        assert_eq!(engine.max_dynamic_payload(0, 20), 0);
        // Huge budget clamps at the 254-byte FlexRay maximum.
        assert_eq!(engine.max_dynamic_payload(10_000, 20), 254);
    }

    /// Fills every static slot on both channels for `cycles` cycles.
    fn saturating_script(cycles: u64) -> Script {
        let mut src = Script::default();
        for cycle in 0..cycles {
            for slot in 1..=4u16 {
                for ch in ChannelId::BOTH {
                    src.static_payloads
                        .push((cycle, slot, ch, payload(u32::from(slot), 8)));
                }
            }
        }
        src
    }

    #[test]
    fn health_monitoring_flags_only_the_sick_channel() {
        // Channel A corrupts every frame, channel B none: the monitors
        // must diverge, and the healthy channel must stay Nominal.
        let ber = Ber::new(0.9).unwrap();
        let mut engine = BusEngine::new(config())
            .with_faults(
                Box::new(BernoulliFaults::new(ber, 1)),
                Box::new(NoFaults::new()),
            )
            .with_health_monitoring(MonitorConfig {
                min_window_frames: 4,
                ..MonitorConfig::default()
            });
        let mut src = saturating_script(8);
        for cycle in 0..8 {
            engine.run_cycle(cycle, &mut src);
        }
        assert_eq!(engine.channel_health(ChannelId::A), HealthState::Storm);
        assert_eq!(engine.channel_health(ChannelId::B), HealthState::Nominal);
        let monitor_a = engine.channel_monitor(ChannelId::A).unwrap();
        assert!(monitor_a.counters().storm_entries >= 1);
        assert!(monitor_a.ewma_fault_rate() > 0.5);
    }

    #[test]
    fn health_monitoring_defaults_to_nominal_when_disabled() {
        let engine = BusEngine::new(config());
        for ch in ChannelId::BOTH {
            assert_eq!(engine.channel_health(ch), HealthState::Nominal);
            assert!(engine.channel_monitor(ch).is_none());
        }
    }

    #[test]
    fn scripted_campaign_runs_on_the_engine_cycle_clock() {
        use reliability::campaign::{CampaignFaults, CampaignSpec, CampaignTarget};
        // Blackout on channel A for cycles 2..4; channel B untouched even
        // though both decorators share the same spec (target filtering).
        let spec = CampaignSpec::new().blackout(CampaignTarget::A, 2, 2);
        let mut engine = BusEngine::new(config()).with_faults(
            Box::new(CampaignFaults::new(Box::new(NoFaults::new()), &spec, 0, 1)),
            Box::new(CampaignFaults::new(Box::new(NoFaults::new()), &spec, 1, 1)),
        );
        let mut src = saturating_script(6);
        for cycle in 0..6 {
            engine.run_cycle(cycle, &mut src);
        }
        // 4 occupied static slots per cycle per channel, 2 blackout cycles.
        assert_eq!(engine.stats(ChannelId::A).corrupted, 8);
        assert_eq!(engine.stats(ChannelId::B).corrupted, 0);
        let a = engine.campaign_counters(ChannelId::A).expect("decorated");
        assert_eq!(a.blackout_faults, 8);
        assert_eq!(a.events_started, 1);
        let b = engine.campaign_counters(ChannelId::B).expect("decorated");
        assert_eq!(b.blackout_faults, 0);
        assert_eq!(b.events_started, 0, "the event never targets B");
        // Plain stochastic processes report no campaign layer.
        assert!(BusEngine::new(config())
            .campaign_counters(ChannelId::A)
            .is_none());
    }

    #[test]
    fn per_channel_fault_counters_merge_to_the_bus_total() {
        let ber = Ber::new(0.3).unwrap();
        let run = |monitored: bool| {
            let mut engine = BusEngine::new(config()).with_faults(
                Box::new(BernoulliFaults::new(ber, 7)),
                Box::new(BernoulliFaults::new(ber, 8)),
            );
            if monitored {
                engine = engine.with_health_monitoring(MonitorConfig::default());
            }
            let mut src = saturating_script(6);
            for cycle in 0..6 {
                engine.run_cycle(cycle, &mut src);
            }
            let a = engine.fault_counters(ChannelId::A);
            let b = engine.fault_counters(ChannelId::B);
            let total = a.merged(b);
            // Every transmitted frame consulted exactly one fault process.
            let frames: u64 = ChannelId::BOTH
                .iter()
                .map(|&c| engine.stats(c).frames)
                .sum();
            let corrupted: u64 = ChannelId::BOTH
                .iter()
                .map(|&c| engine.stats(c).corrupted)
                .sum();
            assert_eq!(total.frames_checked, frames);
            assert_eq!(total.faults_injected, corrupted);
            (a, b)
        };
        // Observation must not perturb the fault processes: replaying with
        // monitoring on reproduces the identical per-channel counters.
        assert_eq!(run(false), run(true));
    }
}
