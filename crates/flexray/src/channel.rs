//! Dual-channel identifiers.

use std::fmt;

/// One of the two FlexRay channels. The dual-channel design (§III-D of the
/// paper) is FlexRay's main hardware reliability feature: a frame may be
/// configured to transmit on channel A, channel B, or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChannelId {
    /// Channel A.
    A,
    /// Channel B.
    B,
}

impl ChannelId {
    /// Both channels, A first.
    pub const BOTH: [ChannelId; 2] = [ChannelId::A, ChannelId::B];

    /// The other channel.
    pub fn other(self) -> ChannelId {
        match self {
            ChannelId::A => ChannelId::B,
            ChannelId::B => ChannelId::A,
        }
    }

    /// Stable index (A = 0, B = 1) for array-backed per-channel state.
    pub fn index(self) -> usize {
        match self {
            ChannelId::A => 0,
            ChannelId::B => 1,
        }
    }

    /// Inverse of [`index`](Self::index).
    ///
    /// # Panics
    /// Panics if `index` is not 0 or 1.
    pub fn from_index(index: usize) -> ChannelId {
        match index {
            0 => ChannelId::A,
            1 => ChannelId::B,
            _ => panic!("channel index {index} out of range"),
        }
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelId::A => write!(f, "A"),
            ChannelId::B => write!(f, "B"),
        }
    }
}

/// The set of channels a frame or node is configured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChannelSet {
    /// Channel A only.
    #[default]
    AOnly,
    /// Channel B only.
    BOnly,
    /// Both channels (redundant transmission).
    Both,
}

impl ChannelSet {
    /// Does the set contain `ch`?
    pub fn contains(self, ch: ChannelId) -> bool {
        matches!(
            (self, ch),
            (ChannelSet::AOnly, ChannelId::A)
                | (ChannelSet::BOnly, ChannelId::B)
                | (ChannelSet::Both, _)
        )
    }

    /// Iterates over the contained channels in A→B order.
    pub fn iter(self) -> impl Iterator<Item = ChannelId> {
        ChannelId::BOTH
            .into_iter()
            .filter(move |&c| self.contains(c))
    }

    /// Builds a set from per-channel flags.
    ///
    /// # Panics
    /// Panics if both flags are false (a frame must use at least one
    /// channel).
    pub fn from_flags(a: bool, b: bool) -> Self {
        match (a, b) {
            (true, true) => ChannelSet::Both,
            (true, false) => ChannelSet::AOnly,
            (false, true) => ChannelSet::BOnly,
            (false, false) => panic!("a channel set must contain at least one channel"),
        }
    }

    /// Number of channels in the set (1 or 2).
    pub fn len(self) -> usize {
        match self {
            ChannelSet::Both => 2,
            _ => 1,
        }
    }

    /// Always `false`; provided for API symmetry with collections.
    pub fn is_empty(self) -> bool {
        false
    }
}

impl fmt::Display for ChannelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelSet::AOnly => write!(f, "A"),
            ChannelSet::BOnly => write!(f, "B"),
            ChannelSet::Both => write!(f, "A+B"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_flips() {
        assert_eq!(ChannelId::A.other(), ChannelId::B);
        assert_eq!(ChannelId::B.other(), ChannelId::A);
        assert_eq!(ChannelId::A.index(), 0);
        assert_eq!(ChannelId::B.index(), 1);
        for ch in ChannelId::BOTH {
            assert_eq!(ChannelId::from_index(ch.index()), ch);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_rejects_out_of_range() {
        let _ = ChannelId::from_index(2);
    }

    #[test]
    fn set_membership() {
        assert!(ChannelSet::AOnly.contains(ChannelId::A));
        assert!(!ChannelSet::AOnly.contains(ChannelId::B));
        assert!(ChannelSet::Both.contains(ChannelId::B));
        assert_eq!(ChannelSet::Both.len(), 2);
        assert_eq!(ChannelSet::BOnly.len(), 1);
    }

    #[test]
    fn iter_yields_in_order() {
        let v: Vec<ChannelId> = ChannelSet::Both.iter().collect();
        assert_eq!(v, vec![ChannelId::A, ChannelId::B]);
        let v: Vec<ChannelId> = ChannelSet::BOnly.iter().collect();
        assert_eq!(v, vec![ChannelId::B]);
    }

    #[test]
    fn from_flags_roundtrip() {
        assert_eq!(ChannelSet::from_flags(true, false), ChannelSet::AOnly);
        assert_eq!(ChannelSet::from_flags(false, true), ChannelSet::BOnly);
        assert_eq!(ChannelSet::from_flags(true, true), ChannelSet::Both);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn empty_set_rejected() {
        let _ = ChannelSet::from_flags(false, false);
    }

    #[test]
    fn display() {
        assert_eq!(ChannelId::A.to_string(), "A");
        assert_eq!(ChannelSet::Both.to_string(), "A+B");
    }
}
