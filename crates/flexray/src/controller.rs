//! The communication controller (CC).
//!
//! The CC executes the protocol on behalf of its node: it maintains one
//! slot counter per channel (§III-D), transmits scheduled static frames
//! from the CHI buffers, and arbitrates dynamic frames by comparing its
//! head-of-queue frame id with the cluster-wide dynamic slot counter.

use crate::channel::ChannelId;
use crate::chi::{Chi, DynamicRequest, StagedMessage};
use crate::node::NodeId;
use crate::schedule::ScheduleTable;

/// A node's communication controller.
#[derive(Debug, Clone)]
pub struct CommunicationController {
    node: NodeId,
    table: ScheduleTable,
    chi: Chi,
    /// `vSlotCounter`, one per channel; reset to 1 at each cycle start.
    slot_counter: [u64; 2],
}

impl CommunicationController {
    /// Creates a controller for `node` acting on its entries of `table`.
    pub fn new(node: NodeId, table: ScheduleTable) -> Self {
        let slots = table.slot_count();
        CommunicationController {
            node,
            table,
            chi: Chi::new(slots),
            slot_counter: [1, 1],
        }
    }

    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The schedule table this controller follows.
    pub fn table(&self) -> &ScheduleTable {
        &self.table
    }

    /// The CHI buffers (host side writes here).
    pub fn chi(&self) -> &Chi {
        &self.chi
    }

    /// The CHI buffers, mutably.
    pub fn chi_mut(&mut self) -> &mut Chi {
        &mut self.chi
    }

    /// Resets both slot counters to 1 (called at each cycle start,
    /// §III-D: "these slot counters have the initial value of 1 at the
    /// beginning of each communication cycle").
    pub fn begin_cycle(&mut self) {
        self.slot_counter = [1, 1];
    }

    /// Advances the slot counter of `channel` (called at the end of each
    /// communication slot) and returns the new value.
    pub fn advance_slot_counter(&mut self, channel: ChannelId) -> u64 {
        self.slot_counter[channel.index()] += 1;
        self.slot_counter[channel.index()]
    }

    /// Current `vSlotCounter` value for `channel`.
    pub fn slot_counter(&self, channel: ChannelId) -> u64 {
        self.slot_counter[channel.index()]
    }

    /// The frame this controller transmits in static `slot` on `channel`
    /// during the cycle with counter `cycle_counter`, if the slot is owned
    /// by this node, active this cycle, and the CHI holds fresh data.
    ///
    /// For entries configured on both channels, the staged message is
    /// consumed when the *last* channel (B) has been served, so a single
    /// staging transmits redundantly on A and B.
    pub fn static_frame(
        &mut self,
        cycle_counter: u8,
        slot: u16,
        channel: ChannelId,
    ) -> Option<StagedMessage> {
        let entry = self.table.lookup(slot, channel, cycle_counter)?;
        if entry.node != self.node {
            return None;
        }
        let consume = match channel {
            ChannelId::A => !entry.channels.contains(ChannelId::B),
            ChannelId::B => true,
        };
        if consume {
            self.chi.take_static(slot)
        } else {
            self.chi.peek_static(slot).cloned()
        }
    }

    /// Dynamic arbitration: if the head of this node's dynamic queue on
    /// `channel` carries exactly `frame_id`, pops and returns it.
    /// (FlexRay lets a node transmit in a dynamic slot only when the
    /// cluster-wide slot counter equals the frame's id.)
    pub fn dynamic_frame(&mut self, channel: ChannelId, frame_id: u16) -> Option<DynamicRequest> {
        let head = self.chi.peek_dynamic(channel)?;
        if head.frame_id.get() == frame_id {
            self.chi.pop_dynamic(channel)
        } else {
            None
        }
    }

    /// The smallest pending dynamic frame id on `channel`, if any — what
    /// the node would transmit next.
    pub fn next_dynamic_id(&self, channel: ChannelId) -> Option<u16> {
        self.chi.peek_dynamic(channel).map(|r| r.frame_id.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelSet;
    use crate::frame::FrameId;
    use crate::schedule::ScheduleEntry;
    use event_sim::SimTime;

    fn entry(slot: u16, node: NodeId, channels: ChannelSet) -> ScheduleEntry {
        ScheduleEntry {
            slot,
            base_cycle: 0,
            repetition: 1,
            node,
            channels,
            message: u32::from(slot),
        }
    }

    fn staged(message: u32) -> StagedMessage {
        StagedMessage {
            message,
            payload_bytes: 4,
            produced_at: SimTime::ZERO,
        }
    }

    #[test]
    fn slot_counters_reset_and_advance() {
        let id = NodeId::new(0);
        let table = ScheduleTable::new(4, vec![entry(1, id, ChannelSet::AOnly)]).unwrap();
        let mut cc = CommunicationController::new(id, table);
        assert_eq!(cc.slot_counter(ChannelId::A), 1);
        assert_eq!(cc.advance_slot_counter(ChannelId::A), 2);
        assert_eq!(cc.slot_counter(ChannelId::B), 1);
        cc.begin_cycle();
        assert_eq!(cc.slot_counter(ChannelId::A), 1);
    }

    #[test]
    fn static_frame_only_in_owned_slots() {
        let me = NodeId::new(0);
        let other = NodeId::new(1);
        let table = ScheduleTable::new(
            4,
            vec![
                entry(1, me, ChannelSet::AOnly),
                entry(2, other, ChannelSet::AOnly),
            ],
        )
        .unwrap();
        let mut cc = CommunicationController::new(me, table);
        cc.chi_mut().write_static(1, staged(10));
        cc.chi_mut().write_static(2, staged(20));
        assert!(cc.static_frame(0, 1, ChannelId::A).is_some());
        // Slot 2 belongs to the other node: this controller stays silent.
        assert!(cc.static_frame(0, 2, ChannelId::A).is_none());
    }

    #[test]
    fn dual_channel_staging_served_on_both() {
        let me = NodeId::new(0);
        let table = ScheduleTable::new(4, vec![entry(1, me, ChannelSet::Both)]).unwrap();
        let mut cc = CommunicationController::new(me, table);
        cc.chi_mut().write_static(1, staged(10));
        let a = cc.static_frame(0, 1, ChannelId::A);
        assert!(a.is_some(), "A sees the staging");
        let b = cc.static_frame(0, 1, ChannelId::B);
        assert!(b.is_some(), "B consumes the staging");
        // Consumed: next cycle has nothing until the host restages.
        assert!(cc.static_frame(0, 1, ChannelId::A).is_none());
    }

    #[test]
    fn empty_buffer_means_null_slot() {
        let me = NodeId::new(0);
        let table = ScheduleTable::new(4, vec![entry(1, me, ChannelSet::AOnly)]).unwrap();
        let mut cc = CommunicationController::new(me, table);
        assert!(cc.static_frame(0, 1, ChannelId::A).is_none());
    }

    #[test]
    fn dynamic_arbitration_matches_frame_id() {
        let me = NodeId::new(0);
        let table = ScheduleTable::new(4, vec![entry(1, me, ChannelSet::AOnly)]).unwrap();
        let mut cc = CommunicationController::new(me, table);
        cc.chi_mut().enqueue_dynamic(
            ChannelId::A,
            DynamicRequest {
                frame_id: FrameId::new(90),
                staged: staged(5),
            },
        );
        assert_eq!(cc.next_dynamic_id(ChannelId::A), Some(90));
        assert!(cc.dynamic_frame(ChannelId::A, 89).is_none());
        assert!(cc.dynamic_frame(ChannelId::A, 90).is_some());
        assert!(cc.dynamic_frame(ChannelId::A, 90).is_none());
    }
}
