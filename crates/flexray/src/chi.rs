//! The Controller–Host Interface (CHI).
//!
//! The CHI is the buffer layer between an ECU's host processor and its
//! communication controller (§II-B): the host writes outgoing messages
//! into it, the controller reads them at transmission time. Static
//! messages live in per-slot buffers; dynamic messages wait in per-channel
//! priority queues ordered by frame id (lower id = higher priority), with
//! FIFO order among messages sharing an id.

use std::collections::VecDeque;

use event_sim::SimTime;

use crate::channel::ChannelId;
use crate::frame::FrameId;
use crate::schedule::MessageId;

/// A message staged for transmission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagedMessage {
    /// Which message this is.
    pub message: MessageId,
    /// Payload length in bytes (even; FlexRay counts 2-byte words).
    pub payload_bytes: u16,
    /// When the host produced it (for latency accounting).
    pub produced_at: SimTime,
}

/// A dynamic-segment transmission request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicRequest {
    /// The frame id to arbitrate with (doubles as priority).
    pub frame_id: FrameId,
    /// The staged message.
    pub staged: StagedMessage,
}

/// The CHI buffer structure of one node.
#[derive(Debug, Clone, Default)]
pub struct Chi {
    /// Static buffers indexed by slot number; `None` = no fresh data (the
    /// controller sends a null frame in owned slots without data).
    static_buffers: Vec<Option<StagedMessage>>,
    /// Per-channel dynamic queues, kept sorted by (frame id, arrival seq).
    dynamic: [VecDeque<(u64, DynamicRequest)>; 2],
    next_seq: u64,
    /// Messages dropped because a static buffer was overwritten before the
    /// controller consumed it (host overruns).
    overwrites: u64,
}

impl Chi {
    /// Creates a CHI with static buffers for slots `1..=slots`.
    pub fn new(slots: u16) -> Self {
        Chi {
            static_buffers: vec![None; usize::from(slots) + 1],
            dynamic: [VecDeque::new(), VecDeque::new()],
            next_seq: 0,
            overwrites: 0,
        }
    }

    /// Host side: stages `msg` for static slot `slot`, replacing any
    /// unconsumed previous content (counted as an overwrite).
    ///
    /// # Panics
    /// Panics if `slot` is 0 or out of range.
    pub fn write_static(&mut self, slot: u16, msg: StagedMessage) {
        let buf = self
            .static_buffers
            .get_mut(usize::from(slot))
            .expect("slot out of range");
        assert!(slot > 0, "slot numbers start at 1");
        if buf.replace(msg).is_some() {
            self.overwrites += 1;
        }
    }

    /// Controller side: consumes the staged message for `slot`, if any.
    pub fn take_static(&mut self, slot: u16) -> Option<StagedMessage> {
        self.static_buffers.get_mut(usize::from(slot))?.take()
    }

    /// Controller side: inspects the staged message for `slot` without
    /// consuming (used for dual-channel transmission of one staging).
    pub fn peek_static(&self, slot: u16) -> Option<&StagedMessage> {
        self.static_buffers.get(usize::from(slot))?.as_ref()
    }

    /// Host side: enqueues a dynamic transmission request on `channel`.
    /// Requests keep priority order by frame id; equal ids stay FIFO.
    pub fn enqueue_dynamic(&mut self, channel: ChannelId, req: DynamicRequest) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let q = &mut self.dynamic[channel.index()];
        // Insert before the first entry with a strictly larger id, after
        // all entries with the same or smaller id (FIFO among equals).
        let pos = q
            .iter()
            .position(|(_, r)| r.frame_id > req.frame_id)
            .unwrap_or(q.len());
        q.insert(pos, (seq, req));
    }

    /// Controller side: the head-of-queue request on `channel`, if any.
    pub fn peek_dynamic(&self, channel: ChannelId) -> Option<&DynamicRequest> {
        self.dynamic[channel.index()].front().map(|(_, r)| r)
    }

    /// Controller side: pops the head-of-queue request on `channel`.
    pub fn pop_dynamic(&mut self, channel: ChannelId) -> Option<DynamicRequest> {
        self.dynamic[channel.index()].pop_front().map(|(_, r)| r)
    }

    /// Number of pending dynamic requests on `channel`.
    pub fn dynamic_len(&self, channel: ChannelId) -> usize {
        self.dynamic[channel.index()].len()
    }

    /// Host overruns observed so far.
    pub fn overwrites(&self) -> u64 {
        self.overwrites
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staged(message: MessageId) -> StagedMessage {
        StagedMessage {
            message,
            payload_bytes: 8,
            produced_at: SimTime::ZERO,
        }
    }

    fn req(id: u16, message: MessageId) -> DynamicRequest {
        DynamicRequest {
            frame_id: FrameId::new(id),
            staged: staged(message),
        }
    }

    #[test]
    fn static_buffer_roundtrip() {
        let mut chi = Chi::new(4);
        chi.write_static(2, staged(7));
        assert_eq!(chi.peek_static(2).unwrap().message, 7);
        assert_eq!(chi.take_static(2).unwrap().message, 7);
        assert!(chi.take_static(2).is_none());
        assert!(chi.peek_static(3).is_none());
    }

    #[test]
    fn overwrite_is_counted() {
        let mut chi = Chi::new(2);
        chi.write_static(1, staged(1));
        chi.write_static(1, staged(2));
        assert_eq!(chi.overwrites(), 1);
        assert_eq!(chi.take_static(1).unwrap().message, 2);
    }

    #[test]
    #[should_panic(expected = "slot out of range")]
    fn out_of_range_slot_rejected() {
        let mut chi = Chi::new(2);
        chi.write_static(3, staged(1));
    }

    #[test]
    fn dynamic_queue_orders_by_frame_id() {
        let mut chi = Chi::new(1);
        chi.enqueue_dynamic(ChannelId::A, req(90, 1));
        chi.enqueue_dynamic(ChannelId::A, req(85, 2));
        chi.enqueue_dynamic(ChannelId::A, req(100, 3));
        assert_eq!(chi.pop_dynamic(ChannelId::A).unwrap().staged.message, 2);
        assert_eq!(chi.pop_dynamic(ChannelId::A).unwrap().staged.message, 1);
        assert_eq!(chi.pop_dynamic(ChannelId::A).unwrap().staged.message, 3);
    }

    #[test]
    fn equal_ids_stay_fifo() {
        let mut chi = Chi::new(1);
        chi.enqueue_dynamic(ChannelId::B, req(90, 1));
        chi.enqueue_dynamic(ChannelId::B, req(90, 2));
        chi.enqueue_dynamic(ChannelId::B, req(90, 3));
        let order: Vec<MessageId> =
            std::iter::from_fn(|| chi.pop_dynamic(ChannelId::B).map(|r| r.staged.message))
                .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn channels_are_independent() {
        let mut chi = Chi::new(1);
        chi.enqueue_dynamic(ChannelId::A, req(90, 1));
        assert_eq!(chi.dynamic_len(ChannelId::A), 1);
        assert_eq!(chi.dynamic_len(ChannelId::B), 0);
        assert!(chi.peek_dynamic(ChannelId::B).is_none());
        assert_eq!(chi.peek_dynamic(ChannelId::A).unwrap().staged.message, 1);
    }
}
