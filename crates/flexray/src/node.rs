//! ECU nodes.
//!
//! A node is a host (application software producing and consuming
//! messages) plus a communication controller, joined by the CHI buffers
//! (§II-B). The [`Node`] type here offers the host-side API; the
//! controller logic lives in [`crate::controller`].

use std::fmt;

use event_sim::SimTime;

use crate::channel::ChannelId;
use crate::chi::{DynamicRequest, StagedMessage};
use crate::controller::CommunicationController;
use crate::frame::FrameId;
use crate::schedule::{MessageId, ScheduleTable};

/// Identifier of an ECU node in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u8);

impl NodeId {
    /// Creates a node id.
    pub const fn new(id: u8) -> Self {
        NodeId(id)
    }

    /// The numeric id.
    pub const fn get(self) -> u8 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// An ECU node: host-side API over a communication controller.
#[derive(Debug, Clone)]
pub struct Node {
    id: NodeId,
    controller: CommunicationController,
}

impl Node {
    /// Creates a node with a controller configured from the cluster-wide
    /// schedule `table` (the controller only acts on entries owned by
    /// `id`).
    pub fn new(id: NodeId, table: ScheduleTable) -> Self {
        Node {
            id,
            controller: CommunicationController::new(id, table),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The communication controller (bus-facing side).
    pub fn controller(&self) -> &CommunicationController {
        &self.controller
    }

    /// The communication controller, mutably.
    pub fn controller_mut(&mut self) -> &mut CommunicationController {
        &mut self.controller
    }

    /// Host API: stages a periodic message for its static slot. The
    /// controller transmits it in the next owned occurrence of `slot`.
    ///
    /// # Panics
    /// Panics if `slot` is out of range for the schedule table.
    pub fn produce_static(
        &mut self,
        slot: u16,
        message: MessageId,
        payload_bytes: u16,
        now: SimTime,
    ) {
        self.controller.chi_mut().write_static(
            slot,
            StagedMessage {
                message,
                payload_bytes,
                produced_at: now,
            },
        );
    }

    /// Host API: submits an event-triggered message for the dynamic
    /// segment of `channel` under `frame_id` (the arbitration priority).
    pub fn produce_dynamic(
        &mut self,
        channel: ChannelId,
        frame_id: FrameId,
        message: MessageId,
        payload_bytes: u16,
        now: SimTime,
    ) {
        self.controller.chi_mut().enqueue_dynamic(
            channel,
            DynamicRequest {
                frame_id,
                staged: StagedMessage {
                    message,
                    payload_bytes,
                    produced_at: now,
                },
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelSet;
    use crate::schedule::ScheduleEntry;

    fn table_for(node: NodeId) -> ScheduleTable {
        ScheduleTable::new(
            4,
            vec![ScheduleEntry {
                slot: 2,
                base_cycle: 0,
                repetition: 1,
                node,
                channels: ChannelSet::Both,
                message: 42,
            }],
        )
        .unwrap()
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId::new(3).to_string(), "E3");
        assert_eq!(NodeId::new(3).get(), 3);
    }

    #[test]
    fn host_staging_reaches_controller() {
        let id = NodeId::new(1);
        let mut n = Node::new(id, table_for(id));
        n.produce_static(2, 42, 8, SimTime::ZERO);
        let frame = n
            .controller_mut()
            .static_frame(0, 2, ChannelId::A)
            .expect("owned slot with data");
        assert_eq!(frame.message, 42);
    }

    #[test]
    fn dynamic_submission_queues() {
        let id = NodeId::new(1);
        let mut n = Node::new(id, table_for(id));
        n.produce_dynamic(ChannelId::A, FrameId::new(90), 7, 4, SimTime::ZERO);
        let got = n
            .controller_mut()
            .dynamic_frame(ChannelId::A, 90)
            .expect("matching frame id");
        assert_eq!(got.staged.message, 7);
    }
}
