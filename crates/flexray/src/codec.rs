//! Physical-layer bit coding and on-wire frame length.
//!
//! FlexRay serializes a frame as:
//!
//! ```text
//! TSS | FSS | (BSS + 8 data bits) × N | FES [| DTS]
//! ```
//!
//! * **TSS** — transmission start sequence, a configurable run of LOW bits
//!   (3–15 bit times; the collision-avoidance preamble);
//! * **FSS** — frame start sequence, 1 bit;
//! * **BSS** — byte start sequence, 2 bits prepended to each of the N
//!   frame bytes (5 header bytes + payload bytes + 3 trailer-CRC bytes);
//! * **FES** — frame end sequence, 2 bits;
//! * **DTS** — dynamic trailing sequence, only on dynamic-segment frames
//!   (stretches the transmission to the next minislot action point; we
//!   account its 2-bit minimum).
//!
//! The on-wire length is what determines how long a frame occupies a slot,
//! which is what every latency/utilization metric in the paper measures.

/// Number of bytes in the serialized frame header (40 header bits).
pub const HEADER_BYTES: u64 = 5;
/// Number of bytes in the serialized trailer (24-bit frame CRC).
pub const TRAILER_BYTES: u64 = 3;
/// Bits on the wire per frame byte (2-bit BSS + 8 data bits).
pub const BITS_PER_BYTE_CODED: u64 = 10;
/// Frame start sequence length in bits.
pub const FSS_BITS: u64 = 1;
/// Frame end sequence length in bits.
pub const FES_BITS: u64 = 2;
/// Minimum dynamic trailing sequence length in bits.
pub const DTS_MIN_BITS: u64 = 2;

/// Physical coding parameters (currently just the TSS length).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameCoding {
    tss_bits: u64,
}

impl Default for FrameCoding {
    fn default() -> Self {
        FrameCoding { tss_bits: 5 }
    }
}

impl FrameCoding {
    /// Creates a coding with the given transmission-start-sequence length.
    ///
    /// # Panics
    /// Panics if `tss_bits` is outside the spec range 3–15.
    pub fn new(tss_bits: u64) -> Self {
        assert!(
            (3..=15).contains(&tss_bits),
            "TSS length must be 3–15 bit times, got {tss_bits}"
        );
        FrameCoding { tss_bits }
    }

    /// The TSS length in bits.
    pub fn tss_bits(&self) -> u64 {
        self.tss_bits
    }

    /// Total on-wire bits of a frame with `payload_bytes` payload bytes.
    /// `dynamic` adds the minimum DTS of dynamic-segment frames.
    pub fn frame_wire_bits(&self, payload_bytes: u64, dynamic: bool) -> u64 {
        let bytes = HEADER_BYTES + payload_bytes + TRAILER_BYTES;
        self.tss_bits
            + FSS_BITS
            + bytes * BITS_PER_BYTE_CODED
            + FES_BITS
            + if dynamic { DTS_MIN_BITS } else { 0 }
    }

    /// On-wire bits for a message of `message_bits` *logical* bits: the
    /// payload is padded to whole 2-byte words (FlexRay payload length is
    /// counted in words).
    pub fn message_wire_bits(&self, message_bits: u64, dynamic: bool) -> u64 {
        self.frame_wire_bits(payload_bytes_for(message_bits), dynamic)
    }
}

/// Payload bytes needed to carry `message_bits` logical bits, padded to a
/// whole number of 2-byte words (0 bits still occupy one word: a FlexRay
/// frame always carries its header, and a null frame has length 0 — we
/// model data frames, which carry at least one word).
pub fn payload_bytes_for(message_bits: u64) -> u64 {
    let bytes = message_bits.div_ceil(8).max(2);
    bytes.div_ceil(2) * 2
}

/// Payload length in 2-byte words (the header's payload-length field).
pub fn payload_words_for(message_bits: u64) -> u64 {
    payload_bytes_for(message_bits) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_padding() {
        assert_eq!(payload_bytes_for(0), 2);
        assert_eq!(payload_bytes_for(1), 2);
        assert_eq!(payload_bytes_for(16), 2);
        assert_eq!(payload_bytes_for(17), 4);
        assert_eq!(payload_bytes_for(1742), 218); // largest BBW message
        assert_eq!(payload_words_for(1742), 109);
    }

    #[test]
    fn wire_bits_formula() {
        let c = FrameCoding::default(); // TSS 5
                                        // 2-byte payload: 5 + 1 + (5+2+3)*10 + 2 = 108 bits.
        assert_eq!(c.frame_wire_bits(2, false), 108);
        assert_eq!(c.frame_wire_bits(2, true), 110);
    }

    #[test]
    fn message_wire_bits_includes_padding() {
        let c = FrameCoding::default();
        // 20 logical bits → 4 payload bytes → 5+1+120+2 = 128.
        assert_eq!(c.message_wire_bits(20, false), 128);
    }

    #[test]
    fn largest_bbw_message_fits_paper_preset_slot() {
        let c = FrameCoding::default();
        let wire = c.message_wire_bits(1742, false);
        // 218 payload bytes → (5+218+3)*10 + 5 + 1 + 2 = 2268 bits.
        assert_eq!(wire, 2268);
        let cfg = crate::config::ClusterConfig::paper_static(80);
        assert!(wire <= cfg.static_slot_capacity_bits());
    }

    #[test]
    fn coding_overhead_grows_linearly() {
        let c = FrameCoding::default();
        let d = c.frame_wire_bits(10, false) - c.frame_wire_bits(8, false);
        assert_eq!(d, 2 * BITS_PER_BYTE_CODED);
    }

    #[test]
    #[should_panic(expected = "TSS length")]
    fn tss_out_of_range_rejected() {
        let _ = FrameCoding::new(16);
    }

    #[test]
    fn custom_tss() {
        assert_eq!(FrameCoding::new(3).tss_bits(), 3);
        assert_eq!(
            FrameCoding::new(15).frame_wire_bits(2, false)
                - FrameCoding::new(3).frame_wire_bits(2, false),
            12
        );
    }
}
