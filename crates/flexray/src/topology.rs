//! Cluster topologies.
//!
//! A FlexRay cluster connects its nodes per channel as a passive bus, an
//! active star, or a hybrid of star couplers bridging bus stubs (§II-B).
//! The topology determines per-pair propagation delay, which bounds the
//! action-point offsets a valid configuration needs; the engine's timing
//! assumes transmissions land within their slot, which
//! [`Topology::max_propagation_delay`] lets configurations check.

use event_sim::SimDuration;

use crate::node::NodeId;

/// Signal propagation speed assumed for cable-length conversion
/// (~0.2 m/ns, typical for automotive twisted pair).
const METERS_PER_NANO: f64 = 0.2;

/// How the nodes of one channel are wired.
#[derive(Debug, Clone, PartialEq)]
pub enum Topology {
    /// A passive linear bus: nodes attach at positions along one cable.
    Bus {
        /// Attachment position of each node along the cable, in meters.
        positions: Vec<(NodeId, f64)>,
    },
    /// An active star: every node connects to a central coupler.
    Star {
        /// Cable length from each node to the coupler, in meters.
        arms: Vec<(NodeId, f64)>,
        /// Processing delay added by the active coupler.
        coupler_delay: SimDuration,
    },
    /// Cascaded stars: two couplers joined by a trunk, each with its own
    /// arms (FlexRay allows up to two cascaded active stars).
    Hybrid {
        /// Arms on the first coupler.
        near: Vec<(NodeId, f64)>,
        /// Arms on the second coupler.
        far: Vec<(NodeId, f64)>,
        /// Trunk length between couplers, in meters.
        trunk: f64,
        /// Per-coupler processing delay.
        coupler_delay: SimDuration,
    },
}

fn cable_delay(meters: f64) -> SimDuration {
    SimDuration::from_nanos((meters / METERS_PER_NANO).round() as u64)
}

impl Topology {
    /// Propagation delay from `from` to `to`, or `None` if either node is
    /// not attached to this channel.
    pub fn propagation_delay(&self, from: NodeId, to: NodeId) -> Option<SimDuration> {
        if from == to {
            return Some(SimDuration::ZERO);
        }
        match self {
            Topology::Bus { positions } => {
                let a = positions.iter().find(|(n, _)| *n == from)?.1;
                let b = positions.iter().find(|(n, _)| *n == to)?.1;
                Some(cable_delay((a - b).abs()))
            }
            Topology::Star {
                arms,
                coupler_delay,
            } => {
                let a = arms.iter().find(|(n, _)| *n == from)?.1;
                let b = arms.iter().find(|(n, _)| *n == to)?.1;
                Some(cable_delay(a) + *coupler_delay + cable_delay(b))
            }
            Topology::Hybrid {
                near,
                far,
                trunk,
                coupler_delay,
            } => {
                let find = |n: NodeId| -> Option<(bool, f64)> {
                    near.iter()
                        .find(|(m, _)| *m == n)
                        .map(|(_, d)| (true, *d))
                        .or_else(|| far.iter().find(|(m, _)| *m == n).map(|(_, d)| (false, *d)))
                };
                let (side_a, da) = find(from)?;
                let (side_b, db) = find(to)?;
                let base = cable_delay(da) + cable_delay(db);
                if side_a == side_b {
                    Some(base + *coupler_delay)
                } else {
                    Some(base + *coupler_delay * 2 + cable_delay(*trunk))
                }
            }
        }
    }

    /// The worst-case pairwise propagation delay, or `None` if fewer than
    /// two nodes are attached.
    pub fn max_propagation_delay(&self) -> Option<SimDuration> {
        let nodes = self.nodes();
        let mut worst: Option<SimDuration> = None;
        for &a in &nodes {
            for &b in &nodes {
                if a == b {
                    continue;
                }
                let d = self.propagation_delay(a, b)?;
                worst = Some(match worst {
                    Some(w) => w.max(d),
                    None => d,
                });
            }
        }
        worst
    }

    /// The attached nodes.
    pub fn nodes(&self) -> Vec<NodeId> {
        match self {
            Topology::Bus { positions } => positions.iter().map(|(n, _)| *n).collect(),
            Topology::Star { arms, .. } => arms.iter().map(|(n, _)| *n).collect(),
            Topology::Hybrid { near, far, .. } => near.iter().chain(far).map(|(n, _)| *n).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u8) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn bus_delay_is_distance() {
        let t = Topology::Bus {
            positions: vec![(n(0), 0.0), (n(1), 4.0), (n(2), 10.0)],
        };
        // 10 m at 0.2 m/ns = 50 ns.
        assert_eq!(
            t.propagation_delay(n(0), n(2)),
            Some(SimDuration::from_nanos(50))
        );
        assert_eq!(
            t.propagation_delay(n(2), n(0)),
            t.propagation_delay(n(0), n(2)),
            "symmetric"
        );
        assert_eq!(t.propagation_delay(n(1), n(1)), Some(SimDuration::ZERO));
        assert_eq!(t.propagation_delay(n(0), n(9)), None);
    }

    #[test]
    fn star_delay_includes_coupler() {
        let t = Topology::Star {
            arms: vec![(n(0), 2.0), (n(1), 4.0)],
            coupler_delay: SimDuration::from_nanos(100),
        };
        // 2 m + 4 m = 30 ns cable + 100 ns coupler.
        assert_eq!(
            t.propagation_delay(n(0), n(1)),
            Some(SimDuration::from_nanos(130))
        );
    }

    #[test]
    fn hybrid_crossing_trunk_pays_two_couplers() {
        let t = Topology::Hybrid {
            near: vec![(n(0), 2.0)],
            far: vec![(n(1), 2.0)],
            trunk: 10.0,
            coupler_delay: SimDuration::from_nanos(100),
        };
        // 2+2 m arms (20 ns) + 10 m trunk (50 ns) + 2×100 ns couplers.
        assert_eq!(
            t.propagation_delay(n(0), n(1)),
            Some(SimDuration::from_nanos(270))
        );
        // Same-side pair pays one coupler.
        let t2 = Topology::Hybrid {
            near: vec![(n(0), 2.0), (n(2), 3.0)],
            far: vec![],
            trunk: 10.0,
            coupler_delay: SimDuration::from_nanos(100),
        };
        assert_eq!(
            t2.propagation_delay(n(0), n(2)),
            Some(SimDuration::from_nanos(125))
        );
    }

    #[test]
    fn max_delay_over_pairs() {
        let t = Topology::Bus {
            positions: vec![(n(0), 0.0), (n(1), 1.0), (n(2), 24.0)],
        };
        assert_eq!(
            t.max_propagation_delay(),
            Some(SimDuration::from_nanos(120))
        );
        let single = Topology::Bus {
            positions: vec![(n(0), 0.0)],
        };
        assert_eq!(single.max_propagation_delay(), None);
    }

    #[test]
    fn nodes_listing() {
        let t = Topology::Hybrid {
            near: vec![(n(0), 1.0)],
            far: vec![(n(1), 1.0), (n(2), 1.0)],
            trunk: 5.0,
            coupler_delay: SimDuration::ZERO,
        };
        assert_eq!(t.nodes(), vec![n(0), n(1), n(2)]);
    }

    #[test]
    fn typical_car_topology_fits_action_point() {
        // A 24 m bus: worst-case 120 ns ≪ the 1-macrotick (1 µs) action
        // point offset the default configuration uses.
        let t = Topology::Bus {
            positions: vec![(n(0), 0.0), (n(1), 24.0)],
        };
        let worst = t.max_propagation_delay().unwrap();
        assert!(worst < SimDuration::from_micros(1));
    }
}
