//! Configuration and protocol error types.

use std::fmt;

/// Errors detected when validating a cluster configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `gdMacrotick` must be positive.
    ZeroMacrotick,
    /// `gMacroPerCycle` must be positive.
    ZeroCycleLength,
    /// `gdStaticSlot` must be positive when static slots exist.
    ZeroStaticSlot,
    /// `gdMinislot` must be positive when minislots exist.
    ZeroMinislot,
    /// A cycle must contain at least one static slot (FlexRay requires a
    /// non-empty static segment for sync frames).
    NoStaticSlots,
    /// The segments (static + dynamic + symbol window + NIT) do not fit in
    /// `gMacroPerCycle` macroticks.
    SegmentsExceedCycle {
        /// Macroticks required by the configured segments.
        required: u64,
        /// Macroticks available per cycle.
        available: u64,
    },
    /// The network idle time is zero — clock correction needs at least one
    /// macrotick.
    NoNetworkIdleTime,
    /// `pLatestTx` exceeds the number of minislots.
    LatestTxOutOfRange {
        /// Configured `pLatestTx`.
        latest_tx: u64,
        /// Configured number of minislots.
        minislots: u64,
    },
    /// Bit rate must be positive.
    ZeroBitRate,
    /// The action point offset must be smaller than the slot it offsets
    /// into.
    ActionPointTooLarge,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroMacrotick => write!(f, "gdMacrotick must be positive"),
            ConfigError::ZeroCycleLength => write!(f, "gMacroPerCycle must be positive"),
            ConfigError::ZeroStaticSlot => write!(f, "gdStaticSlot must be positive"),
            ConfigError::ZeroMinislot => write!(f, "gdMinislot must be positive"),
            ConfigError::NoStaticSlots => write!(f, "at least one static slot is required"),
            ConfigError::SegmentsExceedCycle {
                required,
                available,
            } => write!(
                f,
                "segments need {required} macroticks but the cycle has only {available}"
            ),
            ConfigError::NoNetworkIdleTime => {
                write!(f, "network idle time must be at least one macrotick")
            }
            ConfigError::LatestTxOutOfRange {
                latest_tx,
                minislots,
            } => write!(
                f,
                "pLatestTx ({latest_tx}) exceeds the number of minislots ({minislots})"
            ),
            ConfigError::ZeroBitRate => write!(f, "bit rate must be positive"),
            ConfigError::ActionPointTooLarge => {
                write!(f, "action point offset must fit inside the slot")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = ConfigError::SegmentsExceedCycle {
            required: 6000,
            available: 5000,
        };
        let s = e.to_string();
        assert!(s.contains("6000") && s.contains("5000"));
        assert!(ConfigError::NoStaticSlots.to_string().contains("static"));
    }
}
