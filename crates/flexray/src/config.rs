//! Cluster-wide FlexRay protocol configuration.
//!
//! Parameter names follow the FlexRay 2.1 specification (`gd*` = global
//! duration, `g*` = global count, `p*` = node parameter hoisted to the
//! cluster for simulation convenience). All durations derive from the
//! macrotick, the cluster-wide time base (1 µs in the paper's setup).
//!
//! A communication cycle is partitioned, in order, into:
//!
//! ```text
//! | static segment | dynamic segment | symbol window | NIT |
//! ```
//!
//! where the static segment holds `gNumberOfStaticSlots` equal slots of
//! `gdStaticSlot` macroticks, the dynamic segment holds
//! `gNumberOfMinislots` minislots of `gdMinislot` macroticks, and the
//! network idle time (NIT) absorbs clock correction.

use event_sim::{SimDuration, SimTime};

use crate::error::ConfigError;

/// The number of cycles after which the cycle counter wraps (FlexRay fixes
/// this at 64: cycle counter values are 0–63).
pub const CYCLE_COUNT_MAX: u64 = 64;

/// Validated cluster configuration. Construct through
/// [`ClusterConfig::builder`] or a preset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    gd_macrotick: SimDuration,
    g_macro_per_cycle: u64,
    g_number_of_static_slots: u64,
    gd_static_slot: u64,
    g_number_of_minislots: u64,
    gd_minislot: u64,
    gd_symbol_window: u64,
    gd_action_point_offset: u64,
    gd_minislot_action_point_offset: u64,
    gd_dynamic_slot_idle_phase: u64,
    p_latest_tx: u64,
    bit_rate_bps: u64,
}

/// Incremental builder for [`ClusterConfig`]; see the crate-level example.
#[derive(Debug, Clone)]
pub struct ClusterConfigBuilder {
    gd_macrotick: SimDuration,
    g_macro_per_cycle: u64,
    g_number_of_static_slots: u64,
    gd_static_slot: u64,
    g_number_of_minislots: u64,
    gd_minislot: u64,
    gd_symbol_window: u64,
    gd_action_point_offset: u64,
    gd_minislot_action_point_offset: u64,
    gd_dynamic_slot_idle_phase: u64,
    p_latest_tx: Option<u64>,
    bit_rate_bps: u64,
}

impl Default for ClusterConfigBuilder {
    fn default() -> Self {
        ClusterConfigBuilder {
            gd_macrotick: SimDuration::from_micros(1),
            g_macro_per_cycle: 5000,
            g_number_of_static_slots: 80,
            gd_static_slot: 40,
            g_number_of_minislots: 120,
            gd_minislot: 2,
            gd_symbol_window: 0,
            gd_action_point_offset: 1,
            gd_minislot_action_point_offset: 1,
            gd_dynamic_slot_idle_phase: 1,
            p_latest_tx: None,
            bit_rate_bps: 10_000_000,
        }
    }
}

impl ClusterConfigBuilder {
    /// Sets the macrotick duration (default 1 µs).
    pub fn macrotick(&mut self, d: SimDuration) -> &mut Self {
        self.gd_macrotick = d;
        self
    }

    /// Sets `gMacroPerCycle`, the cycle length in macroticks.
    pub fn macroticks_per_cycle(&mut self, mt: u64) -> &mut Self {
        self.g_macro_per_cycle = mt;
        self
    }

    /// Sets `gNumberOfStaticSlots` and `gdStaticSlot` (macroticks).
    pub fn static_slots(&mut self, count: u64, slot_macroticks: u64) -> &mut Self {
        self.g_number_of_static_slots = count;
        self.gd_static_slot = slot_macroticks;
        self
    }

    /// Sets `gNumberOfMinislots` and `gdMinislot` (macroticks).
    pub fn minislots(&mut self, count: u64, minislot_macroticks: u64) -> &mut Self {
        self.g_number_of_minislots = count;
        self.gd_minislot = minislot_macroticks;
        self
    }

    /// Sets `gdSymbolWindow` (macroticks; default 0).
    pub fn symbol_window(&mut self, mt: u64) -> &mut Self {
        self.gd_symbol_window = mt;
        self
    }

    /// Sets `gdActionPointOffset` (macroticks into each static slot before
    /// transmission starts; default 1).
    pub fn action_point_offset(&mut self, mt: u64) -> &mut Self {
        self.gd_action_point_offset = mt;
        self
    }

    /// Sets `gdMinislotActionPointOffset` (macroticks; default 1).
    pub fn minislot_action_point_offset(&mut self, mt: u64) -> &mut Self {
        self.gd_minislot_action_point_offset = mt;
        self
    }

    /// Sets `gdDynamicSlotIdlePhase` (minislots; default 1).
    pub fn dynamic_slot_idle_phase(&mut self, minislots: u64) -> &mut Self {
        self.gd_dynamic_slot_idle_phase = minislots;
        self
    }

    /// Sets `pLatestTx`: the last minislot in which a dynamic transmission
    /// may still *start*. Defaults to the number of minislots (no extra
    /// restriction beyond fitting the segment).
    pub fn latest_tx(&mut self, minislot: u64) -> &mut Self {
        self.p_latest_tx = Some(minislot);
        self
    }

    /// Sets the channel bit rate in bits per second (default 10 Mbit/s).
    pub fn bit_rate(&mut self, bps: u64) -> &mut Self {
        self.bit_rate_bps = bps;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    /// A [`ConfigError`] describing the first violated constraint.
    pub fn build(&self) -> Result<ClusterConfig, ConfigError> {
        if self.gd_macrotick.is_zero() {
            return Err(ConfigError::ZeroMacrotick);
        }
        if self.g_macro_per_cycle == 0 {
            return Err(ConfigError::ZeroCycleLength);
        }
        if self.g_number_of_static_slots == 0 {
            return Err(ConfigError::NoStaticSlots);
        }
        if self.gd_static_slot == 0 {
            return Err(ConfigError::ZeroStaticSlot);
        }
        if self.g_number_of_minislots > 0 && self.gd_minislot == 0 {
            return Err(ConfigError::ZeroMinislot);
        }
        if self.bit_rate_bps == 0 {
            return Err(ConfigError::ZeroBitRate);
        }
        if 2 * self.gd_action_point_offset >= self.gd_static_slot {
            return Err(ConfigError::ActionPointTooLarge);
        }
        if self.g_number_of_minislots > 0
            && self.gd_minislot_action_point_offset >= self.gd_minislot
        {
            return Err(ConfigError::ActionPointTooLarge);
        }
        let static_mt = self.g_number_of_static_slots * self.gd_static_slot;
        let dynamic_mt = self.g_number_of_minislots * self.gd_minislot;
        let required = static_mt + dynamic_mt + self.gd_symbol_window;
        if required >= self.g_macro_per_cycle {
            // `>=` not `>`: the NIT needs at least one macrotick.
            if required > self.g_macro_per_cycle {
                return Err(ConfigError::SegmentsExceedCycle {
                    required,
                    available: self.g_macro_per_cycle,
                });
            }
            return Err(ConfigError::NoNetworkIdleTime);
        }
        let p_latest_tx = self.p_latest_tx.unwrap_or(self.g_number_of_minislots);
        if p_latest_tx > self.g_number_of_minislots {
            return Err(ConfigError::LatestTxOutOfRange {
                latest_tx: p_latest_tx,
                minislots: self.g_number_of_minislots,
            });
        }
        Ok(ClusterConfig {
            gd_macrotick: self.gd_macrotick,
            g_macro_per_cycle: self.g_macro_per_cycle,
            g_number_of_static_slots: self.g_number_of_static_slots,
            gd_static_slot: self.gd_static_slot,
            g_number_of_minislots: self.g_number_of_minislots,
            gd_minislot: self.gd_minislot,
            gd_symbol_window: self.gd_symbol_window,
            gd_action_point_offset: self.gd_action_point_offset,
            gd_minislot_action_point_offset: self.gd_minislot_action_point_offset,
            gd_dynamic_slot_idle_phase: self.gd_dynamic_slot_idle_phase,
            p_latest_tx,
            bit_rate_bps: self.bit_rate_bps,
        })
    }
}

impl ClusterConfig {
    /// Starts building a configuration from the defaults (the paper's 5 ms
    /// cycle with 80 static slots of 40 macroticks and 120 minislots).
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder::default()
    }

    /// The paper's *static-segment* experiment geometry (§IV-A): 1 µs
    /// macrotick, `gdCycle` = 5000 µs, `gdStaticSlot` = 40 macroticks,
    /// `gNumberOfStaticSlots` = 80 or 120, minislots of 2 macroticks
    /// filling part of the remainder.
    ///
    /// The simulated bit rate is 80 Mbit/s rather than FlexRay's physical
    /// 10 Mbit/s: the paper's message tables contain frames up to 1742 bits
    /// which cannot fit a 40-macrotick slot at 10 Mbit/s; raising the
    /// simulated rate preserves the paper's timing geometry (the quantity
    /// every reported metric depends on). See DESIGN.md §5.
    ///
    /// # Panics
    /// Panics if `static_slots` makes the layout infeasible (the paper
    /// values 80 and 120 are always valid).
    pub fn paper_static(static_slots: u64) -> ClusterConfig {
        let static_mt = static_slots * 40;
        let remaining = 5000u64
            .checked_sub(static_mt)
            .expect("static segment exceeds the 5 ms cycle");
        // The paper's default dynamic segment is 120 minislots
        // (`gNumberOfMinislots`); larger static configurations shrink it
        // (the 120-slot runs "incur more idle slots and decrease the
        // bandwidth utilization", §IV-B.1). At least 20 macroticks stay
        // for the NIT.
        let minislots = 120.min(remaining.saturating_sub(20) / 2);
        assert!(minislots > 0, "no room for a dynamic segment");
        ClusterConfig::builder()
            .macroticks_per_cycle(5000)
            .static_slots(static_slots, 40)
            .minislots(minislots, 2)
            .bit_rate(80_000_000)
            .build()
            .expect("paper static preset must be valid")
    }

    /// The paper's *mixed* experiment geometry (Figures 3–5): the 5 ms
    /// cycle with 80 static slots and a configurable dynamic segment of
    /// 25–100 minislots — the range the utilization, latency and
    /// miss-ratio sweeps cover. The SAE aperiodic set's frame ids 81–110
    /// sit directly above the 80 static slots, so the number of minislots
    /// directly limits how many of them the slot counter can reach per
    /// cycle.
    ///
    /// # Panics
    /// Panics if the layout is infeasible (the paper's 25–100 range is
    /// always valid).
    pub fn paper_mixed(minislots: u64) -> ClusterConfig {
        ClusterConfig::builder()
            .macroticks_per_cycle(5000)
            .static_slots(80, 40)
            .minislots(minislots, 2)
            .bit_rate(80_000_000)
            .build()
            .expect("paper mixed preset must be valid")
    }

    /// A compact 1 ms-cycle geometry (18 static slots of 40 macroticks,
    /// 0.75 ms static segment incl. NIT share, configurable minislots) —
    /// handy for fast unit tests and examples.
    ///
    /// # Panics
    /// Panics if `minislots` does not fit the cycle (valid for 1–100).
    pub fn paper_dynamic(minislots: u64) -> ClusterConfig {
        // 750 MT static segment: 18 slots of 40 MT = 720, plus action
        // points the slots already include; the remaining 30 MT join the NIT.
        ClusterConfig::builder()
            .macroticks_per_cycle(1000)
            .static_slots(18, 40)
            .minislots(minislots, 2)
            .bit_rate(80_000_000)
            .build()
            .expect("paper dynamic preset must be valid")
    }

    // ----- raw parameters -----

    /// Macrotick duration (`gdMacrotick`).
    pub fn macrotick(&self) -> SimDuration {
        self.gd_macrotick
    }

    /// Cycle length in macroticks (`gMacroPerCycle`).
    pub fn macroticks_per_cycle(&self) -> u64 {
        self.g_macro_per_cycle
    }

    /// Number of static slots (`gNumberOfStaticSlots`).
    pub fn static_slot_count(&self) -> u64 {
        self.g_number_of_static_slots
    }

    /// Static slot length in macroticks (`gdStaticSlot`).
    pub fn static_slot_macroticks(&self) -> u64 {
        self.gd_static_slot
    }

    /// Number of minislots (`gNumberOfMinislots`).
    pub fn minislot_count(&self) -> u64 {
        self.g_number_of_minislots
    }

    /// Minislot length in macroticks (`gdMinislot`).
    pub fn minislot_macroticks(&self) -> u64 {
        self.gd_minislot
    }

    /// `gdDynamicSlotIdlePhase` in minislots.
    pub fn dynamic_slot_idle_phase(&self) -> u64 {
        self.gd_dynamic_slot_idle_phase
    }

    /// `pLatestTx`: last minislot in which a dynamic transmission may
    /// start (1-based count; a value of `n` allows starts in minislots
    /// `0..n`).
    pub fn latest_tx(&self) -> u64 {
        self.p_latest_tx
    }

    /// Channel bit rate in bits per second.
    pub fn bit_rate_bps(&self) -> u64 {
        self.bit_rate_bps
    }

    /// `gdActionPointOffset` in macroticks.
    pub fn action_point_offset(&self) -> u64 {
        self.gd_action_point_offset
    }

    // ----- derived timing -----

    /// Duration of `mt` macroticks.
    pub fn mt(&self, mt: u64) -> SimDuration {
        self.gd_macrotick * mt
    }

    /// Duration of one communication cycle (`gdCycle`).
    pub fn cycle_duration(&self) -> SimDuration {
        self.mt(self.g_macro_per_cycle)
    }

    /// Duration of the static segment.
    pub fn static_segment_duration(&self) -> SimDuration {
        self.mt(self.g_number_of_static_slots * self.gd_static_slot)
    }

    /// Duration of the dynamic segment.
    pub fn dynamic_segment_duration(&self) -> SimDuration {
        self.mt(self.g_number_of_minislots * self.gd_minislot)
    }

    /// Duration of the symbol window.
    pub fn symbol_window_duration(&self) -> SimDuration {
        self.mt(self.gd_symbol_window)
    }

    /// Duration of the network idle time.
    pub fn nit_duration(&self) -> SimDuration {
        self.cycle_duration()
            - self.static_segment_duration()
            - self.dynamic_segment_duration()
            - self.symbol_window_duration()
    }

    /// Duration of one static slot.
    pub fn static_slot_duration(&self) -> SimDuration {
        self.mt(self.gd_static_slot)
    }

    /// Duration of one minislot.
    pub fn minislot_duration(&self) -> SimDuration {
        self.mt(self.gd_minislot)
    }

    /// Start instant of communication cycle `cycle` (0-based, unbounded —
    /// the 64-cycle counter wraps but time does not).
    pub fn cycle_start(&self, cycle: u64) -> SimTime {
        SimTime::ZERO + self.cycle_duration() * cycle
    }

    /// The 0–63 cycle-counter value of cycle `cycle`.
    pub fn cycle_counter(&self, cycle: u64) -> u8 {
        (cycle % CYCLE_COUNT_MAX) as u8
    }

    /// Offset of static slot `slot` (1-based, per FlexRay convention) from
    /// the cycle start.
    ///
    /// # Panics
    /// Panics if `slot` is 0 or exceeds the static slot count.
    pub fn static_slot_offset(&self, slot: u64) -> SimDuration {
        assert!(
            slot >= 1 && slot <= self.g_number_of_static_slots,
            "static slot {slot} out of range 1..={}",
            self.g_number_of_static_slots
        );
        self.mt((slot - 1) * self.gd_static_slot)
    }

    /// Absolute start instant of static slot `slot` in cycle `cycle`.
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    pub fn static_slot_start(&self, cycle: u64, slot: u64) -> SimTime {
        self.cycle_start(cycle) + self.static_slot_offset(slot)
    }

    /// Offset of the start of the dynamic segment from the cycle start.
    pub fn dynamic_segment_offset(&self) -> SimDuration {
        self.static_segment_duration()
    }

    /// Offset of minislot `ms` (0-based) from the cycle start.
    ///
    /// # Panics
    /// Panics if `ms` is out of range.
    pub fn minislot_offset(&self, ms: u64) -> SimDuration {
        assert!(
            ms < self.g_number_of_minislots,
            "minislot {ms} out of range 0..{}",
            self.g_number_of_minislots
        );
        self.dynamic_segment_offset() + self.mt(ms * self.gd_minislot)
    }

    /// The communication cycle containing instant `t`.
    pub fn cycle_of(&self, t: SimTime) -> u64 {
        t.as_nanos() / self.cycle_duration().as_nanos()
    }

    /// The hypercycle of this cluster against a second periodic schedule:
    /// the least common multiple of the communication cycle and `base` —
    /// the shortest span after which both schedules realign. A
    /// time-triggered Ethernet backbone reserving gate windows per `base`
    /// period repeats its whole gate-control list once per hypercycle.
    ///
    /// # Panics
    /// Panics if `base` is zero or the LCM overflows `u64` nanoseconds.
    pub fn hypercycle(&self, base: SimDuration) -> SimDuration {
        let a = self.cycle_duration().as_nanos();
        let b = base.as_nanos();
        assert!(b > 0, "base period must be positive");
        fn gcd(mut a: u64, mut b: u64) -> u64 {
            while b != 0 {
                (a, b) = (b, a % b);
            }
            a
        }
        let lcm = (a / gcd(a, b))
            .checked_mul(b)
            .expect("hypercycle overflows u64 nanoseconds");
        SimDuration::from_nanos(lcm)
    }

    // ----- capacity -----

    /// Bits transmittable per macrotick at the configured rate.
    pub fn bits_per_macrotick(&self) -> f64 {
        self.bit_rate_bps as f64 * self.gd_macrotick.as_nanos() as f64 / 1e9
    }

    /// How long `bits` bits occupy the wire at the configured rate
    /// (rounded up to whole nanoseconds).
    pub fn transmission_duration(&self, bits: u64) -> SimDuration {
        let ns = (bits as u128 * 1_000_000_000u128).div_ceil(self.bit_rate_bps as u128);
        SimDuration::from_nanos(ns as u64)
    }

    /// The on-wire bit capacity of a static slot, after subtracting the
    /// action-point offsets at both ends.
    pub fn static_slot_capacity_bits(&self) -> u64 {
        let usable_mt = self.gd_static_slot - 2 * self.gd_action_point_offset;
        (self.mt(usable_mt).as_nanos() as u128 * self.bit_rate_bps as u128 / 1_000_000_000u128)
            as u64
    }

    /// The number of minislots a dynamic transmission of `bits` bits
    /// occupies (rounded up; at least one), including the dynamic slot idle
    /// phase.
    pub fn minislots_for(&self, bits: u64) -> u64 {
        let ms_bits = (self.minislot_duration().as_nanos() as u128 * self.bit_rate_bps as u128
            / 1_000_000_000u128) as u64;
        let needed = bits.div_ceil(ms_bits.max(1)).max(1);
        needed + self.gd_dynamic_slot_idle_phase
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClusterConfig {
        ClusterConfig::builder().build().unwrap()
    }

    #[test]
    fn default_geometry_adds_up() {
        let c = cfg();
        assert_eq!(c.cycle_duration(), SimDuration::from_micros(5000));
        assert_eq!(c.static_segment_duration(), SimDuration::from_micros(3200));
        assert_eq!(c.dynamic_segment_duration(), SimDuration::from_micros(240));
        assert_eq!(
            c.nit_duration(),
            SimDuration::from_micros(5000 - 3200 - 240)
        );
    }

    #[test]
    fn slot_offsets() {
        let c = cfg();
        assert_eq!(c.static_slot_offset(1), SimDuration::ZERO);
        assert_eq!(c.static_slot_offset(2), SimDuration::from_micros(40));
        assert_eq!(c.static_slot_start(2, 1), SimTime::from_micros(10_000));
        assert_eq!(c.minislot_offset(0), SimDuration::from_micros(3200));
        assert_eq!(c.minislot_offset(3), SimDuration::from_micros(3206));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_zero_rejected() {
        let _ = cfg().static_slot_offset(0);
    }

    #[test]
    fn cycle_mapping() {
        let c = cfg();
        assert_eq!(c.cycle_of(SimTime::from_micros(4_999)), 0);
        assert_eq!(c.cycle_of(SimTime::from_micros(5_000)), 1);
        assert_eq!(c.cycle_counter(63), 63);
        assert_eq!(c.cycle_counter(64), 0);
        assert_eq!(c.cycle_start(3), SimTime::from_micros(15_000));
    }

    #[test]
    fn validation_errors() {
        use crate::error::ConfigError::*;
        let mut b = ClusterConfig::builder();
        b.macroticks_per_cycle(100);
        assert_eq!(
            b.build().unwrap_err(),
            SegmentsExceedCycle {
                required: 3440,
                available: 100
            }
        );

        let mut b = ClusterConfig::builder();
        b.static_slots(0, 40);
        assert_eq!(b.build().unwrap_err(), NoStaticSlots);

        let mut b = ClusterConfig::builder();
        b.static_slots(80, 40).minislots(901, 2);
        assert_eq!(
            b.build().unwrap_err(),
            SegmentsExceedCycle {
                required: 5002,
                available: 5000
            }
        );
        // Exactly filling the cycle leaves no NIT.
        let mut b = ClusterConfig::builder();
        b.static_slots(80, 40).minislots(900, 2);
        assert_eq!(b.build().unwrap_err(), NoNetworkIdleTime);

        let mut b = ClusterConfig::builder();
        b.latest_tx(500);
        assert_eq!(
            b.build().unwrap_err(),
            LatestTxOutOfRange {
                latest_tx: 500,
                minislots: 120
            }
        );

        let mut b = ClusterConfig::builder();
        b.action_point_offset(20);
        assert_eq!(b.build().unwrap_err(), ActionPointTooLarge);

        let mut b = ClusterConfig::builder();
        b.bit_rate(0);
        assert_eq!(b.build().unwrap_err(), ZeroBitRate);
    }

    #[test]
    fn paper_presets_are_valid() {
        for slots in [80, 120] {
            let c = ClusterConfig::paper_static(slots);
            assert_eq!(c.static_slot_count(), slots);
            assert_eq!(c.cycle_duration(), SimDuration::from_millis(5));
            assert!(c.nit_duration() > SimDuration::ZERO);
        }
        for ms in [25, 50, 75, 100] {
            let c = ClusterConfig::paper_dynamic(ms);
            assert_eq!(c.minislot_count(), ms);
            assert_eq!(c.cycle_duration(), SimDuration::from_millis(1));
        }
    }

    #[test]
    fn capacity_calculations() {
        let c = cfg(); // 10 Mbit/s, 1 µs MT → 10 bits/MT.
        assert!((c.bits_per_macrotick() - 10.0).abs() < 1e-9);
        // 40 MT slot minus 2 action-point MT → 38 µs → 380 bits.
        assert_eq!(c.static_slot_capacity_bits(), 380);
        assert_eq!(c.transmission_duration(100), SimDuration::from_micros(10));
        // Minislot = 2 MT = 20 bits; 50 bits → 3 minislots + 1 idle phase.
        assert_eq!(c.minislots_for(50), 4);
        assert_eq!(c.minislots_for(1), 2);
    }

    #[test]
    fn paper_static_capacity_fits_largest_table_message() {
        // The largest BBW message is 1742 bits; its on-wire encoding adds
        // ~30% (checked precisely in the codec tests). The preset must
        // accommodate it inside one 40-MT slot.
        let c = ClusterConfig::paper_static(80);
        assert!(
            c.static_slot_capacity_bits() >= 2400,
            "capacity {} too small",
            c.static_slot_capacity_bits()
        );
    }
}
