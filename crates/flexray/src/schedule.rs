//! The static-segment schedule table.
//!
//! Each node's communication controller holds a schedule table mapping
//! `(slot, cycle)` to the message transmitted there (§II-B). FlexRay
//! multiplexes a slot across cycles with a *(base cycle, repetition)* pair:
//! the entry is active in cycles `c` with `c ≡ base (mod repetition)`,
//! where the repetition is a power of two dividing 64.

use std::fmt;

use crate::channel::{ChannelId, ChannelSet};
use crate::config::CYCLE_COUNT_MAX;
use crate::node::NodeId;

/// Identifier of a schedulable message, unique within a workload.
pub type MessageId = u32;

/// One schedule-table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// Static slot number (1-based; equals the frame id transmitted in it).
    pub slot: u16,
    /// First cycle (0–63) in which the entry is active.
    pub base_cycle: u8,
    /// Cycle repetition: 1, 2, 4, 8, 16, 32 or 64.
    pub repetition: u8,
    /// The transmitting node.
    pub node: NodeId,
    /// Channel(s) the frame is sent on.
    pub channels: ChannelSet,
    /// The message transmitted by this entry.
    pub message: MessageId,
}

impl ScheduleEntry {
    /// `true` if this entry transmits in the cycle with counter value
    /// `cycle_counter` (0–63).
    pub fn active_in(&self, cycle_counter: u8) -> bool {
        (u64::from(cycle_counter) % u64::from(self.repetition)) == u64::from(self.base_cycle)
    }
}

/// Errors detected when building a [`ScheduleTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// Slot number 0 or beyond the configured static slot count.
    SlotOutOfRange {
        /// Offending slot.
        slot: u16,
        /// Configured slot count.
        slots: u16,
    },
    /// Repetition not a power of two dividing 64.
    BadRepetition(u8),
    /// Base cycle not smaller than the repetition.
    BadBaseCycle {
        /// Offending base.
        base: u8,
        /// Entry repetition.
        repetition: u8,
    },
    /// Two entries would transmit in the same (slot, channel, cycle).
    Conflict {
        /// Conflicting slot.
        slot: u16,
        /// Conflicting channel.
        channel: ChannelId,
        /// Index of the first entry.
        first: usize,
        /// Index of the second entry.
        second: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::SlotOutOfRange { slot, slots } => {
                write!(f, "slot {slot} out of range 1..={slots}")
            }
            ScheduleError::BadRepetition(r) => {
                write!(f, "repetition {r} is not a power of two dividing 64")
            }
            ScheduleError::BadBaseCycle { base, repetition } => {
                write!(
                    f,
                    "base cycle {base} must be smaller than repetition {repetition}"
                )
            }
            ScheduleError::Conflict {
                slot,
                channel,
                first,
                second,
            } => write!(
                f,
                "entries {first} and {second} both transmit in slot {slot} on channel {channel}"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A validated, conflict-free static schedule.
///
/// ```
/// use flexray::schedule::{ScheduleEntry, ScheduleTable};
/// use flexray::{ChannelSet, node::NodeId};
/// let table = ScheduleTable::new(10, vec![
///     ScheduleEntry { slot: 1, base_cycle: 0, repetition: 1,
///         node: NodeId::new(0), channels: ChannelSet::Both, message: 100 },
///     ScheduleEntry { slot: 2, base_cycle: 0, repetition: 2,
///         node: NodeId::new(1), channels: ChannelSet::AOnly, message: 101 },
///     ScheduleEntry { slot: 2, base_cycle: 1, repetition: 2,
///         node: NodeId::new(2), channels: ChannelSet::AOnly, message: 102 },
/// ]).unwrap();
/// assert_eq!(table.lookup(2, flexray::ChannelId::A, 3).unwrap().message, 102);
/// assert!(table.lookup(2, flexray::ChannelId::B, 0).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleTable {
    slots: u16,
    entries: Vec<ScheduleEntry>,
}

impl ScheduleTable {
    /// Validates `entries` against a static segment of `slots` slots.
    ///
    /// # Errors
    /// The first [`ScheduleError`] found.
    pub fn new(slots: u16, entries: Vec<ScheduleEntry>) -> Result<Self, ScheduleError> {
        for e in &entries {
            if e.slot == 0 || e.slot > slots {
                return Err(ScheduleError::SlotOutOfRange {
                    slot: e.slot,
                    slots,
                });
            }
            if !u64::from(e.repetition).is_power_of_two()
                || u64::from(e.repetition) > CYCLE_COUNT_MAX
            {
                return Err(ScheduleError::BadRepetition(e.repetition));
            }
            if e.base_cycle >= e.repetition {
                return Err(ScheduleError::BadBaseCycle {
                    base: e.base_cycle,
                    repetition: e.repetition,
                });
            }
        }
        // Conflict check: two entries clash iff they share a slot and a
        // channel and their cycle sets intersect. For powers of two,
        // {c ≡ b1 (mod r1)} ∩ {c ≡ b2 (mod r2)} ≠ ∅ iff
        // b1 ≡ b2 (mod min(r1, r2)).
        for i in 0..entries.len() {
            for j in (i + 1)..entries.len() {
                let (a, b) = (&entries[i], &entries[j]);
                if a.slot != b.slot {
                    continue;
                }
                let share_channel = ChannelId::BOTH
                    .iter()
                    .any(|&c| a.channels.contains(c) && b.channels.contains(c));
                if !share_channel {
                    continue;
                }
                let m = a.repetition.min(b.repetition);
                if a.base_cycle % m == b.base_cycle % m {
                    let channel = ChannelId::BOTH
                        .into_iter()
                        .find(|&c| a.channels.contains(c) && b.channels.contains(c))
                        .expect("shared channel exists");
                    return Err(ScheduleError::Conflict {
                        slot: a.slot,
                        channel,
                        first: i,
                        second: j,
                    });
                }
            }
        }
        Ok(ScheduleTable { slots, entries })
    }

    /// Number of static slots the table was validated against.
    pub fn slot_count(&self) -> u16 {
        self.slots
    }

    /// All entries.
    pub fn entries(&self) -> &[ScheduleEntry] {
        &self.entries
    }

    /// The entry transmitting in `slot` on `channel` during the cycle with
    /// counter `cycle_counter`, if any.
    pub fn lookup(
        &self,
        slot: u16,
        channel: ChannelId,
        cycle_counter: u8,
    ) -> Option<&ScheduleEntry> {
        self.entries
            .iter()
            .find(|e| e.slot == slot && e.channels.contains(channel) && e.active_in(cycle_counter))
    }

    /// All entries owned by `node`.
    pub fn entries_of(&self, node: NodeId) -> impl Iterator<Item = &ScheduleEntry> {
        self.entries.iter().filter(move |e| e.node == node)
    }

    /// Fraction of (slot, cycle) pairs on `channel` with an assigned
    /// transmission, over one 64-cycle matrix — the static-segment
    /// *allocation* density (idle slots are the slack CoEfficient steals).
    pub fn allocation_density(&self, channel: ChannelId) -> f64 {
        let total = u64::from(self.slots) * CYCLE_COUNT_MAX;
        if total == 0 {
            return 0.0;
        }
        let mut used = 0u64;
        for e in &self.entries {
            if e.channels.contains(channel) {
                used += CYCLE_COUNT_MAX / u64::from(e.repetition);
            }
        }
        used as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(slot: u16, base: u8, rep: u8, ch: ChannelSet, msg: MessageId) -> ScheduleEntry {
        ScheduleEntry {
            slot,
            base_cycle: base,
            repetition: rep,
            node: NodeId::new(0),
            channels: ch,
            message: msg,
        }
    }

    #[test]
    fn lookup_respects_cycle_multiplexing() {
        let t = ScheduleTable::new(
            4,
            vec![
                entry(1, 0, 2, ChannelSet::Both, 10),
                entry(1, 1, 2, ChannelSet::Both, 11),
            ],
        )
        .unwrap();
        assert_eq!(t.lookup(1, ChannelId::A, 0).unwrap().message, 10);
        assert_eq!(t.lookup(1, ChannelId::A, 1).unwrap().message, 11);
        assert_eq!(t.lookup(1, ChannelId::A, 2).unwrap().message, 10);
        assert!(t.lookup(2, ChannelId::A, 0).is_none());
    }

    #[test]
    fn conflict_same_cycle_set_rejected() {
        let err = ScheduleTable::new(
            4,
            vec![
                entry(1, 0, 2, ChannelSet::AOnly, 10),
                entry(1, 2, 4, ChannelSet::AOnly, 11), // 2 mod 2 == 0 → overlaps
            ],
        )
        .unwrap_err();
        assert!(matches!(err, ScheduleError::Conflict { slot: 1, .. }));
    }

    #[test]
    fn disjoint_cycles_coexist() {
        let t = ScheduleTable::new(
            4,
            vec![
                entry(1, 0, 4, ChannelSet::AOnly, 10),
                entry(1, 1, 4, ChannelSet::AOnly, 11),
                entry(1, 2, 4, ChannelSet::AOnly, 12),
                entry(1, 3, 4, ChannelSet::AOnly, 13),
            ],
        );
        assert!(t.is_ok());
    }

    #[test]
    fn different_channels_coexist() {
        let t = ScheduleTable::new(
            4,
            vec![
                entry(1, 0, 1, ChannelSet::AOnly, 10),
                entry(1, 0, 1, ChannelSet::BOnly, 11),
            ],
        )
        .unwrap();
        assert_eq!(t.lookup(1, ChannelId::A, 5).unwrap().message, 10);
        assert_eq!(t.lookup(1, ChannelId::B, 5).unwrap().message, 11);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            ScheduleTable::new(4, vec![entry(5, 0, 1, ChannelSet::Both, 1)]),
            Err(ScheduleError::SlotOutOfRange { slot: 5, slots: 4 })
        ));
        assert!(matches!(
            ScheduleTable::new(4, vec![entry(1, 0, 3, ChannelSet::Both, 1)]),
            Err(ScheduleError::BadRepetition(3))
        ));
        assert!(matches!(
            ScheduleTable::new(4, vec![entry(1, 2, 2, ChannelSet::Both, 1)]),
            Err(ScheduleError::BadBaseCycle {
                base: 2,
                repetition: 2
            })
        ));
    }

    #[test]
    fn allocation_density() {
        // One every-cycle entry in a 2-slot table on A: 64 / 128 = 0.5.
        let t = ScheduleTable::new(2, vec![entry(1, 0, 1, ChannelSet::AOnly, 1)]).unwrap();
        assert!((t.allocation_density(ChannelId::A) - 0.5).abs() < 1e-12);
        assert_eq!(t.allocation_density(ChannelId::B), 0.0);
        // Adding a rep-2 entry in slot 2 adds 32/128.
        let t = ScheduleTable::new(
            2,
            vec![
                entry(1, 0, 1, ChannelSet::AOnly, 1),
                entry(2, 0, 2, ChannelSet::AOnly, 2),
            ],
        )
        .unwrap();
        assert!((t.allocation_density(ChannelId::A) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn entries_of_filters_by_node() {
        let mut e1 = entry(1, 0, 1, ChannelSet::Both, 1);
        e1.node = NodeId::new(3);
        let e2 = entry(2, 0, 1, ChannelSet::Both, 2);
        let t = ScheduleTable::new(4, vec![e1, e2]).unwrap();
        assert_eq!(t.entries_of(NodeId::new(3)).count(), 1);
        assert_eq!(t.entries_of(NodeId::new(0)).count(), 1);
        assert_eq!(t.entries_of(NodeId::new(9)).count(), 0);
    }
}
