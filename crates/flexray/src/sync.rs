//! Clock synchronization.
//!
//! FlexRay keeps node clocks aligned with a fault-tolerant midpoint (FTM)
//! algorithm: each node measures the deviation between the expected and
//! observed arrival times of sync frames, discards the `k` largest and `k`
//! smallest measurements (tolerating up to `k` faulty clocks), and averages
//! the extremes of the remainder to obtain its offset correction. Rate
//! correction compares measurements a double-cycle apart.
//!
//! The paper relies on this machinery implicitly ("the bus driver needs to
//! contain clock synchronization with other nodes", §II-B); the bus engine
//! assumes aligned clocks, and this module demonstrates and tests why that
//! assumption holds.

use std::fmt;

/// Deviation of one observed sync-frame arrival from its expected time,
/// in microticks (signed).
pub type Deviation = i64;

/// Errors from [`ftm_midpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncError {
    /// No measurements at all.
    NoMeasurements,
    /// Fewer than `2k + 1` measurements: cannot tolerate `k` faults.
    TooFewForFaults {
        /// Number of measurements supplied.
        have: usize,
        /// Faults to tolerate.
        k: usize,
    },
}

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncError::NoMeasurements => write!(f, "no sync-frame measurements"),
            SyncError::TooFewForFaults { have, k } => {
                write!(
                    f,
                    "{have} measurements cannot tolerate {k} faulty clocks (need {})",
                    2 * k + 1
                )
            }
        }
    }
}

impl std::error::Error for SyncError {}

/// The fault-tolerant midpoint of `deviations` discarding the `k` largest
/// and `k` smallest values: `(min' + max') / 2` of the surviving set
/// (rounded toward zero).
///
/// # Errors
/// * [`SyncError::NoMeasurements`] for an empty slice;
/// * [`SyncError::TooFewForFaults`] if `deviations.len() < 2k + 1`.
pub fn ftm_midpoint(deviations: &[Deviation], k: usize) -> Result<Deviation, SyncError> {
    if deviations.is_empty() {
        return Err(SyncError::NoMeasurements);
    }
    if deviations.len() < 2 * k + 1 {
        return Err(SyncError::TooFewForFaults {
            have: deviations.len(),
            k,
        });
    }
    let mut sorted = deviations.to_vec();
    sorted.sort_unstable();
    let survivors = &sorted[k..sorted.len() - k];
    let min = survivors[0];
    let max = survivors[survivors.len() - 1];
    Ok((min + max) / 2)
}

/// Per-node clock correction state: applies FTM offset correction each
/// double cycle and derives rate correction from consecutive offsets.
#[derive(Debug, Clone, Default)]
pub struct ClockCorrection {
    /// Accumulated offset correction applied so far (microticks).
    offset_correction: i64,
    /// Current rate correction (microticks per double cycle).
    rate_correction: i64,
    /// Previous double-cycle offset measurement, for rate derivation.
    last_offset: Option<i64>,
    /// Number of correction rounds applied.
    rounds: u64,
}

impl ClockCorrection {
    /// Fresh state with no corrections.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests one double-cycle's sync deviations, tolerating `k` faulty
    /// clocks, and updates offset and rate corrections.
    ///
    /// # Errors
    /// Propagates [`SyncError`] from the midpoint computation; state is
    /// unchanged on error.
    pub fn apply_round(&mut self, deviations: &[Deviation], k: usize) -> Result<(), SyncError> {
        let offset = ftm_midpoint(deviations, k)?;
        // Offset correction steers toward the cluster midpoint.
        self.offset_correction -= offset;
        // Rate correction: difference between successive offset
        // measurements estimates the frequency error.
        if let Some(prev) = self.last_offset {
            self.rate_correction -= offset - prev;
        }
        self.last_offset = Some(offset);
        self.rounds += 1;
        Ok(())
    }

    /// Total offset correction applied (microticks).
    pub fn offset_correction(&self) -> i64 {
        self.offset_correction
    }

    /// Current rate correction (microticks per double cycle).
    pub fn rate_correction(&self) -> i64 {
        self.rate_correction
    }

    /// Correction rounds applied.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn midpoint_of_symmetric_set_is_zero() {
        assert_eq!(ftm_midpoint(&[-4, -2, 0, 2, 4], 0).unwrap(), 0);
        assert_eq!(ftm_midpoint(&[-4, -2, 0, 2, 4], 1).unwrap(), 0);
        assert_eq!(ftm_midpoint(&[-4, -2, 0, 2, 4], 2).unwrap(), 0);
    }

    #[test]
    fn discards_outliers() {
        // One wildly faulty clock at +1000 must not move the midpoint when
        // k = 1.
        let honest = ftm_midpoint(&[-3, -1, 2, 4], 0).unwrap(); // (−3+4)/2 = 0
        let with_fault = ftm_midpoint(&[-3, -1, 2, 4, 1000], 1).unwrap(); // drop −3 and 1000 → (−1+4)/2 = 1
        assert!(with_fault.abs() <= honest.abs() + 2);
        // Without fault tolerance the outlier dominates.
        let naive = ftm_midpoint(&[-3, -1, 2, 4, 1000], 0).unwrap();
        assert!(naive > 400);
    }

    #[test]
    fn error_cases() {
        assert_eq!(ftm_midpoint(&[], 0).unwrap_err(), SyncError::NoMeasurements);
        assert_eq!(
            ftm_midpoint(&[1, 2], 1).unwrap_err(),
            SyncError::TooFewForFaults { have: 2, k: 1 }
        );
        assert!(ftm_midpoint(&[1, 2, 3], 1).is_ok());
    }

    #[test]
    fn correction_converges_constant_offset() {
        // A node consistently 10 microticks fast: after one round the
        // offset correction compensates fully.
        let mut c = ClockCorrection::new();
        c.apply_round(&[10, 10, 10], 1).unwrap();
        assert_eq!(c.offset_correction(), -10);
        // A second identical round implies zero frequency error.
        c.apply_round(&[10, 10, 10], 1).unwrap();
        assert_eq!(c.rate_correction(), 0);
        assert_eq!(c.rounds(), 2);
    }

    #[test]
    fn rate_correction_tracks_drift() {
        // Offsets growing by 5 per round ⇒ frequency error of 5 per double
        // cycle; rate correction must counteract it.
        let mut c = ClockCorrection::new();
        c.apply_round(&[0, 0, 0], 0).unwrap();
        c.apply_round(&[5, 5, 5], 0).unwrap();
        c.apply_round(&[10, 10, 10], 0).unwrap();
        assert_eq!(c.rate_correction(), -10); // −5 per round, two rounds
    }

    #[test]
    fn failed_round_leaves_state_unchanged() {
        let mut c = ClockCorrection::new();
        c.apply_round(&[3, 3, 3], 0).unwrap();
        let before = c.clone();
        assert!(c.apply_round(&[], 0).is_err());
        assert_eq!(format!("{c:?}"), format!("{before:?}"));
    }

    #[test]
    fn simulated_cluster_converges() {
        // Five nodes with distinct initial offsets; each round every node
        // measures the others' deviations relative to itself and corrects.
        let mut clocks: Vec<i64> = vec![0, 8, -6, 3, -2];
        for _ in 0..8 {
            let corrections: Vec<i64> = clocks
                .iter()
                .map(|&own| {
                    let devs: Vec<i64> = clocks.iter().map(|&c| c - own).collect();
                    ftm_midpoint(&devs, 1).unwrap()
                })
                .collect();
            for (c, d) in clocks.iter_mut().zip(corrections) {
                *c += d;
            }
        }
        let spread = clocks.iter().max().unwrap() - clocks.iter().min().unwrap();
        assert!(spread <= 2, "cluster failed to converge: {clocks:?}");
    }
}
