//! Cluster startup (coldstart and integration).
//!
//! A FlexRay cluster boots in two roles: *coldstart* nodes compete to
//! establish the TDMA schedule (the winner — in practice the one whose CAS
//! and first startup frame go uncontended — becomes the *leading*
//! coldstart node and the others join as *following* coldstart nodes),
//! and ordinary nodes *integrate* by listening for a consistent pair of
//! startup frames across consecutive double cycles.
//!
//! This module models that sequence at cycle granularity: enough fidelity
//! to exercise the POC's startup path and to reason about how long a
//! cluster takes to reach steady state — not a bit-level re-creation of
//! the spec's wakeup/CAS symbols.

use crate::node::NodeId;
use crate::poc::{Poc, PocEvent, PocState};

/// Per-node startup role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartupRole {
    /// May initiate the schedule (needs a key slot with a startup frame).
    Coldstart,
    /// Joins only after observing a running schedule.
    Integrating,
}

/// The phase a node is in during cluster startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartupPhase {
    /// Listening for existing traffic before daring a coldstart.
    Listen,
    /// Sent the collision-avoidance symbol; transmitting the first startup
    /// frames, waiting to see them echoed without collision.
    ColdstartCollisionResolution,
    /// Seen consistent startup frames; counting double cycles until join.
    IntegrationConsistencyCheck {
        /// Consistent double cycles observed so far.
        seen: u8,
    },
    /// Fully synchronized and participating.
    Operational,
}

/// One node's startup controller.
#[derive(Debug, Clone)]
pub struct StartupNode {
    id: NodeId,
    role: StartupRole,
    phase: StartupPhase,
    poc: Poc,
    /// Cycles spent listening before a coldstart attempt (role Coldstart).
    listen_budget: u8,
}

impl StartupNode {
    /// Creates a node ready to start up (POC already configured).
    pub fn new(id: NodeId, role: StartupRole) -> Self {
        let mut poc = Poc::new();
        poc.apply(PocEvent::ConfigComplete)
            .expect("fresh POC accepts config");
        poc.apply(PocEvent::RunRequest)
            .expect("ready POC accepts run");
        StartupNode {
            id,
            role,
            phase: StartupPhase::Listen,
            poc,
            listen_budget: 2,
        }
    }

    /// The node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The configured role.
    pub fn role(&self) -> StartupRole {
        self.role
    }

    /// Current phase.
    pub fn phase(&self) -> StartupPhase {
        self.phase
    }

    /// `true` once the node reached normal operation.
    pub fn is_operational(&self) -> bool {
        self.phase == StartupPhase::Operational
    }

    /// The POC state (driven through startup by this controller).
    pub fn poc_state(&self) -> PocState {
        self.poc.state()
    }
}

/// Outcome of a cluster startup simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StartupOutcome {
    /// The node that established the schedule.
    pub leader: NodeId,
    /// Cycle at which each node became operational, in node order.
    pub joined_at: Vec<(NodeId, u64)>,
    /// Total cycles until the whole cluster was operational.
    pub cycles: u64,
}

/// Errors of [`run_startup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StartupError {
    /// No coldstart-capable node in the cluster.
    NoColdstartNode,
    /// The cluster did not converge within the cycle budget.
    Timeout {
        /// Budget that was exhausted.
        budget: u64,
    },
}

impl std::fmt::Display for StartupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StartupError::NoColdstartNode => {
                write!(f, "a cluster needs at least one coldstart node")
            }
            StartupError::Timeout { budget } => {
                write!(f, "startup did not converge within {budget} cycles")
            }
        }
    }
}

impl std::error::Error for StartupError {}

/// Simulates cluster startup at cycle granularity.
///
/// The lowest-id coldstart node wins collision resolution (deterministic
/// stand-in for the spec's CAS contention — in a fault-free cluster the
/// outcome is equivalent); following coldstart nodes integrate one double
/// cycle later, ordinary nodes after two consistent double cycles.
///
/// # Errors
/// [`StartupError::NoColdstartNode`] or [`StartupError::Timeout`].
pub fn run_startup(
    nodes: &mut [StartupNode],
    max_cycles: u64,
) -> Result<StartupOutcome, StartupError> {
    let leader = nodes
        .iter()
        .filter(|n| n.role == StartupRole::Coldstart)
        .map(|n| n.id)
        .min()
        .ok_or(StartupError::NoColdstartNode)?;

    let mut joined_at = Vec::new();
    for cycle in 0..max_cycles {
        // Is a schedule being broadcast this cycle? Only once the leader
        // has passed collision resolution.
        let schedule_visible = nodes
            .iter()
            .any(|n| n.id == leader && n.phase != StartupPhase::Listen);
        for node in nodes.iter_mut() {
            match node.phase {
                StartupPhase::Listen => {
                    if node.id == leader {
                        if node.listen_budget == 0 {
                            node.phase = StartupPhase::ColdstartCollisionResolution;
                        } else {
                            node.listen_budget -= 1;
                        }
                    } else if schedule_visible {
                        node.phase = StartupPhase::IntegrationConsistencyCheck { seen: 0 };
                    }
                }
                StartupPhase::ColdstartCollisionResolution => {
                    // Uncontended in this model: one double cycle of its own
                    // startup frames and the leader is operational.
                    if cycle % 2 == 1 {
                        node.phase = StartupPhase::Operational;
                        node.poc
                            .apply(PocEvent::StartupComplete)
                            .expect("startup POC accepts completion");
                        joined_at.push((node.id, cycle));
                    }
                }
                StartupPhase::IntegrationConsistencyCheck { seen } => {
                    // A consistent double cycle completes every second cycle.
                    if cycle % 2 == 1 {
                        let needed = match node.role {
                            StartupRole::Coldstart => 1, // following coldstart
                            StartupRole::Integrating => 2,
                        };
                        if seen + 1 >= needed {
                            node.phase = StartupPhase::Operational;
                            node.poc
                                .apply(PocEvent::StartupComplete)
                                .expect("startup POC accepts completion");
                            joined_at.push((node.id, cycle));
                        } else {
                            node.phase =
                                StartupPhase::IntegrationConsistencyCheck { seen: seen + 1 };
                        }
                    }
                }
                StartupPhase::Operational => {}
            }
        }
        if nodes.iter().all(StartupNode::is_operational) {
            return Ok(StartupOutcome {
                leader,
                joined_at,
                cycles: cycle + 1,
            });
        }
    }
    Err(StartupError::Timeout { budget: max_cycles })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(coldstart: &[u8], integrating: &[u8]) -> Vec<StartupNode> {
        coldstart
            .iter()
            .map(|&i| StartupNode::new(NodeId::new(i), StartupRole::Coldstart))
            .chain(
                integrating
                    .iter()
                    .map(|&i| StartupNode::new(NodeId::new(i), StartupRole::Integrating)),
            )
            .collect()
    }

    #[test]
    fn lowest_id_coldstart_leads() {
        let mut nodes = cluster(&[3, 1, 7], &[9]);
        let out = run_startup(&mut nodes, 64).unwrap();
        assert_eq!(out.leader, NodeId::new(1));
    }

    #[test]
    fn whole_cluster_becomes_operational() {
        let mut nodes = cluster(&[0, 1], &[2, 3, 4]);
        let out = run_startup(&mut nodes, 64).unwrap();
        assert!(nodes.iter().all(StartupNode::is_operational));
        assert_eq!(out.joined_at.len(), 5);
        for n in &nodes {
            assert_eq!(n.poc_state(), PocState::NormalActive);
        }
    }

    #[test]
    fn leader_joins_first_then_coldstarters_then_plain_nodes() {
        let mut nodes = cluster(&[0, 1], &[2]);
        let out = run_startup(&mut nodes, 64).unwrap();
        let at = |id: u8| {
            out.joined_at
                .iter()
                .find(|(n, _)| *n == NodeId::new(id))
                .map(|&(_, c)| c)
                .unwrap()
        };
        assert!(at(0) <= at(1), "leader no later than following coldstart");
        assert!(at(1) <= at(2), "coldstart no later than integrating node");
    }

    #[test]
    fn integration_takes_two_double_cycles() {
        let mut nodes = cluster(&[0], &[5]);
        let out = run_startup(&mut nodes, 64).unwrap();
        let leader_join = out.joined_at[0].1;
        let plain_join = out.joined_at.last().unwrap().1;
        assert!(
            plain_join >= leader_join + 4,
            "plain node joined too early: {plain_join} vs leader {leader_join}"
        );
    }

    #[test]
    fn no_coldstart_node_is_an_error() {
        let mut nodes = cluster(&[], &[1, 2]);
        assert_eq!(
            run_startup(&mut nodes, 64).unwrap_err(),
            StartupError::NoColdstartNode
        );
    }

    #[test]
    fn timeout_when_budget_too_small() {
        let mut nodes = cluster(&[0], &[1]);
        assert!(matches!(
            run_startup(&mut nodes, 2),
            Err(StartupError::Timeout { budget: 2 })
        ));
    }

    #[test]
    fn fresh_node_state() {
        let n = StartupNode::new(NodeId::new(4), StartupRole::Integrating);
        assert_eq!(n.id(), NodeId::new(4));
        assert_eq!(n.role(), StartupRole::Integrating);
        assert_eq!(n.phase(), StartupPhase::Listen);
        assert_eq!(n.poc_state(), PocState::Startup);
        assert!(!n.is_operational());
    }
}
