//! Bit-level frame serialization and deserialization.
//!
//! [`crate::codec`] computes *how long* a frame occupies the wire; this
//! module actually produces and parses the bit sequence:
//!
//! ```text
//! TSS (low bits) | FSS (high) | per byte: BSS (1,0) + 8 data bits | FES (0,1)
//! ```
//!
//! A decoder validates the framing sequences and the embedded CRCs, so a
//! corrupted stream is rejected exactly the way a real receiver rejects
//! it. The bus *engine* abstracts corruption to a per-frame flag for
//! speed; these routines are the ground truth that abstraction is checked
//! against (see the roundtrip tests).

use crate::channel::ChannelId;
use crate::codec::FrameCoding;
use crate::frame::{Frame, FrameHeader, FrameId};

/// Why decoding failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Stream ended before the expected structure completed.
    Truncated,
    /// The transmission start sequence was not all-LOW.
    BadTss,
    /// The frame start sequence bit was not HIGH.
    BadFss,
    /// A byte start sequence was not the (1, 0) pattern.
    BadBss {
        /// Index of the offending byte.
        byte: usize,
    },
    /// The frame end sequence was not the (0, 1) pattern.
    BadFes,
    /// The header CRC did not match the protected header fields.
    HeaderCrcMismatch,
    /// The 24-bit frame CRC did not match.
    FrameCrcMismatch,
    /// The header's frame id was 0 (invalid).
    InvalidFrameId,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "bit stream truncated"),
            DecodeError::BadTss => write!(f, "transmission start sequence not LOW"),
            DecodeError::BadFss => write!(f, "frame start sequence not HIGH"),
            DecodeError::BadBss { byte } => write!(f, "byte start sequence corrupt at byte {byte}"),
            DecodeError::BadFes => write!(f, "frame end sequence corrupt"),
            DecodeError::HeaderCrcMismatch => write!(f, "header CRC mismatch"),
            DecodeError::FrameCrcMismatch => write!(f, "frame CRC mismatch"),
            DecodeError::InvalidFrameId => write!(f, "frame id 0 is invalid"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serializes `frame` for `channel` into wire bits (static-segment coding,
/// no DTS).
pub fn encode(frame: &Frame, channel: ChannelId, coding: &FrameCoding) -> Vec<bool> {
    let mut bits =
        Vec::with_capacity(coding.frame_wire_bits(frame.payload().len() as u64, false) as usize);
    // TSS: a run of LOW.
    bits.extend(std::iter::repeat_n(false, coding.tss_bits() as usize));
    // FSS: one HIGH bit.
    bits.push(true);
    // Bytes: header (5), payload, trailer CRC (3) — each with BSS (1, 0).
    let mut bytes = Vec::with_capacity(frame.byte_count() as usize);
    push_header_bytes(frame.header(), &mut bytes);
    bytes.extend_from_slice(frame.payload());
    let fcrc = frame.frame_crc(channel);
    bytes.push((fcrc >> 16) as u8);
    bytes.push((fcrc >> 8) as u8);
    bytes.push(fcrc as u8);
    for b in bytes {
        bits.push(true);
        bits.push(false);
        bits.extend((0..8).rev().map(|i| (b >> i) & 1 == 1));
    }
    // FES: (0, 1).
    bits.push(false);
    bits.push(true);
    bits
}

/// Packs the 40 header bits into 5 bytes.
fn push_header_bytes(h: &FrameHeader, out: &mut Vec<u8>) {
    let bits = h.bits();
    debug_assert_eq!(bits.len(), 40);
    for chunk in bits.chunks(8) {
        let mut b = 0u8;
        for &bit in chunk {
            b = (b << 1) | u8::from(bit);
        }
        out.push(b);
    }
}

/// Parses wire bits produced by [`encode`], validating framing and both
/// CRCs.
///
/// # Errors
/// A [`DecodeError`] naming the first defect.
pub fn decode(
    bits: &[bool],
    channel: ChannelId,
    coding: &FrameCoding,
) -> Result<Frame, DecodeError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[bool], DecodeError> {
        if *pos + n > bits.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &bits[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };

    // TSS.
    for &b in take(&mut pos, coding.tss_bits() as usize)? {
        if b {
            return Err(DecodeError::BadTss);
        }
    }
    // FSS.
    if !take(&mut pos, 1)?[0] {
        return Err(DecodeError::BadFss);
    }
    // Bytes until only the FES remains. Total byte count derives from the
    // stream length: (len - TSS - FSS - FES) / 10.
    let body_bits = bits
        .len()
        .checked_sub(coding.tss_bits() as usize + 1 + 2)
        .ok_or(DecodeError::Truncated)?;
    if body_bits % 10 != 0 {
        return Err(DecodeError::Truncated);
    }
    let n_bytes = body_bits / 10;
    if n_bytes < 8 {
        return Err(DecodeError::Truncated); // header + trailer minimum
    }
    let mut bytes = Vec::with_capacity(n_bytes);
    for i in 0..n_bytes {
        let bss = take(&mut pos, 2)?;
        if !bss[0] || bss[1] {
            return Err(DecodeError::BadBss { byte: i });
        }
        let data = take(&mut pos, 8)?;
        let mut b = 0u8;
        for &bit in data {
            b = (b << 1) | u8::from(bit);
        }
        bytes.push(b);
    }
    // FES.
    let fes = take(&mut pos, 2)?;
    if fes[0] || !fes[1] {
        return Err(DecodeError::BadFes);
    }

    // Header fields from the 5 header bytes.
    let h0 = bytes[0];
    let sync = (h0 >> 4) & 1 == 1;
    let startup = (h0 >> 3) & 1 == 1;
    let id_high = u16::from(h0 & 0b111);
    let frame_id_raw = (id_high << 8) | u16::from(bytes[1]);
    let frame_id = FrameId::try_new(frame_id_raw).ok_or(DecodeError::InvalidFrameId)?;
    let payload_words = bytes[2] >> 1;
    let header_crc =
        (u16::from(bytes[2] & 1) << 10) | (u16::from(bytes[3]) << 2) | u16::from(bytes[4] >> 6);
    let cycle_count = bytes[4] & 0b11_1111;

    if header_crc != FrameHeader::compute_crc(frame_id, payload_words, sync, startup) {
        return Err(DecodeError::HeaderCrcMismatch);
    }

    let payload_len = usize::from(payload_words) * 2;
    if bytes.len() != 5 + payload_len + 3 {
        return Err(DecodeError::Truncated);
    }
    let payload = bytes[5..5 + payload_len].to_vec();
    let rx_crc = (u32::from(bytes[5 + payload_len]) << 16)
        | (u32::from(bytes[6 + payload_len]) << 8)
        | u32::from(bytes[7 + payload_len]);

    let frame = if sync {
        Frame::sync_frame(frame_id, payload, cycle_count)
    } else {
        Frame::new(frame_id, payload, cycle_count)
    };
    if frame.frame_crc(channel) != rx_crc {
        return Err(DecodeError::FrameCrcMismatch);
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coding() -> FrameCoding {
        FrameCoding::default()
    }

    fn sample_frame() -> Frame {
        Frame::new(FrameId::new(0x2A5), vec![0x11, 0x22, 0x33, 0x44], 19)
    }

    #[test]
    fn roundtrip_preserves_the_frame() {
        let f = sample_frame();
        let bits = encode(&f, ChannelId::A, &coding());
        let back = decode(&bits, ChannelId::A, &coding()).expect("clean stream decodes");
        assert_eq!(back, f);
    }

    #[test]
    fn wire_length_matches_codec_prediction() {
        let f = sample_frame();
        let bits = encode(&f, ChannelId::B, &coding());
        assert_eq!(
            bits.len() as u64,
            coding().frame_wire_bits(f.payload().len() as u64, false)
        );
    }

    #[test]
    fn sync_frame_roundtrip_keeps_indicators() {
        let f = Frame::sync_frame(FrameId::new(3), vec![9, 8], 1);
        let bits = encode(&f, ChannelId::A, &coding());
        let back = decode(&bits, ChannelId::A, &coding()).unwrap();
        assert!(back.header().sync_frame);
        assert!(back.header().startup_frame);
        assert_eq!(back, f);
    }

    #[test]
    fn wrong_channel_fails_the_frame_crc() {
        let f = sample_frame();
        let bits = encode(&f, ChannelId::A, &coding());
        assert_eq!(
            decode(&bits, ChannelId::B, &coding()),
            Err(DecodeError::FrameCrcMismatch)
        );
    }

    #[test]
    fn payload_bit_flip_is_caught_by_frame_crc() {
        let f = sample_frame();
        let mut bits = encode(&f, ChannelId::A, &coding());
        // Flip a payload data bit: byte 5 (first payload byte) starts at
        // TSS + FSS + 5 * 10 bits; skip its BSS.
        let idx = coding().tss_bits() as usize + 1 + 5 * 10 + 2 + 3;
        bits[idx] = !bits[idx];
        assert_eq!(
            decode(&bits, ChannelId::A, &coding()),
            Err(DecodeError::FrameCrcMismatch)
        );
    }

    #[test]
    fn header_bit_flip_is_caught_by_header_crc() {
        let f = sample_frame();
        let mut bits = encode(&f, ChannelId::A, &coding());
        // Flip the lowest frame-id bit (header byte 1, last data bit).
        let idx = coding().tss_bits() as usize + 1 + 10 + 2 + 7;
        bits[idx] = !bits[idx];
        let err = decode(&bits, ChannelId::A, &coding()).unwrap_err();
        assert!(
            matches!(
                err,
                DecodeError::HeaderCrcMismatch | DecodeError::InvalidFrameId
            ),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn framing_violations_are_detected() {
        let f = sample_frame();
        let c = coding();
        let clean = encode(&f, ChannelId::A, &c);

        let mut bad_tss = clean.clone();
        bad_tss[0] = true;
        assert_eq!(decode(&bad_tss, ChannelId::A, &c), Err(DecodeError::BadTss));

        let mut bad_fss = clean.clone();
        bad_fss[c.tss_bits() as usize] = false;
        assert_eq!(decode(&bad_fss, ChannelId::A, &c), Err(DecodeError::BadFss));

        let mut bad_bss = clean.clone();
        bad_bss[c.tss_bits() as usize + 1] = false; // first BSS high bit
        assert_eq!(
            decode(&bad_bss, ChannelId::A, &c),
            Err(DecodeError::BadBss { byte: 0 })
        );

        let mut bad_fes = clean.clone();
        let n = bad_fes.len();
        bad_fes[n - 1] = false;
        assert_eq!(decode(&bad_fes, ChannelId::A, &c), Err(DecodeError::BadFes));
    }

    #[test]
    fn truncated_streams_are_rejected() {
        let f = sample_frame();
        let bits = encode(&f, ChannelId::A, &coding());
        for cut in [1usize, 10, bits.len() / 2] {
            let err = decode(&bits[..bits.len() - cut], ChannelId::A, &coding()).unwrap_err();
            assert!(
                matches!(
                    err,
                    DecodeError::Truncated | DecodeError::BadFes | DecodeError::BadBss { .. }
                ),
                "cut {cut}: unexpected {err:?}"
            );
        }
        assert_eq!(
            decode(&[], ChannelId::A, &coding()),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn all_payload_sizes_roundtrip() {
        for words in [0usize, 1, 8, 64, 127] {
            let f = Frame::new(
                FrameId::new(100),
                (0..words * 2).map(|i| i as u8).collect(),
                0,
            );
            let bits = encode(&f, ChannelId::A, &coding());
            assert_eq!(decode(&bits, ChannelId::A, &coding()).unwrap(), f);
        }
    }

    #[test]
    fn decode_error_display() {
        assert!(DecodeError::BadBss { byte: 3 }.to_string().contains('3'));
        assert!(!DecodeError::Truncated.to_string().is_empty());
    }
}
