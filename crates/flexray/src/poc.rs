//! Protocol Operation Control (POC).
//!
//! Each communication controller runs a state machine governing when it
//! may transmit: it powers up into configuration, becomes ready, optionally
//! performs wakeup, joins or leads startup, and then alternates between
//! normal-active and normal-passive depending on clock-sync quality, with
//! halt as the terminal error state. The transitions implemented here
//! cover the host-commanded and error-driven paths the FlexRay 2.1 spec
//! defines at this granularity.

use std::fmt;

/// POC states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PocState {
    /// Parameters being written by the host; transmission forbidden.
    Config,
    /// Configured and waiting for a run command.
    Ready,
    /// Transmitting wakeup symbols on the configured channel.
    Wakeup,
    /// Integrating into (or leading) the TDMA schedule.
    Startup,
    /// Fully synchronized; transmission allowed.
    NormalActive,
    /// Degraded sync; reception only, no transmission.
    NormalPassive,
    /// Terminal error state; only a host reset leaves it.
    Halt,
}

impl fmt::Display for PocState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PocState::Config => "CONFIG",
            PocState::Ready => "READY",
            PocState::Wakeup => "WAKEUP",
            PocState::Startup => "STARTUP",
            PocState::NormalActive => "NORMAL_ACTIVE",
            PocState::NormalPassive => "NORMAL_PASSIVE",
            PocState::Halt => "HALT",
        };
        write!(f, "{s}")
    }
}

/// Events driving the POC state machine: host commands and protocol
/// conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PocEvent {
    /// Host finished writing configuration.
    ConfigComplete,
    /// Host commands wakeup transmission.
    WakeupRequest,
    /// Wakeup pattern transmitted / detected.
    WakeupComplete,
    /// Host commands the controller to run (join startup).
    RunRequest,
    /// Startup integration succeeded (enough sync frames seen).
    StartupComplete,
    /// Clock-sync quality dropped below the passive limit.
    SyncLoss,
    /// Clock-sync quality recovered above the passive limit.
    SyncRecovered,
    /// Sync error count exceeded the halt limit, or host commanded halt.
    HaltRequest,
    /// Host resets the controller back to configuration.
    Reset,
}

/// Error returned for transitions the protocol does not define.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidTransition {
    /// State the machine was in.
    pub from: PocState,
    /// The rejected event.
    pub event: PocEvent,
}

impl fmt::Display for InvalidTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event {:?} is not valid in POC state {}",
            self.event, self.from
        )
    }
}

impl std::error::Error for InvalidTransition {}

/// The POC state machine.
///
/// ```
/// use flexray::poc::{Poc, PocEvent, PocState};
/// let mut poc = Poc::new();
/// poc.apply(PocEvent::ConfigComplete)?;
/// poc.apply(PocEvent::RunRequest)?;
/// poc.apply(PocEvent::StartupComplete)?;
/// assert_eq!(poc.state(), PocState::NormalActive);
/// assert!(poc.may_transmit());
/// # Ok::<(), flexray::poc::InvalidTransition>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poc {
    state: PocState,
    sync_errors: u32,
    halt_limit: u32,
}

impl Default for Poc {
    fn default() -> Self {
        Self::new()
    }
}

impl Poc {
    /// A controller fresh out of power-up, in `Config`, with the default
    /// halt limit of 8 consecutive sync losses.
    pub fn new() -> Self {
        Poc {
            state: PocState::Config,
            sync_errors: 0,
            halt_limit: 8,
        }
    }

    /// Sets the number of consecutive sync losses tolerated in
    /// `NormalPassive` before the controller halts itself.
    pub fn with_halt_limit(mut self, limit: u32) -> Self {
        self.halt_limit = limit;
        self
    }

    /// Current state.
    pub fn state(&self) -> PocState {
        self.state
    }

    /// Consecutive sync losses observed since the last recovery.
    pub fn sync_errors(&self) -> u32 {
        self.sync_errors
    }

    /// `true` when the protocol permits frame transmission.
    pub fn may_transmit(&self) -> bool {
        self.state == PocState::NormalActive
    }

    /// `true` when the controller at least receives frames.
    pub fn is_synchronized(&self) -> bool {
        matches!(self.state, PocState::NormalActive | PocState::NormalPassive)
    }

    /// Applies `event`, returning the new state.
    ///
    /// # Errors
    /// [`InvalidTransition`] if the protocol defines no such edge.
    pub fn apply(&mut self, event: PocEvent) -> Result<PocState, InvalidTransition> {
        use PocEvent as E;
        use PocState as S;
        let next = match (self.state, event) {
            (S::Config, E::ConfigComplete) => S::Ready,
            (S::Ready, E::WakeupRequest) => S::Wakeup,
            (S::Wakeup, E::WakeupComplete) => S::Ready,
            (S::Ready, E::RunRequest) => S::Startup,
            (S::Startup, E::StartupComplete) => {
                self.sync_errors = 0;
                S::NormalActive
            }
            (S::NormalActive, E::SyncLoss) => {
                self.sync_errors += 1;
                S::NormalPassive
            }
            (S::NormalPassive, E::SyncLoss) => {
                self.sync_errors += 1;
                if self.sync_errors >= self.halt_limit {
                    S::Halt
                } else {
                    S::NormalPassive
                }
            }
            (S::NormalPassive, E::SyncRecovered) => {
                self.sync_errors = 0;
                S::NormalActive
            }
            (S::NormalActive | S::NormalPassive | S::Startup, E::HaltRequest) => S::Halt,
            (_, E::Reset) => {
                self.sync_errors = 0;
                S::Config
            }
            (from, event) => return Err(InvalidTransition { from, event }),
        };
        self.state = next;
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn running_poc() -> Poc {
        let mut p = Poc::new();
        p.apply(PocEvent::ConfigComplete).unwrap();
        p.apply(PocEvent::RunRequest).unwrap();
        p.apply(PocEvent::StartupComplete).unwrap();
        p
    }

    #[test]
    fn happy_path_to_normal_active() {
        let p = running_poc();
        assert_eq!(p.state(), PocState::NormalActive);
        assert!(p.may_transmit());
        assert!(p.is_synchronized());
    }

    #[test]
    fn wakeup_detour() {
        let mut p = Poc::new();
        p.apply(PocEvent::ConfigComplete).unwrap();
        p.apply(PocEvent::WakeupRequest).unwrap();
        assert_eq!(p.state(), PocState::Wakeup);
        p.apply(PocEvent::WakeupComplete).unwrap();
        assert_eq!(p.state(), PocState::Ready);
        p.apply(PocEvent::RunRequest).unwrap();
        assert_eq!(p.state(), PocState::Startup);
    }

    #[test]
    fn sync_loss_degrades_then_recovers() {
        let mut p = running_poc();
        p.apply(PocEvent::SyncLoss).unwrap();
        assert_eq!(p.state(), PocState::NormalPassive);
        assert!(!p.may_transmit());
        assert!(p.is_synchronized());
        p.apply(PocEvent::SyncRecovered).unwrap();
        assert_eq!(p.state(), PocState::NormalActive);
        assert_eq!(p.sync_errors(), 0);
    }

    #[test]
    fn repeated_sync_loss_halts() {
        let mut p = running_poc();
        p = Poc { halt_limit: 3, ..p };
        p.apply(PocEvent::SyncLoss).unwrap(); // 1 → passive
        p.apply(PocEvent::SyncLoss).unwrap(); // 2 → passive
        assert_eq!(p.state(), PocState::NormalPassive);
        p.apply(PocEvent::SyncLoss).unwrap(); // 3 → halt
        assert_eq!(p.state(), PocState::Halt);
        assert!(!p.is_synchronized());
    }

    #[test]
    fn halt_only_leaves_via_reset() {
        let mut p = running_poc();
        p.apply(PocEvent::HaltRequest).unwrap();
        assert_eq!(p.state(), PocState::Halt);
        let err = p.apply(PocEvent::RunRequest).unwrap_err();
        assert_eq!(err.from, PocState::Halt);
        p.apply(PocEvent::Reset).unwrap();
        assert_eq!(p.state(), PocState::Config);
    }

    #[test]
    fn invalid_transitions_rejected() {
        let mut p = Poc::new();
        assert!(p.apply(PocEvent::RunRequest).is_err());
        assert!(p.apply(PocEvent::SyncLoss).is_err());
        assert_eq!(p.state(), PocState::Config, "state unchanged on error");
    }

    #[test]
    fn reset_from_anywhere() {
        for mk in [Poc::new, running_poc] {
            let mut p = mk();
            p.apply(PocEvent::Reset).unwrap();
            assert_eq!(p.state(), PocState::Config);
        }
    }

    #[test]
    fn display_and_errors() {
        assert_eq!(PocState::NormalActive.to_string(), "NORMAL_ACTIVE");
        let e = InvalidTransition {
            from: PocState::Halt,
            event: PocEvent::RunRequest,
        };
        assert!(e.to_string().contains("HALT"));
    }
}
