//! A from-scratch FlexRay 2.1 protocol substrate.
//!
//! The CoEfficient paper evaluates its scheduler on a 10-node FlexRay
//! testbed; this crate is the simulated equivalent, faithful at the level
//! the evaluation observes: cycle/slot/minislot timing, dual channels,
//! frame formats and CRCs, TDMA arbitration in the static segment, FTDMA
//! (minislot) arbitration in the dynamic segment, controller/host
//! interfaces, and BER-driven transient fault injection.
//!
//! Module map:
//!
//! * [`config`] — cluster-wide protocol constants (`gdCycle`,
//!   `gdStaticSlot`, `gNumberOfStaticSlots`, `gdMinislot`, `pLatestTx`, …)
//!   with validation and derived timing;
//! * [`frame`] + [`crc`] + [`codec`] + [`bitstream`] — frame format,
//!   header CRC-11, frame CRC-24, the physical bit coding that determines
//!   how long a frame occupies the wire, and bit-exact
//!   serialization/deserialization;
//! * [`signal`] — ECU signals and frame packing (§II-A);
//! * [`schedule`] — the static-segment schedule table;
//! * [`controller`] + [`chi`] + [`node`] — communication controller with
//!   per-channel slot counters, controller–host interface buffers, ECU
//!   nodes;
//! * [`bus`] — the cycle-level dual-channel bus engine with fault
//!   injection and a bus-analyzer-style trace;
//! * [`poc`] + [`startup`] — protocol operation control state machine and
//!   cluster coldstart/integration;
//! * [`sync`] — fault-tolerant-midpoint clock synchronization;
//! * [`topology`] — bus/star/hybrid cluster topologies and propagation
//!   delays.
//!
//! # Example
//!
//! ```
//! use flexray::config::ClusterConfig;
//! let cfg = ClusterConfig::builder()
//!     .macroticks_per_cycle(5000)
//!     .static_slots(80, 40)
//!     .minislots(120, 2)
//!     .build()
//!     .unwrap();
//! assert_eq!(cfg.cycle_duration().as_micros(), 5000);
//! assert_eq!(cfg.static_segment_duration().as_micros(), 3200);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bitstream;
pub mod bus;
pub mod chi;
pub mod codec;
pub mod config;
pub mod controller;
pub mod crc;
pub mod frame;
pub mod node;
pub mod poc;
pub mod schedule;
pub mod signal;
pub mod startup;
pub mod sync;
pub mod topology;

mod channel;
mod error;

pub use channel::{ChannelId, ChannelSet};
pub use error::ConfigError;
pub use frame::{Frame, FrameHeader, FrameId};
