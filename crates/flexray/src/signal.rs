//! ECU signals and frame packing.
//!
//! §II-A of the paper: each ECU `E_i` produces signals
//! `s_j^i = (P_j^i, O_j^i, D_j^i, W_j^i)` — period, offset, deadline and
//! length in bits. Signals are *packed* into frames before scheduling;
//! packing equal-period signals together minimizes frame overhead (the
//! paper cites the frame-packing line of work \[9\], \[31\]).

use event_sim::SimDuration;

/// An application-level signal produced by an ECU.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Signal {
    /// Caller-chosen identifier, unique within a workload.
    pub id: u32,
    /// Generation period `P_j^i`.
    pub period: SimDuration,
    /// Release offset `O_j^i` of the first instance.
    pub offset: SimDuration,
    /// Relative deadline `D_j^i` (≤ period).
    pub deadline: SimDuration,
    /// Length `W_j^i` in bits.
    pub size_bits: u32,
}

impl Signal {
    /// Creates a validated signal.
    ///
    /// # Panics
    /// Panics if the period, deadline or size is zero, or the deadline
    /// exceeds the period.
    pub fn new(
        id: u32,
        period: SimDuration,
        offset: SimDuration,
        deadline: SimDuration,
        size_bits: u32,
    ) -> Self {
        assert!(!period.is_zero(), "signal period must be positive");
        assert!(!deadline.is_zero(), "signal deadline must be positive");
        assert!(
            deadline <= period,
            "signal deadline must not exceed its period"
        );
        assert!(size_bits > 0, "signal size must be positive");
        Signal {
            id,
            period,
            offset,
            deadline,
            size_bits,
        }
    }
}

/// A frame-sized bundle of signals sharing a period.
///
/// The packed frame inherits the *minimum* deadline and offset of its
/// members (conservative: meeting the frame deadline meets every member
/// deadline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedFrame {
    /// Member signals.
    pub signals: Vec<Signal>,
    /// Common period.
    pub period: SimDuration,
    /// Earliest member offset.
    pub offset: SimDuration,
    /// Tightest member deadline.
    pub deadline: SimDuration,
    /// Sum of member sizes in bits.
    pub total_bits: u32,
}

impl PackedFrame {
    /// Number of member signals.
    pub fn len(&self) -> usize {
        self.signals.len()
    }

    /// `true` if the frame carries no signals (never produced by
    /// [`pack_signals`]).
    pub fn is_empty(&self) -> bool {
        self.signals.is_empty()
    }
}

/// Packs `signals` into frames of at most `max_frame_bits` each, grouping
/// by period and filling greedily in first-fit-decreasing order.
///
/// Signals larger than `max_frame_bits` get a frame of their own (the
/// caller's slot sizing must accommodate them).
///
/// The output is deterministic: groups are ordered by period, and frames
/// within a group by the decreasing size of their first member.
pub fn pack_signals(signals: &[Signal], max_frame_bits: u32) -> Vec<PackedFrame> {
    assert!(max_frame_bits > 0, "frame capacity must be positive");
    // Group by period.
    let mut by_period: Vec<(SimDuration, Vec<&Signal>)> = Vec::new();
    for s in signals {
        match by_period.iter_mut().find(|(p, _)| *p == s.period) {
            Some((_, group)) => group.push(s),
            None => by_period.push((s.period, vec![s])),
        }
    }
    by_period.sort_by_key(|(p, _)| *p);

    let mut frames = Vec::new();
    for (period, mut group) in by_period {
        // First-fit decreasing by size; ties by id for determinism.
        group.sort_by_key(|s| (std::cmp::Reverse(s.size_bits), s.id));
        let mut bins: Vec<PackedFrame> = Vec::new();
        for s in group {
            let target = bins
                .iter_mut()
                .find(|b| b.total_bits + s.size_bits <= max_frame_bits);
            match target {
                Some(bin) => {
                    bin.total_bits += s.size_bits;
                    bin.offset = bin.offset.min(s.offset);
                    bin.deadline = bin.deadline.min(s.deadline);
                    bin.signals.push(s.clone());
                }
                None => bins.push(PackedFrame {
                    signals: vec![s.clone()],
                    period,
                    offset: s.offset,
                    deadline: s.deadline,
                    total_bits: s.size_bits,
                }),
            }
        }
        frames.extend(bins);
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(id: u32, period_ms: u64, size: u32) -> Signal {
        Signal::new(
            id,
            SimDuration::from_millis(period_ms),
            SimDuration::ZERO,
            SimDuration::from_millis(period_ms),
            size,
        )
    }

    #[test]
    fn packs_same_period_signals_together() {
        let signals = vec![sig(1, 10, 100), sig(2, 10, 200), sig(3, 10, 300)];
        let frames = pack_signals(&signals, 600);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].total_bits, 600);
        assert_eq!(frames[0].len(), 3);
    }

    #[test]
    fn splits_when_capacity_exceeded() {
        let signals = vec![sig(1, 10, 400), sig(2, 10, 400), sig(3, 10, 400)];
        let frames = pack_signals(&signals, 800);
        assert_eq!(frames.len(), 2);
        let bits: Vec<u32> = frames.iter().map(|f| f.total_bits).collect();
        assert_eq!(bits.iter().sum::<u32>(), 1200);
        assert!(bits.iter().all(|&b| b <= 800));
    }

    #[test]
    fn different_periods_never_share_a_frame() {
        let signals = vec![sig(1, 10, 10), sig(2, 20, 10)];
        let frames = pack_signals(&signals, 1000);
        assert_eq!(frames.len(), 2);
        assert!(frames[0].period < frames[1].period);
    }

    #[test]
    fn frame_inherits_tightest_deadline_and_earliest_offset() {
        let a = Signal::new(
            1,
            SimDuration::from_millis(10),
            SimDuration::from_micros(500),
            SimDuration::from_millis(8),
            64,
        );
        let b = Signal::new(
            2,
            SimDuration::from_millis(10),
            SimDuration::from_micros(200),
            SimDuration::from_millis(4),
            64,
        );
        let frames = pack_signals(&[a, b], 1000);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].deadline, SimDuration::from_millis(4));
        assert_eq!(frames[0].offset, SimDuration::from_micros(200));
    }

    #[test]
    fn oversized_signal_gets_own_frame() {
        let frames = pack_signals(&[sig(1, 10, 5000)], 1000);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].total_bits, 5000);
    }

    #[test]
    fn deterministic_output() {
        let signals = vec![sig(3, 10, 100), sig(1, 10, 100), sig(2, 20, 50)];
        let a = pack_signals(&signals, 150);
        let b = pack_signals(&signals, 150);
        assert_eq!(a, b);
    }

    #[test]
    fn packing_reduces_frame_count_vs_one_per_signal() {
        let signals: Vec<Signal> = (0..20).map(|i| sig(i, 10, 64)).collect();
        let frames = pack_signals(&signals, 512);
        assert!(frames.len() < signals.len());
        assert_eq!(frames.iter().map(PackedFrame::len).sum::<usize>(), 20);
    }

    #[test]
    #[should_panic(expected = "deadline must not exceed")]
    fn invalid_signal_rejected() {
        let _ = Signal::new(
            1,
            SimDuration::from_millis(5),
            SimDuration::ZERO,
            SimDuration::from_millis(6),
            8,
        );
    }
}
