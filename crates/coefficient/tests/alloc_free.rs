//! Proof that the steady-state cycle loop is allocation-free.
//!
//! A counting global allocator is armed after a warm-up phase long enough
//! for every scratch buffer — scheduler queues, instance tracker, history
//! windows, fault-probability caches — to reach its steady-state
//! capacity. From then on, producing traffic and running bus cycles must
//! not touch the heap at all: the hot path works entirely out of the
//! buffers reserved up front.
//!
//! A single `#[test]` covers both policies because the allocator state is
//! global — parallel tests would count each other's allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use coefficient::{Scenario, Scheduler, COEFFICIENT, GREEDY};
use event_sim::SimDuration;
use flexray::bus::BusEngine;
use flexray::codec::FrameCoding;
use flexray::config::ClusterConfig;
use flexray::signal::Signal;
use reliability::fault::BernoulliFaults;
use reliability::Ber;
use workloads::AperiodicMessage;

struct CountingAllocator;

/// Counted while [`ARMED`]: every fresh allocation or reallocation.
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // Frees are allowed in steady state (retired instances, drained
        // queues); only growth is a regression.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn statics() -> Vec<Signal> {
    vec![
        Signal::new(
            1,
            SimDuration::from_millis(1),
            SimDuration::ZERO,
            SimDuration::from_millis(1),
            400,
        ),
        Signal::new(
            2,
            SimDuration::from_millis(4),
            SimDuration::ZERO,
            SimDuration::from_millis(4),
            800,
        ),
    ]
}

fn dynamics() -> Vec<AperiodicMessage> {
    vec![
        AperiodicMessage::new(
            20,
            SimDuration::from_millis(50),
            SimDuration::from_millis(50),
            32,
        ),
        AperiodicMessage::new(
            21,
            SimDuration::from_millis(50),
            SimDuration::from_millis(50),
            64,
        ),
    ]
}

/// Runs `cycles` communication cycles with periodic static production and
/// a sparse dynamic load, starting from bus cycle `first`.
fn drive(
    scheduler: &mut Scheduler,
    engine: &mut BusEngine,
    config: &ClusterConfig,
    first: u64,
    cycles: u64,
) {
    for cycle in first..first + cycles {
        let now = config.cycle_start(cycle);
        scheduler.produce_static(1, now);
        if cycle % 4 == 0 {
            scheduler.produce_static(2, now);
        }
        if cycle % 16 == 0 {
            scheduler.produce_dynamic(20, now);
            scheduler.produce_dynamic(21, now);
        }
        scheduler.purge_expired(now);
        engine.run_cycle(cycle, scheduler);
    }
}

#[test]
fn steady_state_cycle_loop_does_not_allocate() {
    const WARMUP_CYCLES: u64 = 400;
    const MEASURED_CYCLES: u64 = 200;

    for policy in [COEFFICIENT, GREEDY] {
        let config = ClusterConfig::paper_dynamic(50);
        let mut scheduler = Scheduler::new(
            policy,
            config.clone(),
            FrameCoding::default(),
            &Scenario::ber7(),
            &statics(),
            &dynamics(),
        )
        .unwrap();
        // Upper bound on instances the whole run produces; the tracker
        // reserves this up front so steady-state production never grows it.
        scheduler.reserve_instances(4096);
        let ber = Ber::new(1e-7).unwrap();
        let mut engine = BusEngine::new(config.clone()).with_faults(
            Box::new(BernoulliFaults::new(ber, 1)),
            Box::new(BernoulliFaults::new(ber, 2)),
        );

        drive(&mut scheduler, &mut engine, &config, 0, WARMUP_CYCLES);

        ALLOCS.store(0, Ordering::SeqCst);
        ARMED.store(true, Ordering::SeqCst);
        drive(
            &mut scheduler,
            &mut engine,
            &config,
            WARMUP_CYCLES,
            MEASURED_CYCLES,
        );
        ARMED.store(false, Ordering::SeqCst);

        let allocs = ALLOCS.load(Ordering::SeqCst);
        assert_eq!(
            allocs,
            0,
            "{}: {allocs} heap allocations in {MEASURED_CYCLES} steady-state cycles",
            policy.label(),
        );
        // The run did real work while armed.
        assert!(scheduler.tracker().delivered() as u64 > WARMUP_CYCLES);
    }
}
