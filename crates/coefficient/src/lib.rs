//! **CoEfficient** — cooperative and efficient real-time scheduling for
//! FlexRay automotive communications (ICDCS 2014 reproduction).
//!
//! FlexRay offers no acknowledgements, so tolerance against transient
//! faults must come from *redundant transmission*. The standard approach
//! (our [`FSPEC`] baseline) retransmits **everything**, best
//! effort: every frame is duplicated on the second channel and an extra
//! copy of every message is pushed through the dynamic segment. Under
//! realistic loads that exhausts the bandwidth, queues grow, and both
//! latency and deadline-miss ratios blow up.
//!
//! CoEfficient ([`COEFFICIENT`]) instead:
//!
//! 1. models static messages as hard periodic tasks, retransmission copies
//!    as hard aperiodic tasks and dynamic messages as soft aperiodic tasks
//!    (§III-A);
//! 2. computes **differentiated retransmission counts** `k_z` per message
//!    from the channel BER and an IEC 61508 reliability goal ρ (Theorem 1,
//!    via [`reliability::RetransmissionPlanner`]);
//! 3. places those copies — and backlogged dynamic messages — into the
//!    **selectively stolen slack** of the dual-channel static segment:
//!    idle `(slot, cycle, channel)` positions whose capacity fits the
//!    frame (§III-F);
//! 4. schedules both segments **cooperatively**: released static instances
//!    may go out early through free slack, and dynamic messages may ride
//!    idle static slots.
//!
//! The crate's entry point is [`Runner`]: configure a
//! [`RunConfig`] with a cluster geometry, a scenario and workloads, and it
//! simulates the full dual-channel bus, returning a [`RunReport`] with the
//! paper's four metrics (running time, bandwidth utilization, transmission
//! latency, deadline miss ratio).
//!
//! Schedulers are [`Policy`] trait objects resolved from a string-keyed
//! [`registry`], so policy names flow from CLI flags and corpus files all
//! the way to the scheduler without an enum in between:
//!
//! ```
//! use coefficient::{RunConfig, Runner, Scenario, StopCondition};
//! use flexray::config::ClusterConfig;
//!
//! let report = Runner::new(RunConfig {
//!     cluster: ClusterConfig::paper_dynamic(50),
//!     scenario: Scenario::ber7(),
//!     static_messages: workloads::bbw::message_set(),
//!     dynamic_messages: workloads::sae::message_set(workloads::sae::IdRange::StartingAt(20), 1),
//!     policy: coefficient::registry::resolve("coefficient").unwrap(),
//!     stop: StopCondition::ProducedInstances(200),
//!     seed: 1,
//!     trace: Default::default(),
//! })
//! .unwrap()
//! .run();
//! assert!(report.delivered > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod assignment;
pub mod golden;
mod instance;
mod policy;
pub mod registry;
mod runner;
mod scenario;
pub mod sweep;

pub use assignment::{AllocationError, CopyPlacement, StaticAllocation};
// Re-exported so downstream users can configure [`RunConfig::trace`] and
// consume [`RunReport::trace`] without naming the `observe` crate.
pub use golden::{GoldenCell, GoldenCorpus, GoldenMetrics, Tolerances, VerifyReport};
pub use instance::{InstanceStatus, InstanceTracker, MessageClass};
pub use observe::{TraceConfig, TraceLog, TraceMode};
pub use policy::{CoefficientOptions, Scheduler, SchedulerError};
pub use registry::{
    Policy, PolicyBehavior, PolicyRef, UnknownPolicy, COEFFICIENT, FSPEC, GREEDY, HOSA, MATCHUP,
    SLACK_STEAL,
};
pub use reliability::campaign::{CampaignCounters, CampaignSpec, CampaignTarget};
pub use runner::{
    CampaignEventOutcome, ChaosObservation, RunConfig, RunCounters, RunReport, Runner,
    StopCondition,
};
pub use scenario::{FaultModel, Scenario};
pub use sweep::{
    run_parallel, run_parallel_with_options, CellCoord, CellOutcome, GroupSummary, SeedStrategy,
    SweepMatrix, SweepReport, SweepRunner,
};
