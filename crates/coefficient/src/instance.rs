//! Message-instance bookkeeping.
//!
//! The runner tracks every produced message instance from production to
//! (first successful) delivery; all of the paper's metrics — latency,
//! deadline miss ratio, running time — fall out of this record.

use event_sim::{SimDuration, SimTime};
use flexray::schedule::MessageId;
use metrics::{DeadlineTracker, Summary};

/// Which paper traffic class an instance belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageClass {
    /// Time-triggered, static segment (hard periodic task).
    Static,
    /// Event-triggered, dynamic segment (soft aperiodic task).
    Dynamic,
}

/// Index of an instance within the tracker.
pub type InstanceId = usize;

/// The life record of one message instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceStatus {
    /// The message this is an instance of.
    pub message: MessageId,
    /// Traffic class.
    pub class: MessageClass,
    /// Production instant.
    pub produced_at: SimTime,
    /// Absolute deadline.
    pub deadline: SimTime,
    /// Completion instant of the first *uncorrupted* transmission.
    pub delivered_at: Option<SimTime>,
    /// Transmissions attempted (primary + copies, all channels).
    pub transmissions: u32,
    /// Of those, how many fault injection corrupted.
    pub corrupted: u32,
    /// Opportunistic early copies already spent on this instance.
    pub early_copies: u32,
}

impl InstanceStatus {
    /// Latency if delivered.
    pub fn latency(&self) -> Option<SimDuration> {
        self.delivered_at
            .map(|d| d.saturating_duration_since(self.produced_at))
    }

    /// `true` once the first uncorrupted copy completed.
    pub fn is_delivered(&self) -> bool {
        self.delivered_at.is_some()
    }
}

/// Tracks all instances of a run.
#[derive(Debug, Default)]
pub struct InstanceTracker {
    instances: Vec<InstanceStatus>,
    /// Recent instances per message, oldest first (bounded). Several may
    /// have open generation windows at once when the production batch runs
    /// ahead of the bus cycle, so transmission lookup needs history, not
    /// just the newest.
    history: std::collections::HashMap<MessageId, std::collections::VecDeque<InstanceId>>,
    /// Running count of instances delivered within their deadline.
    delivered_in_time: u64,
}

/// How many recent instances per message the tracker keeps addressable
/// (older ones remain in the record but can no longer be transmitted).
const HISTORY_DEPTH: usize = 64;

impl InstanceTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-reserves room for `instances` further productions so the
    /// steady-state production path never reallocates the instance store.
    pub fn reserve(&mut self, instances: usize) {
        self.instances.reserve(instances);
    }

    /// Registers a newly produced instance and makes it the message's
    /// current one.
    pub fn produce(
        &mut self,
        message: MessageId,
        class: MessageClass,
        produced_at: SimTime,
        deadline: SimTime,
    ) -> InstanceId {
        let id = self.instances.len();
        self.instances.push(InstanceStatus {
            message,
            class,
            produced_at,
            deadline,
            delivered_at: None,
            transmissions: 0,
            corrupted: 0,
            early_copies: 0,
        });
        // Full-depth capacity up front: the ring never reallocates as it
        // fills towards its bound.
        let h = self
            .history
            .entry(message)
            .or_insert_with(|| std::collections::VecDeque::with_capacity(HISTORY_DEPTH + 1));
        h.push_back(id);
        if h.len() > HISTORY_DEPTH {
            h.pop_front();
        }
        id
    }

    /// The current (newest) instance of `message`, if one was produced.
    pub fn current_of(&self, message: MessageId) -> Option<InstanceId> {
        self.history.get(&message).and_then(|h| h.back()).copied()
    }

    /// The newest instance of `message` produced at or before `t` — the
    /// only one whose generation window can contain `t` (instances of one
    /// message release in order, one period apart).
    pub fn newest_at_or_before(&self, message: MessageId, t: SimTime) -> Option<InstanceId> {
        let h = self.history.get(&message)?;
        h.iter()
            .rev()
            .copied()
            .find(|&id| self.instances[id].produced_at <= t)
    }

    /// Immutable access to an instance.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn get(&self, id: InstanceId) -> &InstanceStatus {
        &self.instances[id]
    }

    /// Mutable access to an instance.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn get_mut(&mut self, id: InstanceId) -> &mut InstanceStatus {
        &mut self.instances[id]
    }

    /// Records a transmission of `id` finishing at `end`; an uncorrupted
    /// transmission delivers the instance if nothing did earlier.
    pub fn record_transmission(&mut self, id: InstanceId, end: SimTime, corrupted: bool) {
        let inst = &mut self.instances[id];
        inst.transmissions += 1;
        if corrupted {
            inst.corrupted += 1;
        } else if inst.delivered_at.is_none() {
            inst.delivered_at = Some(end);
            if end <= inst.deadline {
                self.delivered_in_time += 1;
            }
        }
    }

    /// Number of instances delivered at or before their deadline — the
    /// paper's notion of a *successful* transmission (§III-E).
    pub fn delivered_in_time(&self) -> u64 {
        self.delivered_in_time
    }

    /// Number of produced instances.
    pub fn produced(&self) -> usize {
        self.instances.len()
    }

    /// Number of delivered instances.
    pub fn delivered(&self) -> usize {
        self.instances.iter().filter(|i| i.is_delivered()).count()
    }

    /// All instances.
    pub fn instances(&self) -> &[InstanceStatus] {
        &self.instances
    }

    /// Completion instant of the last delivery, if any.
    pub fn last_delivery(&self) -> Option<SimTime> {
        self.instances.iter().filter_map(|i| i.delivered_at).max()
    }

    /// Latency summary over delivered instances of `class`.
    pub fn latency_summary(&self, class: MessageClass) -> Summary {
        let mut s = Summary::new();
        for i in &self.instances {
            if i.class == class {
                if let Some(l) = i.latency() {
                    s.record(l);
                }
            }
        }
        s
    }

    /// Deadline accounting over instances of `class`: delivered instances
    /// compare `delivered_at` to the deadline, undelivered count as lost.
    pub fn deadline_tracker(&self, class: MessageClass) -> DeadlineTracker {
        let mut t = DeadlineTracker::new();
        for i in &self.instances {
            if i.class != class {
                continue;
            }
            match i.delivered_at {
                Some(d) => {
                    t.record_completion(d, i.deadline);
                }
                None => t.record_lost(),
            }
        }
        t
    }

    /// Combined deadline accounting over both classes.
    pub fn deadline_tracker_all(&self) -> DeadlineTracker {
        let mut t = self.deadline_tracker(MessageClass::Static);
        t.merge(&self.deadline_tracker(MessageClass::Dynamic));
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn produce_and_deliver() {
        let mut tr = InstanceTracker::new();
        let a = tr.produce(1, MessageClass::Static, t(0), t(8));
        assert_eq!(tr.current_of(1), Some(a));
        tr.record_transmission(a, t(2), false);
        assert!(tr.get(a).is_delivered());
        assert_eq!(tr.get(a).latency(), Some(SimDuration::from_millis(2)));
        assert_eq!(tr.delivered(), 1);
        assert_eq!(tr.last_delivery(), Some(t(2)));
    }

    #[test]
    fn corrupted_transmission_does_not_deliver() {
        let mut tr = InstanceTracker::new();
        let a = tr.produce(1, MessageClass::Static, t(0), t(8));
        tr.record_transmission(a, t(2), true);
        assert!(!tr.get(a).is_delivered());
        assert_eq!(tr.get(a).corrupted, 1);
        // A later clean copy delivers.
        tr.record_transmission(a, t(3), false);
        assert_eq!(tr.get(a).delivered_at, Some(t(3)));
        // Further copies don't move the delivery time.
        tr.record_transmission(a, t(4), false);
        assert_eq!(tr.get(a).delivered_at, Some(t(3)));
        assert_eq!(tr.get(a).transmissions, 3);
    }

    #[test]
    fn new_instance_becomes_current() {
        let mut tr = InstanceTracker::new();
        let a = tr.produce(1, MessageClass::Static, t(0), t(8));
        let b = tr.produce(1, MessageClass::Static, t(8), t(16));
        assert_ne!(a, b);
        assert_eq!(tr.current_of(1), Some(b));
        assert_eq!(tr.produced(), 2);
    }

    #[test]
    fn class_summaries_are_separate() {
        let mut tr = InstanceTracker::new();
        let s = tr.produce(1, MessageClass::Static, t(0), t(8));
        let d = tr.produce(90, MessageClass::Dynamic, t(0), t(50));
        tr.record_transmission(s, t(1), false);
        tr.record_transmission(d, t(30), false);
        assert_eq!(tr.latency_summary(MessageClass::Static).count(), 1);
        assert_eq!(tr.latency_summary(MessageClass::Dynamic).count(), 1);
        assert_eq!(
            tr.latency_summary(MessageClass::Dynamic).mean().unwrap(),
            SimDuration::from_millis(30)
        );
    }

    #[test]
    fn deadline_tracking() {
        let mut tr = InstanceTracker::new();
        let a = tr.produce(1, MessageClass::Static, t(0), t(8));
        let b = tr.produce(2, MessageClass::Static, t(0), t(8));
        let _lost = tr.produce(3, MessageClass::Static, t(0), t(8));
        tr.record_transmission(a, t(5), false); // met
        tr.record_transmission(b, t(9), false); // missed
        let dt = tr.deadline_tracker(MessageClass::Static);
        assert_eq!(dt.met(), 1);
        assert_eq!(dt.missed(), 2); // late + lost
        assert_eq!(tr.deadline_tracker_all().total(), 3);
    }
}
