//! Parallel multi-seed sweep harness with deterministic replay.
//!
//! The paper's headline figures are *statistical* claims: bandwidth,
//! latency and miss-ratio gaps between CoEfficient and FSPEC that only
//! hold over many seeds and BER scenarios. [`SweepRunner`] executes a
//! whole `{policy × scenario × seed}` matrix across worker threads and
//! aggregates the per-cell [`RunReport`]s into a [`SweepReport`] with
//! mean/stddev/min/max and percentile summaries per metric.
//!
//! Parallelism is only trustworthy with determinism as a contract:
//!
//! * every cell derives its own master seed via
//!   [`event_sim::rng::derive`], so no RNG state is shared between
//!   cells or threads;
//! * every [`RunReport`] carries a [`fingerprint`](RunReport::fingerprint)
//!   digest, and [`SweepReport::fingerprint`] folds the cell digests in
//!   matrix order — byte-identical for any worker count;
//! * any cell can be [`replay`](SweepRunner::replay)ed in isolation from
//!   its [`CellCoord`] alone and must reproduce its recorded fingerprint.
//!
//! ```
//! use coefficient::sweep::{SeedStrategy, SweepMatrix, SweepRunner};
//! use coefficient::{Scenario, StopCondition, COEFFICIENT, FSPEC};
//! use event_sim::SimDuration;
//! use flexray::config::ClusterConfig;
//!
//! let matrix = SweepMatrix {
//!     cluster: ClusterConfig::paper_dynamic(50),
//!     static_messages: workloads::bbw::message_set(),
//!     dynamic_messages: workloads::sae::message_set(
//!         workloads::sae::IdRange::StartingAt(20),
//!         1,
//!     ),
//!     policies: vec![COEFFICIENT, FSPEC],
//!     scenarios: vec![Scenario::ber7()],
//!     seeds: vec![1, 2],
//!     stop: StopCondition::Horizon(SimDuration::from_millis(20)),
//!     seed_strategy: SeedStrategy::PerCell,
//! };
//! let report = SweepRunner::new(matrix).threads(2).run().unwrap();
//! assert_eq!(report.cells.len(), 4);
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use event_sim::rng;
use flexray::config::ClusterConfig;
use flexray::signal::Signal;
use metrics::{Aggregate, AggregateSummary};
use workloads::AperiodicMessage;

use crate::policy::{CoefficientOptions, SchedulerError};
use crate::registry::PolicyRef;
use crate::runner::{RunConfig, RunReport, Runner, StopCondition};
use crate::scenario::Scenario;

/// How a cell's master seed is obtained from the matrix seed list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedStrategy {
    /// Every cell uses its matrix seed verbatim. This is the paper-figure
    /// convention: both policies (and both scenarios) of a comparison see
    /// identical workload phases and fault processes, so differences are
    /// attributable to the scheduler alone.
    Shared,
    /// Each `{scenario × seed}` pair derives an independent seed via
    /// [`event_sim::rng::derive`], decorrelating the cells of a
    /// statistical sweep. Policies still share the derived seed, keeping
    /// policy comparisons paired.
    PerCell,
}

/// The full cross product a sweep executes.
#[derive(Debug, Clone)]
pub struct SweepMatrix {
    /// Cluster geometry (shared by every cell).
    pub cluster: ClusterConfig,
    /// Static (time-triggered) workload.
    pub static_messages: Vec<Signal>,
    /// Dynamic (event-triggered) workload.
    pub dynamic_messages: Vec<AperiodicMessage>,
    /// Policies under test (axis 1).
    pub policies: Vec<PolicyRef>,
    /// Fault/reliability scenarios (axis 2).
    pub scenarios: Vec<Scenario>,
    /// Master seeds (axis 3).
    pub seeds: Vec<u64>,
    /// Stop condition (shared by every cell).
    pub stop: StopCondition,
    /// Seed derivation discipline.
    pub seed_strategy: SeedStrategy,
}

/// Coordinates of one cell inside a [`SweepMatrix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellCoord {
    /// Index into [`SweepMatrix::policies`].
    pub policy: usize,
    /// Index into [`SweepMatrix::scenarios`].
    pub scenario: usize,
    /// Index into [`SweepMatrix::seeds`].
    pub seed: usize,
}

impl SweepMatrix {
    /// Number of cells in the cross product.
    pub fn cell_count(&self) -> usize {
        self.policies.len() * self.scenarios.len() * self.seeds.len()
    }

    /// All coordinates in canonical matrix order (policy-major, then
    /// scenario, then seed). [`SweepReport::cells`] and the sweep
    /// fingerprint follow this order regardless of execution order.
    pub fn coords(&self) -> Vec<CellCoord> {
        let mut coords = Vec::with_capacity(self.cell_count());
        for policy in 0..self.policies.len() {
            for scenario in 0..self.scenarios.len() {
                for seed in 0..self.seeds.len() {
                    coords.push(CellCoord {
                        policy,
                        scenario,
                        seed,
                    });
                }
            }
        }
        coords
    }

    /// The master seed the cell at `coord` runs under.
    ///
    /// # Panics
    /// Panics if `coord` is out of bounds for this matrix.
    pub fn cell_seed(&self, coord: CellCoord) -> u64 {
        let master = self.seeds[coord.seed];
        match self.seed_strategy {
            SeedStrategy::Shared => master,
            SeedStrategy::PerCell => rng::derive(
                master,
                self.scenarios[coord.scenario].name,
                coord.seed as u64,
            ),
        }
    }

    /// Builds the standalone [`RunConfig`] of one cell — the same config
    /// whether the cell runs inside a 64-thread sweep or alone in
    /// [`SweepRunner::replay`].
    ///
    /// # Panics
    /// Panics if `coord` is out of bounds for this matrix.
    pub fn config(&self, coord: CellCoord) -> RunConfig {
        RunConfig {
            cluster: self.cluster.clone(),
            scenario: self.scenarios[coord.scenario].clone(),
            static_messages: self.static_messages.clone(),
            dynamic_messages: self.dynamic_messages.clone(),
            policy: self.policies[coord.policy],
            stop: self.stop,
            seed: self.cell_seed(coord),
            trace: Default::default(),
        }
    }
}

/// One executed cell: its coordinates, seed, report and fingerprint.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Where in the matrix this cell sits.
    pub coord: CellCoord,
    /// Policy the cell ran (resolved from the coordinate).
    pub policy: PolicyRef,
    /// Scenario label (resolved from the coordinate).
    pub scenario: &'static str,
    /// The derived master seed the cell ran under.
    pub seed: u64,
    /// [`RunReport::fingerprint`] of the report.
    pub fingerprint: u64,
    /// The full measured report.
    pub report: RunReport,
}

/// Distribution summaries of one `{policy × scenario}` group over its
/// seeds.
#[derive(Debug, Clone)]
pub struct GroupSummary {
    /// Policy of the group.
    pub policy: PolicyRef,
    /// Scenario label of the group.
    pub scenario: &'static str,
    /// Number of cells (seeds) aggregated.
    pub cells: u64,
    /// Makespan / horizon in simulated seconds.
    pub running_time_s: AggregateSummary,
    /// Combined two-channel allocated utilization (fraction).
    pub utilization: AggregateSummary,
    /// Mean static-segment latency per run, milliseconds.
    pub static_latency_ms: AggregateSummary,
    /// Mean dynamic-segment latency per run, milliseconds.
    pub dynamic_latency_ms: AggregateSummary,
    /// Combined deadline miss ratio (fraction).
    pub miss_ratio: AggregateSummary,
    /// Delivered / produced fraction.
    pub delivery_ratio: AggregateSummary,
}

/// Everything a sweep produced.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Per-cell outcomes in canonical matrix order (independent of the
    /// execution interleaving).
    pub cells: Vec<CellOutcome>,
    /// Per-`{policy × scenario}` distribution summaries, in matrix order.
    pub groups: Vec<GroupSummary>,
    /// Worker threads the sweep ran with.
    pub threads: usize,
    /// Wall-clock time of the parallel execution.
    pub wall_clock: Duration,
}

impl SweepReport {
    /// Digest over every cell fingerprint in matrix order.
    ///
    /// This is the sweep determinism contract in one number: it must be
    /// byte-identical for the same matrix at any thread count.
    pub fn fingerprint(&self) -> u64 {
        let mut d = rng::Digest::new();
        for cell in &self.cells {
            d.push(cell.fingerprint);
        }
        d.finish()
    }

    /// The outcome at `coord`, if the sweep contains it.
    pub fn cell(&self, coord: CellCoord) -> Option<&CellOutcome> {
        self.cells.iter().find(|c| c.coord == coord)
    }
}

/// Executes many [`RunConfig`]s across worker threads, preserving input
/// order in the output.
///
/// This is the primitive beneath [`SweepRunner`]; the figure generators in
/// the bench crate use it directly because their cells vary axes (cluster
/// geometry, stop condition, workload) that a [`SweepMatrix`] holds fixed.
/// Each runner is built and consumed entirely on its worker thread, so
/// results are bitwise identical to serial execution.
///
/// # Errors
/// Returns the first [`SchedulerError`] (in input order) if any
/// configuration fails to build a schedule.
pub fn run_parallel(
    configs: Vec<RunConfig>,
    threads: usize,
) -> Result<Vec<RunReport>, SchedulerError> {
    let cells = configs
        .into_iter()
        .map(|cfg| (cfg, CoefficientOptions::default()))
        .collect();
    run_parallel_with_options(cells, threads)
}

/// Like [`run_parallel`], with explicit per-cell [`CoefficientOptions`]
/// (the ablation experiments vary feature switches per cell).
///
/// # Errors
/// Returns the first [`SchedulerError`] (in input order) if any
/// configuration fails to build a schedule.
///
/// # Panics
/// Panics if `threads` is zero.
pub fn run_parallel_with_options(
    cells: Vec<(RunConfig, CoefficientOptions)>,
    threads: usize,
) -> Result<Vec<RunReport>, SchedulerError> {
    assert!(threads > 0, "at least one worker thread required");
    let n = cells.len();
    let threads = threads.min(n.max(1));
    let cells: Vec<Mutex<Option<(RunConfig, CoefficientOptions)>>> =
        cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let results: Vec<Mutex<Option<Result<RunReport, SchedulerError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= n {
                    break;
                }
                let (config, options) = cells[index]
                    .lock()
                    .expect("cell mutex")
                    .take()
                    .expect("each cell is claimed exactly once");
                let outcome = Runner::new_with_options(config, options).map(Runner::run);
                *results[index].lock().expect("result mutex") = Some(outcome);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result mutex")
                .expect("every cell was executed")
        })
        .collect()
}

/// Worker count used when none is requested: all available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Drives a [`SweepMatrix`] to a [`SweepReport`]. See the module docs.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    matrix: SweepMatrix,
    threads: Option<usize>,
}

impl SweepRunner {
    /// Wraps a matrix with the default worker count (available
    /// parallelism, capped at the cell count).
    pub fn new(matrix: SweepMatrix) -> Self {
        SweepRunner {
            matrix,
            threads: None,
        }
    }

    /// Overrides the worker count (1 forces serial execution).
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "at least one worker thread required");
        self.threads = Some(threads);
        self
    }

    /// The matrix this runner executes.
    pub fn matrix(&self) -> &SweepMatrix {
        &self.matrix
    }

    /// The worker count [`run`](Self::run) will use.
    pub fn effective_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(default_threads)
            .min(self.matrix.cell_count().max(1))
    }

    /// Executes every cell and aggregates.
    ///
    /// # Errors
    /// Returns the first [`SchedulerError`] (in matrix order) if any cell
    /// is unschedulable.
    pub fn run(&self) -> Result<SweepReport, SchedulerError> {
        let coords = self.matrix.coords();
        let threads = self.effective_threads();
        let configs: Vec<RunConfig> = coords.iter().map(|&c| self.matrix.config(c)).collect();
        let started = std::time::Instant::now();
        let reports = run_parallel(configs, threads)?;
        let wall_clock = started.elapsed();

        let cells: Vec<CellOutcome> = coords
            .iter()
            .zip(reports)
            .map(|(&coord, report)| CellOutcome {
                coord,
                policy: self.matrix.policies[coord.policy],
                scenario: self.matrix.scenarios[coord.scenario].name,
                seed: self.matrix.cell_seed(coord),
                fingerprint: report.fingerprint(),
                report,
            })
            .collect();

        let mut groups =
            Vec::with_capacity(self.matrix.policies.len() * self.matrix.scenarios.len());
        for (pi, &policy) in self.matrix.policies.iter().enumerate() {
            for (si, scenario) in self.matrix.scenarios.iter().enumerate() {
                let members = cells
                    .iter()
                    .filter(|c| c.coord.policy == pi && c.coord.scenario == si);
                groups.push(summarize_group(policy, scenario.name, members));
            }
        }

        Ok(SweepReport {
            cells,
            groups,
            threads,
            wall_clock,
        })
    }

    /// Re-runs a single cell from its sweep coordinates — the replay entry
    /// point of the determinism contract. The returned outcome must carry
    /// the same fingerprint as the cell in any [`SweepReport`] of the same
    /// matrix.
    ///
    /// # Errors
    /// Returns [`SchedulerError`] if the cell is unschedulable.
    ///
    /// # Panics
    /// Panics if `coord` is out of bounds for the matrix.
    pub fn replay(&self, coord: CellCoord) -> Result<CellOutcome, SchedulerError> {
        let report = Runner::new(self.matrix.config(coord))?.run();
        Ok(CellOutcome {
            coord,
            policy: self.matrix.policies[coord.policy],
            scenario: self.matrix.scenarios[coord.scenario].name,
            seed: self.matrix.cell_seed(coord),
            fingerprint: report.fingerprint(),
            report,
        })
    }
}

fn summarize_group<'a>(
    policy: PolicyRef,
    scenario: &'static str,
    members: impl Iterator<Item = &'a CellOutcome>,
) -> GroupSummary {
    let mut running_time_s = Aggregate::new();
    let mut utilization = Aggregate::new();
    let mut static_latency_ms = Aggregate::new();
    let mut dynamic_latency_ms = Aggregate::new();
    let mut miss_ratio = Aggregate::new();
    let mut delivery_ratio = Aggregate::new();
    let mut cells = 0u64;
    for cell in members {
        cells += 1;
        let r = &cell.report;
        running_time_s.record(r.running_time.as_secs_f64());
        utilization.record(r.utilization);
        static_latency_ms.record(r.static_latency.mean_millis_f64());
        dynamic_latency_ms.record(r.dynamic_latency.mean_millis_f64());
        miss_ratio.record(r.miss_ratio());
        delivery_ratio.record(if r.produced == 0 {
            0.0
        } else {
            r.delivered as f64 / r.produced as f64
        });
    }
    GroupSummary {
        policy,
        scenario,
        cells,
        running_time_s: running_time_s.summary(),
        utilization: utilization.summary(),
        static_latency_ms: static_latency_ms.summary(),
        dynamic_latency_ms: dynamic_latency_ms.summary(),
        miss_ratio: miss_ratio.summary(),
        delivery_ratio: delivery_ratio.summary(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{COEFFICIENT, FSPEC};
    use event_sim::SimDuration;

    fn small_matrix(seed_strategy: SeedStrategy) -> SweepMatrix {
        SweepMatrix {
            cluster: ClusterConfig::paper_dynamic(50),
            static_messages: workloads::bbw::message_set(),
            dynamic_messages: workloads::sae::message_set(
                workloads::sae::IdRange::StartingAt(20),
                1,
            ),
            policies: vec![COEFFICIENT, FSPEC],
            scenarios: vec![Scenario::ber7(), Scenario::fault_free()],
            seeds: vec![11, 22],
            stop: StopCondition::Horizon(SimDuration::from_millis(25)),
            seed_strategy,
        }
    }

    #[test]
    fn coords_enumerate_the_cross_product_in_order() {
        let m = small_matrix(SeedStrategy::PerCell);
        let coords = m.coords();
        assert_eq!(coords.len(), m.cell_count());
        assert_eq!(coords.len(), 8);
        assert_eq!(
            coords[0],
            CellCoord {
                policy: 0,
                scenario: 0,
                seed: 0
            }
        );
        assert_eq!(
            coords[1],
            CellCoord {
                policy: 0,
                scenario: 0,
                seed: 1
            }
        );
        assert_eq!(
            coords[7],
            CellCoord {
                policy: 1,
                scenario: 1,
                seed: 1
            }
        );
    }

    #[test]
    fn shared_seeds_pass_through_and_pair_policies() {
        let m = small_matrix(SeedStrategy::Shared);
        for coord in m.coords() {
            assert_eq!(m.cell_seed(coord), m.seeds[coord.seed]);
        }
    }

    #[test]
    fn per_cell_seeds_pair_policies_but_separate_scenarios() {
        let m = small_matrix(SeedStrategy::PerCell);
        let co = CellCoord {
            policy: 0,
            scenario: 0,
            seed: 0,
        };
        let fs = CellCoord {
            policy: 1,
            scenario: 0,
            seed: 0,
        };
        assert_eq!(m.cell_seed(co), m.cell_seed(fs), "comparisons stay paired");
        let other_scenario = CellCoord {
            policy: 0,
            scenario: 1,
            seed: 0,
        };
        assert_ne!(m.cell_seed(co), m.cell_seed(other_scenario));
        let other_seed = CellCoord {
            policy: 0,
            scenario: 0,
            seed: 1,
        };
        assert_ne!(m.cell_seed(co), m.cell_seed(other_seed));
    }

    #[test]
    fn sweep_aggregates_every_group() {
        let report = SweepRunner::new(small_matrix(SeedStrategy::PerCell))
            .threads(2)
            .run()
            .unwrap();
        assert_eq!(report.cells.len(), 8);
        assert_eq!(report.groups.len(), 4);
        for group in &report.groups {
            assert_eq!(group.cells, 2);
            assert!(group.utilization.mean > 0.0);
            assert!(group.running_time_s.min <= group.running_time_s.p50);
            assert!(group.running_time_s.p50 <= group.running_time_s.max);
        }
        assert_eq!(report.threads, 2);
    }

    #[test]
    fn parallel_execution_matches_serial_bit_for_bit() {
        let serial = SweepRunner::new(small_matrix(SeedStrategy::PerCell))
            .threads(1)
            .run()
            .unwrap();
        let parallel = SweepRunner::new(small_matrix(SeedStrategy::PerCell))
            .threads(4)
            .run()
            .unwrap();
        assert_eq!(serial.fingerprint(), parallel.fingerprint());
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(a.coord, b.coord);
            assert_eq!(a.fingerprint, b.fingerprint);
        }
    }

    #[test]
    fn replay_reproduces_a_cell() {
        let runner = SweepRunner::new(small_matrix(SeedStrategy::PerCell)).threads(4);
        let report = runner.run().unwrap();
        let coord = CellCoord {
            policy: 1,
            scenario: 0,
            seed: 1,
        };
        let replayed = runner.replay(coord).unwrap();
        let original = report.cell(coord).expect("cell exists");
        assert_eq!(replayed.fingerprint, original.fingerprint);
        assert_eq!(replayed.seed, original.seed);
        assert_eq!(replayed.report.delivered, original.report.delivered);
    }

    #[test]
    fn run_parallel_preserves_input_order() {
        let m = small_matrix(SeedStrategy::Shared);
        let configs: Vec<RunConfig> = m.coords().iter().map(|&c| m.config(c)).collect();
        let expected: Vec<u64> = configs
            .iter()
            .map(|c| Runner::new(c.clone()).unwrap().run().fingerprint())
            .collect();
        let got: Vec<u64> = run_parallel(configs, 4)
            .unwrap()
            .iter()
            .map(RunReport::fingerprint)
            .collect();
        assert_eq!(expected, got);
    }

    #[test]
    fn effective_threads_cap_at_cell_count() {
        let runner = SweepRunner::new(small_matrix(SeedStrategy::PerCell)).threads(64);
        assert_eq!(runner.effective_threads(), 8);
        assert!(SweepRunner::new(small_matrix(SeedStrategy::PerCell)).effective_threads() >= 1);
    }

    #[test]
    fn fingerprint_differs_between_policies() {
        let report = SweepRunner::new(small_matrix(SeedStrategy::PerCell))
            .threads(4)
            .run()
            .unwrap();
        let co = report
            .cell(CellCoord {
                policy: 0,
                scenario: 0,
                seed: 0,
            })
            .unwrap();
        let fs = report
            .cell(CellCoord {
                policy: 1,
                scenario: 0,
                seed: 0,
            })
            .unwrap();
        assert_ne!(co.fingerprint, fs.fingerprint);
    }
}
