//! The scheduler engine shared by every policy in the
//! [`crate::registry`] zoo.
//!
//! One [`Scheduler`] — a [`flexray::bus::TrafficSource`] driven
//! cycle-by-cycle by the bus engine — implements every registered
//! policy: the policy's [`crate::PolicyBehavior`] flag set selects which
//! mechanisms engage, and its retransmission plan supplies the copy
//! counts. For the legacy trio the flags reproduce the original schemes
//! exactly:
//!
//! | | FSPEC (baseline) | HOSA-like | CoEfficient |
//! |---|---|---|---|
//! | static primaries | slot on A + blanket mirror on B | same | slot on A only |
//! | retransmission | uniform best-effort copies of **every** message, serialized fresh-first through the message's own slots (CHI depth 3) | the B mirror only | differentiated `k_z` copies placed in **stolen static slack** (copies that fit nowhere are dropped and counted — the selective criterion) |
//! | idle static slots | stay idle (segments scheduled separately) | stay idle | serve backlogged dynamic messages and early copies of released static instances (cooperative scheduling) |
//! | dynamic messages | channel A, plus best-effort copies | both channels, one extra copy | channel chosen per message, plus differentiated copies |
//!
//! The newer zoo members recombine the same mechanisms: `greedy` runs
//! CoEfficient's machinery under a uniform best-effort plan,
//! `slack-steal` steals slack health-blind (no shedding, degraded mode
//! or failover), and `matchup` dedicates degraded-mode slack to a hard
//! recovery schedule until the health monitor reports nominal again.

use std::collections::{BTreeMap, HashMap};

#[cfg(test)]
use event_sim::SimDuration;
use event_sim::SimTime;
use flexray::bus::{OutboundPayload, TrafficSource, TransmissionOutcome};
use flexray::codec::{payload_bytes_for, FrameCoding};
use flexray::config::ClusterConfig;
use flexray::schedule::MessageId;
use flexray::signal::Signal;
use flexray::ChannelId;
use observe::{EventKind, Tracer};
use reliability::monitor::HealthState;
use reliability::{MessageReliability, RetransmissionPlanner};
use workloads::{AperiodicMessage, Criticality};

use crate::assignment::{AllocationError, OccupantKind, SlotPosition, StaticAllocation};
use crate::instance::{InstanceId, InstanceTracker, MessageClass};
use crate::registry::{PolicyBehavior, PolicyRef};
use crate::scenario::Scenario;

/// Feature switches for the cooperative machinery, used by the ablation
/// experiments. The defaults enable everything (the full scheme). Only
/// policies whose [`PolicyBehavior::uses_options`] flag is set honour
/// them; the fixed baselines always run under the defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoefficientOptions {
    /// Send one early copy of a released static instance through free
    /// slack before its primary slot arrives.
    pub early_copies: bool,
    /// Serve the backlogged dynamic queue through idle static slots
    /// (cooperative scheduling of both segments).
    pub cooperative_dynamic: bool,
    /// Place stolen-slack copies on channel B as well as A (the
    /// dual-channel design of §III-D).
    pub dual_channel: bool,
}

impl Default for CoefficientOptions {
    fn default() -> Self {
        CoefficientOptions {
            early_copies: true,
            cooperative_dynamic: true,
            dual_channel: true,
        }
    }
}

/// FSPEC's per-message CHI backlog depth: a communication controller
/// buffers only this many staged instances; older ones are overwritten by
/// fresh data (and count as lost if they were never delivered).
const FSPEC_QUEUE_DEPTH: usize = 3;

/// Namespace offset separating dynamic-message tracker ids from static
/// signal ids (a dynamic frame id `f` is tracked as `DYN_NS + f`).
const DYN_NS: u32 = 0x0001_0000;

/// Tracker id of a dynamic message.
fn dyn_key(frame_id: u16) -> u32 {
    DYN_NS + u32::from(frame_id)
}

#[derive(Debug, Clone)]
struct StaticInfo {
    signal: Signal,
    payload_bytes: u16,
    wire_bits: u64,
    /// CoEfficient: copies per instance that found no static slack and go
    /// through the dynamic segment. FSPEC: its uniform best-effort count.
    dynamic_copies: u32,
    /// The message's primary slot pattern, precomputed at construction so
    /// the early-copy scan does not pay the allocation's linear primary
    /// lookup once per candidate per free slot.
    primary: Option<SlotPosition>,
}

#[derive(Debug, Clone)]
struct DynInfo {
    spec: AperiodicMessage,
    payload_bytes: u16,
    /// Wire bits of this payload under *static-slot* coding (no DTS) —
    /// what the slack-steal fit check compares against the slot capacity.
    /// Precomputed so the steal scan is a plain integer compare per entry.
    static_wire_bits: u64,
    /// Extra transmissions per instance (beyond the first).
    copies: u32,
    /// Preferred channel of the first transmission.
    home_channel: ChannelId,
}

#[derive(Debug, Clone)]
struct DynPending {
    frame_id: u16,
    instance: InstanceId,
    payload_bytes: u16,
    /// Static-slot wire bits of the payload (see
    /// [`DynInfo::static_wire_bits`]), carried into the queue entry.
    static_wire_bits: u64,
    /// Entries older than this are purged: retransmitting data a full
    /// generation past its deadline serves nobody, and unreachable frame
    /// ids (dynamic ids the slot counter can never reach within the
    /// minislot budget) would otherwise pile up forever.
    expires: SimTime,
}

/// A scheduler for one policy over one workload; drives the bus engine as
/// its [`TrafficSource`]. Construct via [`Scheduler::new`], produce
/// instances with [`produce_static`](Self::produce_static) /
/// [`produce_dynamic`](Self::produce_dynamic) (the [`crate::Runner`] does
/// this), and read results from [`tracker`](Self::tracker).
#[derive(Debug)]
pub struct Scheduler {
    policy: PolicyRef,
    /// The policy's mechanism switchboard, cached at construction.
    behavior: PolicyBehavior,
    options: CoefficientOptions,
    config: ClusterConfig,
    alloc: StaticAllocation,
    /// Ordered so iteration (the early-copy scan) is deterministic: ties on
    /// deadline resolve to the lowest message id, not HashMap bucket order.
    statics: BTreeMap<MessageId, StaticInfo>,
    dynamics: HashMap<u16, DynInfo>,
    tracker: InstanceTracker,
    /// Per-channel dynamic queues, sorted by (frame id, seq).
    queues: [Vec<(u64, DynPending)>; 2],
    next_seq: u64,
    /// In-flight instance ids, consumed by `on_outcome` in staging order.
    in_flight: std::collections::VecDeque<InstanceId>,
    /// CoEfficient: planned copies that found no fitting slack and were
    /// dropped (the selective criterion: a copy only exists where slack
    /// fits it). Reported for reliability accounting.
    dropped_copies: u64,
    /// FSPEC: per static message, the FIFO of instances awaiting their
    /// transmissions through the message's *own* slot pattern. Because
    /// FSPEC schedules the segments separately, retransmission copies can
    /// only ride the pre-defined schedule — fresh instances queue behind
    /// the copies of older ones, which is exactly the serialization the
    /// paper blames for FSPEC's running time and latency.
    fspec_static_queues: HashMap<MessageId, std::collections::VecDeque<(InstanceId, u32)>>,
    /// FSPEC: channel transmissions each static instance needs
    /// (1 primary + the uniform best-effort copy count; A and B mirrors
    /// each count as one transmission).
    fspec_tx_needed: u32,
    /// Statistics: dynamic-segment transmissions that were retransmission
    /// copies (not primaries).
    copy_transmissions: u64,
    /// Statistics: dynamic messages served through stolen static slots.
    cooperative_static_serves: u64,
    /// Statistics: early static copies sent through free slack.
    early_copies_sent: u64,
    /// Statistics: free static positions offered while dynamic backlog
    /// was pending (each such offer is a steal attempt; it is granted
    /// when an entry fits the slot, denied otherwise).
    steal_attempts: u64,
    /// Statistics: steal attempts where no backlogged entry fit the
    /// static slot capacity.
    steal_denied: u64,
    /// Effective bus health (set by the runner from its reliability
    /// monitors before each cycle). Only CoEfficient acts on it; the
    /// baselines have no degraded mode.
    health: HealthState,
    /// Per-channel health ([A, B]) driving dual-channel failover.
    channel_health: [HealthState; 2],
    /// Degraded mode: soft dynamic instances shed (produced and tracked,
    /// but refused admission to the transmit queues).
    soft_shed: u64,
    /// Degraded mode: extra hard-message retransmission copies sent
    /// through slack freed by shedding (beyond the Theorem-1 plan and the
    /// single nominal early copy).
    degraded_extra_copies: u64,
    /// Failover: hard frames mirrored into their slot on the healthy
    /// channel while the owning channel was in `Storm`.
    failover_mirrors: u64,
    /// Structured event tracer (disabled by default; see
    /// [`set_tracer`](Self::set_tracer)).
    tracer: Tracer,
}

/// Errors constructing a [`Scheduler`].
#[derive(Debug)]
pub enum SchedulerError {
    /// Static allocation failed.
    Allocation(AllocationError),
    /// A dynamic frame id is not above the static slot range.
    DynamicIdInStaticRange(u16),
}

impl std::fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerError::Allocation(e) => write!(f, "static allocation failed: {e}"),
            SchedulerError::DynamicIdInStaticRange(id) => {
                write!(f, "dynamic frame id {id} lies inside the static slot range")
            }
        }
    }
}

impl std::error::Error for SchedulerError {}

impl From<AllocationError> for SchedulerError {
    fn from(e: AllocationError) -> Self {
        SchedulerError::Allocation(e)
    }
}

impl Scheduler {
    /// Builds the scheduler with default [`CoefficientOptions`]: computes
    /// the retransmission plan for the scenario's reliability goal and
    /// lays out the static allocation.
    ///
    /// # Errors
    /// [`SchedulerError`] on allocation failure or id-space collisions.
    pub fn new(
        policy: PolicyRef,
        config: ClusterConfig,
        coding: FrameCoding,
        scenario: &Scenario,
        static_messages: &[Signal],
        dynamic_messages: &[AperiodicMessage],
    ) -> Result<Self, SchedulerError> {
        Self::new_with_options(
            policy,
            config,
            coding,
            scenario,
            static_messages,
            dynamic_messages,
            CoefficientOptions::default(),
        )
    }

    /// Like [`Scheduler::new`] with explicit feature switches (used by the
    /// ablation experiments; the options only affect policies whose
    /// [`PolicyBehavior::uses_options`] flag is set — for the fixed
    /// baselines they are pinned to the defaults).
    ///
    /// # Errors
    /// [`SchedulerError`] on allocation failure or id-space collisions.
    #[allow(clippy::too_many_arguments)]
    pub fn new_with_options(
        policy: PolicyRef,
        config: ClusterConfig,
        coding: FrameCoding,
        scenario: &Scenario,
        static_messages: &[Signal],
        dynamic_messages: &[AperiodicMessage],
        options: CoefficientOptions,
    ) -> Result<Self, SchedulerError> {
        let behavior = policy.behavior();
        // Baselines with a fixed scheme ignore the ablation switches.
        let options = if behavior.uses_options {
            options
        } else {
            CoefficientOptions::default()
        };
        // --- id space checks -------------------------------------------------
        let slots = config.static_slot_count() as u16;
        for d in dynamic_messages {
            if d.frame_id <= slots {
                return Err(SchedulerError::DynamicIdInStaticRange(d.frame_id));
            }
        }

        // --- reliability plan ------------------------------------------------
        // p_z is computed over the on-wire frame length: that is what the
        // fault injector corrupts.
        let mut rel: Vec<MessageReliability> = Vec::new();
        for s in static_messages {
            let wire = coding.message_wire_bits(u64::from(s.size_bits), false) as u32;
            rel.push(MessageReliability::from_ber(
                s.id,
                wire,
                s.period,
                scenario.ber,
            ));
        }
        for d in dynamic_messages {
            let wire = coding.message_wire_bits(u64::from(d.size_bits), true) as u32;
            rel.push(MessageReliability::from_ber(
                dyn_key(d.frame_id),
                wire,
                d.min_interarrival,
                scenario.ber,
            ));
        }
        let planner = RetransmissionPlanner::new(rel).unit(scenario.unit);
        let goal = scenario.reliability_goal();

        // Per-message copy counts come from the policy's plan.
        let counts: Vec<(MessageId, u32)> = policy.plan_copies(&planner, goal);
        let count_of = |id: u32| -> u32 {
            counts
                .iter()
                .find(|(m, _)| *m == id)
                .map(|&(_, k)| k)
                .unwrap_or(0)
        };

        // --- static allocation -----------------------------------------------
        let alloc = if behavior.mirror_allocation {
            // Mirror schemes blanket-mirror every primary on channel B and
            // steal no slack.
            StaticAllocation::build(&config, &coding, static_messages, &[], true)?
        } else {
            let static_counts: Vec<(MessageId, u32)> = static_messages
                .iter()
                .map(|s| (s.id, count_of(s.id)))
                .collect();
            StaticAllocation::build_with_channels(
                &config,
                &coding,
                static_messages,
                &static_counts,
                false,
                options.dual_channel,
            )?
        };

        // --- message info maps -----------------------------------------------
        // FSPEC pushes every static copy through the message's own slot
        // pattern (separate scheduling); its per-instance transmission
        // demand is 1 primary + the uniform copy count, while its
        // dynamic-queue copy count for statics is zero.
        let fspec_k = counts.first().map(|&(_, k)| k).unwrap_or(0);
        let fspec_tx_needed = 1 + fspec_k;

        let mut statics = BTreeMap::new();
        let mut fspec_static_queues = HashMap::new();
        for s in static_messages {
            let wire = coding.message_wire_bits(u64::from(s.size_bits), true);
            let spilled = if behavior.mirror_allocation {
                0
            } else {
                alloc
                    .spill()
                    .iter()
                    .find(|(m, _)| *m == s.id)
                    .map(|&(_, k)| k)
                    .unwrap_or(0)
            };
            statics.insert(
                s.id,
                StaticInfo {
                    signal: s.clone(),
                    payload_bytes: payload_bytes_for(u64::from(s.size_bits)) as u16,
                    wire_bits: wire,
                    dynamic_copies: spilled,
                    primary: alloc.primary_of(s.id),
                },
            );
            fspec_static_queues.insert(
                s.id,
                std::collections::VecDeque::with_capacity(FSPEC_QUEUE_DEPTH + 1),
            );
        }

        let mut dynamics = HashMap::new();
        for (i, d) in dynamic_messages.iter().enumerate() {
            // Dual-channel schemes balance first transmissions across the
            // two channels (unless the ablation disables B).
            let home_channel = if behavior.balance_dynamic_channels && options.dual_channel {
                if i % 2 == 0 {
                    ChannelId::A
                } else {
                    ChannelId::B
                }
            } else {
                ChannelId::A
            };
            let payload_bytes = payload_bytes_for(u64::from(d.size_bits)) as u16;
            dynamics.insert(
                d.frame_id,
                DynInfo {
                    spec: d.clone(),
                    payload_bytes,
                    // Static-slot coding has no DTS, so the steal fit check
                    // always uses the default coding's static wire length.
                    static_wire_bits: FrameCoding::default()
                        .frame_wire_bits(u64::from(payload_bytes), false),
                    copies: count_of(dyn_key(d.frame_id)),
                    home_channel,
                },
            );
        }

        Ok(Scheduler {
            policy,
            behavior,
            options,
            config,
            alloc,
            statics,
            dynamics,
            tracker: InstanceTracker::new(),
            // Pre-sized so the steady-state cycle loop never grows them:
            // the dynamic backlog is bounded by the purge window and the
            // in-flight staging depth is one slot deep in practice.
            queues: [Vec::with_capacity(64), Vec::with_capacity(64)],
            next_seq: 0,
            in_flight: std::collections::VecDeque::with_capacity(8),
            dropped_copies: 0,
            fspec_static_queues,
            fspec_tx_needed,
            copy_transmissions: 0,
            cooperative_static_serves: 0,
            early_copies_sent: 0,
            steal_attempts: 0,
            steal_denied: 0,
            health: HealthState::Nominal,
            channel_health: [HealthState::Nominal; 2],
            soft_shed: 0,
            degraded_extra_copies: 0,
            failover_mirrors: 0,
            tracer: Tracer::disabled(),
        })
    }

    /// Attaches a structured event tracer. The scheduler emits steal
    /// grants/denials, early and retransmission copies, degraded-mode
    /// shedding and failover mirrors through it. Tracing observes — it
    /// never changes a scheduling decision.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The policy this scheduler runs.
    pub fn policy(&self) -> PolicyRef {
        self.policy
    }

    /// The mechanism switchboard the scheduler runs under (the policy's
    /// [`PolicyBehavior`], cached at construction).
    pub fn behavior(&self) -> PolicyBehavior {
        self.behavior
    }

    /// The static allocation (read-only).
    pub fn allocation(&self) -> &StaticAllocation {
        &self.alloc
    }

    /// The instance tracker with all production/delivery records.
    pub fn tracker(&self) -> &InstanceTracker {
        &self.tracker
    }

    /// Dynamic messages served through stolen static slots (CoEfficient's
    /// cooperative scheduling).
    pub fn cooperative_static_serves(&self) -> u64 {
        self.cooperative_static_serves
    }

    /// Early static copies sent through free slack.
    pub fn early_copies_sent(&self) -> u64 {
        self.early_copies_sent
    }

    /// Retransmission copies actually transmitted.
    pub fn copy_transmissions(&self) -> u64 {
        self.copy_transmissions
    }

    /// CoEfficient: planned copies dropped for lack of fitting slack.
    pub fn dropped_copies(&self) -> u64 {
        self.dropped_copies
    }

    /// Free static positions offered to the dynamic backlog (slack-steal
    /// attempts). `steal_attempts == cooperative_static_serves +
    /// steal_denied` by construction.
    pub fn steal_attempts(&self) -> u64 {
        self.steal_attempts
    }

    /// Steal attempts where no backlogged entry fit the slot.
    pub fn steal_denied(&self) -> u64 {
        self.steal_denied
    }

    /// Updates the health states the degraded-mode logic acts on: the
    /// effective bus health plus the per-channel classifications
    /// (`[A, B]`). The [`crate::Runner`] calls this once per cycle from
    /// its reliability monitors; only policies with health-driven
    /// behaviour flags (shedding, degraded copies, failover, match-up
    /// recovery) change behaviour in response.
    pub fn set_health(&mut self, overall: HealthState, per_channel: [HealthState; 2]) {
        self.health = overall;
        self.channel_health = per_channel;
    }

    /// The effective bus health last supplied via
    /// [`set_health`](Self::set_health).
    pub fn health(&self) -> HealthState {
        self.health
    }

    /// Soft dynamic instances shed by the degraded mode (produced but
    /// never enqueued; they count as losses in the tracker).
    pub fn soft_shed(&self) -> u64 {
        self.soft_shed
    }

    /// Extra hard-message copies sent while degraded, beyond the
    /// Theorem-1 plan and the nominal early copy.
    pub fn degraded_extra_copies(&self) -> u64 {
        self.degraded_extra_copies
    }

    /// Hard frames mirrored to the healthy channel during a channel
    /// storm.
    pub fn failover_mirrors(&self) -> u64 {
        self.failover_mirrors
    }

    /// The scheduler's steal/early-copy decisions as the shared
    /// [`tasks::ScheduleCounters`] record (preemptions stay zero: FlexRay
    /// slots are non-preemptive).
    pub fn schedule_counters(&self) -> tasks::ScheduleCounters {
        tasks::ScheduleCounters {
            preemptions: 0,
            steal_attempts: self.steal_attempts,
            steal_granted: self.cooperative_static_serves,
            steal_denied: self.steal_denied,
            early_copies: self.early_copies_sent,
            degraded_sheds: self.soft_shed,
        }
    }

    /// Total backlogged dynamic-segment entries across both channels.
    pub fn dynamic_backlog(&self) -> usize {
        self.queues[0].len() + self.queues[1].len()
    }

    /// Pre-reserves tracker capacity for `instances` productions, so the
    /// steady-state cycle loop never grows the instance store. The
    /// [`crate::Runner`] sizes this from its stop condition.
    pub fn reserve_instances(&mut self, instances: usize) {
        self.tracker.reserve(instances);
    }

    /// Bytes currently committed to the scheduler's reusable scratch
    /// buffers (dynamic queues, in-flight staging, FSPEC slot queues) —
    /// capacity, not length, so it reports the high-water footprint the
    /// allocation-free cycle loop runs in. The `bench cycles` harness
    /// records this per policy.
    pub fn scratch_bytes(&self) -> u64 {
        use std::mem::size_of;
        let queues: usize = self
            .queues
            .iter()
            .map(|q| q.capacity() * size_of::<(u64, DynPending)>())
            .sum();
        let in_flight = self.in_flight.capacity() * size_of::<InstanceId>();
        let fspec: usize = self
            .fspec_static_queues
            .values()
            .map(|q| q.capacity() * size_of::<(InstanceId, u32)>())
            .sum();
        (queues + in_flight + fspec) as u64
    }

    /// All pending transmission work: the dynamic backlog plus (for FSPEC)
    /// static instances still owing transmissions through their slots.
    /// A run has drained when this reaches zero after production ends.
    pub fn pending_work(&self) -> usize {
        self.dynamic_backlog()
            + self
                .fspec_static_queues
                .values()
                .map(std::collections::VecDeque::len)
                .sum::<usize>()
    }

    /// Registers a newly produced static message instance. The paper's
    /// model: hard-deadline periodic task release.
    ///
    /// # Panics
    /// Panics if `message` is not a configured static message.
    pub fn produce_static(&mut self, message: MessageId, now: SimTime) -> InstanceId {
        let info = self.statics.get(&message).expect("unknown static message");
        let deadline = now + info.signal.deadline;
        let expires = deadline + info.signal.period;
        let (copies, payload) = (info.dynamic_copies, info.payload_bytes);
        let instance = self
            .tracker
            .produce(message, MessageClass::Static, now, deadline);
        let _ = (payload, expires);
        if self.behavior.own_slot_serialization {
            // All transmissions (primary + best-effort copies) are
            // serialized through the message's own slot pattern; the
            // CHI buffers only FSPEC_QUEUE_DEPTH instances, so a
            // congested queue overwrites its oldest staging.
            let q = self
                .fspec_static_queues
                .get_mut(&message)
                .expect("queue exists for every static message");
            if q.len() >= FSPEC_QUEUE_DEPTH {
                q.pop_front();
            }
            q.push_back((instance, self.fspec_tx_needed));
        } else {
            // Planned copies that found no fitting static slack are
            // dropped: the selective criterion only steals slack whose
            // length fits the segment (§III-F). The reliability plan
            // degrades gracefully; the drop count is reported. (For
            // mirror schemes the spill is zero by construction — their
            // static redundancy is already in the allocation.)
            self.dropped_copies += u64::from(copies);
        }
        instance
    }

    /// Registers a newly produced dynamic message instance (soft aperiodic
    /// arrival) and enqueues its transmissions.
    ///
    /// # Panics
    /// Panics if `frame_id` is not a configured dynamic message.
    pub fn produce_dynamic(&mut self, frame_id: u16, now: SimTime) -> InstanceId {
        let info = self
            .dynamics
            .get(&frame_id)
            .expect("unknown dynamic message");
        let deadline = now + info.spec.deadline;
        let expires = deadline + info.spec.min_interarrival;
        let (copies, home, payload) = (info.copies, info.home_channel, info.payload_bytes);
        let static_wire_bits = info.static_wire_bits;
        let criticality = info.spec.criticality;
        let instance =
            self.tracker
                .produce(dyn_key(frame_id), MessageClass::Dynamic, now, deadline);
        // Degraded mode (criticality-shedding policies only): shed soft
        // traffic by criticality — `Stressed` drops the lowest class,
        // `Storm` keeps only the highest. The instance stays tracked (a
        // shed arrival is a miss the metrics must see); nominal service
        // resumes automatically once the monitor recovers, because
        // admission is re-evaluated per arrival.
        if self.behavior.criticality_shedding {
            let kept_floor = match self.health {
                HealthState::Nominal => None,
                HealthState::Stressed => Some(Criticality::Medium),
                HealthState::Storm => Some(Criticality::High),
            };
            if let Some(floor) = kept_floor {
                if criticality < floor {
                    self.soft_shed += 1;
                    if self.tracer.is_enabled() {
                        self.tracer.emit(
                            now,
                            EventKind::SoftShed {
                                frame_id: u64::from(frame_id),
                                criticality: criticality as u8,
                            },
                        );
                    }
                    return instance;
                }
            }
        }
        // First transmission on the home channel, copies alternating from
        // the other one.
        self.enqueue_dynamic(
            home,
            DynPending {
                frame_id,
                instance,
                payload_bytes: payload,
                static_wire_bits,
                expires,
            },
        );
        for c in 0..copies {
            let channel = if c % 2 == 0 { home.other() } else { home };
            self.enqueue_dynamic(
                channel,
                DynPending {
                    frame_id,
                    instance,
                    payload_bytes: payload,
                    static_wire_bits,
                    expires,
                },
            );
        }
        instance
    }

    /// Drops queued dynamic entries whose usefulness window has passed
    /// (one full generation beyond the deadline). The [`crate::Runner`]
    /// calls this at each cycle start; undelivered purged instances count
    /// as deadline misses in the final accounting.
    pub fn purge_expired(&mut self, now: SimTime) {
        for q in &mut self.queues {
            q.retain(|(_, e)| e.expires > now);
        }
    }

    fn enqueue_dynamic(&mut self, channel: ChannelId, p: DynPending) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let q = &mut self.queues[channel.index()];
        let pos = q
            .iter()
            .position(|(_, e)| e.frame_id > p.frame_id)
            .unwrap_or(q.len());
        q.insert(pos, (seq, p));
    }

    /// Whether the instance is still within its generation window at `t`
    /// (stale instances are not retransmitted — this is what drains the
    /// static side once production stops).
    fn static_instance_window_open(&self, instance: InstanceId, t: SimTime) -> bool {
        let inst = self.tracker.get(instance);
        let period = self.statics[&inst.message].signal.period;
        t < inst.produced_at + period
    }

    /// CoEfficient's cooperative use of a free static position: first a
    /// backlogged dynamic entry that fits, then an early copy of a released
    /// static instance whose primary occurrence is still ahead.
    fn cooperative_fill(
        &mut self,
        cycle: u64,
        cycle_counter: u8,
        slot: u16,
        channel: ChannelId,
        slot_start: SimTime,
    ) -> Option<OutboundPayload> {
        let capacity = self.config.static_slot_capacity_bits();
        if !self.options.dual_channel && channel == ChannelId::B {
            return None; // single-channel ablation leaves B untouched
        }
        // 0. Degraded mode: the slack freed by shedding soft traffic is
        // re-planned into extra copies of hard messages — undelivered
        // static instances get retransmitted ahead of any dynamic backlog
        // (the online counterpart of the offline Theorem-1 plan).
        if self.behavior.degraded_hard_copies
            && self.health.is_degraded()
            && self.options.early_copies
        {
            if let Some(payload) = self.degraded_hard_copy(slot_start, capacity) {
                if self.tracer.is_enabled() {
                    self.tracer.emit(
                        slot_start,
                        EventKind::DegradedCopy {
                            channel: channel.index() as u8,
                            slot: u64::from(slot),
                            frame_id: u64::from(payload.message),
                        },
                    );
                }
                return Some(payload);
            }
        }
        // Match-up recovery: while the bus is degraded, free slack serves
        // *only* the hard recovery schedule above — no dynamic steals, no
        // nominal early copies — until the health monitor reports the
        // schedule has matched up with the nominal plan again.
        if self.behavior.matchup_recovery && self.health.is_degraded() {
            return None;
        }
        // 1. Serve the dynamic backlog (lowest frame id first). A free
        // position offered while backlog is pending is a steal attempt:
        // granted if an entry fits the slot, denied otherwise.
        if self.options.cooperative_dynamic && !self.queues[channel.index()].is_empty() {
            self.steal_attempts += 1;
            let q = &mut self.queues[channel.index()];
            // The static-coding fit size is precomputed per message (see
            // `DynInfo::static_wire_bits`), so this scan is compare-only.
            if let Some(pos) = q.iter().position(|(_, e)| e.static_wire_bits <= capacity) {
                let (_, entry) = q.remove(pos);
                self.cooperative_static_serves += 1;
                let inst = self.tracker.get(entry.instance);
                self.in_flight.push_back(entry.instance);
                if self.tracer.is_enabled() {
                    self.tracer.emit(
                        slot_start,
                        EventKind::StealGranted {
                            channel: channel.index() as u8,
                            slot: u64::from(slot),
                            frame_id: u64::from(inst.message),
                        },
                    );
                }
                return Some(OutboundPayload {
                    message: inst.message,
                    payload_bytes: entry.payload_bytes,
                    produced_at: inst.produced_at,
                });
            }
            self.steal_denied += 1;
            if self.tracer.is_enabled() {
                self.tracer.emit(
                    slot_start,
                    EventKind::StealDenied {
                        channel: channel.index() as u8,
                        slot: u64::from(slot),
                    },
                );
            }
        }
        if !self.options.early_copies {
            return None;
        }
        // 2. Early copy: a static instance released but with its primary
        // occurrence still ahead in this matrix period.
        let mut best: Option<(SimTime, MessageId, InstanceId, u16)> = None;
        for (id, info) in &self.statics {
            let Some(instance) = self.tracker.newest_at_or_before(*id, slot_start) else {
                continue;
            };
            let inst = self.tracker.get(instance);
            if inst.early_copies > 0 {
                continue;
            }
            if !self.static_instance_window_open(instance, slot_start) {
                continue;
            }
            let primary = info.primary.expect("static has a primary");
            // Has the primary already fired for this instance? The next
            // primary occurrence at/after production must still be ahead
            // of this slot.
            let next_primary = next_occurrence_at_or_after(
                &self.config,
                primary.slot,
                primary.base_cycle,
                primary.repetition,
                inst.produced_at,
            );
            if next_primary <= slot_start {
                continue; // primary already had its chance
            }
            if (cycle, slot) >= occurrence_cycle_slot(&self.config, next_primary) {
                continue;
            }
            let _ = cycle_counter;
            if info.wire_bits > capacity {
                continue;
            }
            let key = inst.deadline;
            if best.is_none_or(|(d, ..)| key < d) {
                best = Some((key, *id, instance, info.payload_bytes));
            }
        }
        if let Some((_, message, instance, payload_bytes)) = best {
            self.tracker.get_mut(instance).early_copies += 1;
            self.early_copies_sent += 1;
            if self.tracer.is_enabled() {
                self.tracer.emit(
                    slot_start,
                    EventKind::EarlyCopy {
                        channel: channel.index() as u8,
                        slot: u64::from(slot),
                        frame_id: u64::from(message),
                    },
                );
            }
            let produced_at = self.tracker.get(instance).produced_at;
            self.in_flight.push_back(instance);
            return Some(OutboundPayload {
                message,
                payload_bytes,
                produced_at,
            });
        }
        None
    }

    /// Degraded-mode online re-plan: one more copy of the most urgent
    /// undelivered static instance through this free position. The
    /// per-instance opportunistic budget (`early_copies`) rises from the
    /// nominal 1 to 2 (`Stressed`) or 3 (`Storm`), and — unlike the
    /// nominal early copy — the primary may already have fired and been
    /// corrupted: a burst eating the planned copies is exactly the case
    /// the offline Theorem-1 plan cannot cover.
    fn degraded_hard_copy(
        &mut self,
        slot_start: SimTime,
        capacity: u64,
    ) -> Option<OutboundPayload> {
        let budget = match self.health {
            HealthState::Nominal => return None,
            HealthState::Stressed => 2,
            HealthState::Storm => 3,
        };
        let mut best: Option<(SimTime, MessageId, InstanceId, u16)> = None;
        for (id, info) in &self.statics {
            if info.wire_bits > capacity {
                continue;
            }
            let Some(instance) = self.tracker.newest_at_or_before(*id, slot_start) else {
                continue;
            };
            let inst = self.tracker.get(instance);
            if inst.is_delivered() || inst.early_copies >= budget {
                continue;
            }
            if slot_start >= inst.deadline {
                continue; // past the deadline, a copy cannot save it
            }
            if !self.static_instance_window_open(instance, slot_start) {
                continue;
            }
            let deadline = self.tracker.get(instance).deadline;
            if best.is_none_or(|(d, ..)| deadline < d) {
                best = Some((deadline, *id, instance, info.payload_bytes));
            }
        }
        let (_, message, instance, payload_bytes) = best?;
        self.tracker.get_mut(instance).early_copies += 1;
        self.degraded_extra_copies += 1;
        self.copy_transmissions += 1;
        let produced_at = self.tracker.get(instance).produced_at;
        self.in_flight.push_back(instance);
        Some(OutboundPayload {
            message,
            payload_bytes,
            produced_at,
        })
    }

    /// Dual-channel failover: when the *other* channel is degraded and
    /// strictly sicker than this one, this channel is the only one whose
    /// transmissions can be trusted — the sick channel's share of an
    /// instance's protection (its primary, or its planned copies) is
    /// effectively stranded in the burst. A free position here therefore
    /// re-hosts the most urgent undelivered hard instance, ahead of any
    /// planned occurrence still scheduled on the storming channel. The
    /// per-instance budget is one step above the `Storm` degraded-copy
    /// budget, so a failover retransmission is available even after the
    /// degraded re-plan spent its allowance.
    fn failover_mirror(
        &mut self,
        channel: ChannelId,
        slot_start: SimTime,
    ) -> Option<OutboundPayload> {
        const FAILOVER_BUDGET: u32 = 4;
        if !self.options.dual_channel {
            return None;
        }
        let other = channel.other();
        if !self.channel_health[other.index()].is_degraded()
            || self.channel_health[other.index()] <= self.channel_health[channel.index()]
        {
            return None;
        }
        let capacity = self.config.static_slot_capacity_bits();
        let mut best: Option<(SimTime, MessageId, InstanceId, u16)> = None;
        for (id, info) in &self.statics {
            if info.wire_bits > capacity {
                continue;
            }
            let Some(instance) = self.tracker.newest_at_or_before(*id, slot_start) else {
                continue;
            };
            let inst = self.tracker.get(instance);
            if inst.is_delivered() || inst.early_copies >= FAILOVER_BUDGET {
                continue;
            }
            if slot_start >= inst.deadline {
                continue;
            }
            if !self.static_instance_window_open(instance, slot_start) {
                continue;
            }
            let deadline = inst.deadline;
            if best.is_none_or(|(d, ..)| deadline < d) {
                best = Some((deadline, *id, instance, info.payload_bytes));
            }
        }
        let (_, message, instance, payload_bytes) = best?;
        self.tracker.get_mut(instance).early_copies += 1;
        self.failover_mirrors += 1;
        self.copy_transmissions += 1;
        let produced_at = self.tracker.get(instance).produced_at;
        self.in_flight.push_back(instance);
        Some(OutboundPayload {
            message,
            payload_bytes,
            produced_at,
        })
    }
}

/// The first instant ≥ `t` at which the `(slot, base, rep)` pattern
/// occurs.
///
/// Closed form, no cycle-stepping: the repetition is a power of two
/// dividing 64, so the counter condition `(cycle mod 64) mod rep == base`
/// is exactly `cycle mod rep == base`; the first matching cycle at or
/// after `cycle_of(t)` follows by modular arithmetic, and only that cycle
/// can place the slot before `t` (every later match starts a full cycle
/// later), in which case the next match is `rep` cycles on.
fn next_occurrence_at_or_after(
    config: &ClusterConfig,
    slot: u16,
    base: u8,
    rep: u8,
    t: SimTime,
) -> SimTime {
    let (base, rep) = (u64::from(base), u64::from(rep));
    debug_assert!(rep.is_power_of_two() && rep <= 64 && base < rep);
    let cycle = config.cycle_of(t);
    let aligned = cycle + (base + rep - cycle % rep) % rep;
    let start = config.static_slot_start(aligned, u64::from(slot));
    if start >= t {
        start
    } else {
        config.static_slot_start(aligned + rep, u64::from(slot))
    }
}

///`(cycle, slot)` coordinates of an occurrence instant.
fn occurrence_cycle_slot(config: &ClusterConfig, t: SimTime) -> (u64, u16) {
    let cycle = config.cycle_of(t);
    let offset = t - config.cycle_start(cycle);
    let slot = offset.as_nanos() / config.static_slot_duration().as_nanos() + 1;
    (cycle, slot as u16)
}

impl TrafficSource for Scheduler {
    fn static_frame(
        &mut self,
        cycle: u64,
        cycle_counter: u8,
        slot: u16,
        channel: ChannelId,
    ) -> Option<OutboundPayload> {
        let slot_start = self.config.static_slot_start(cycle, u64::from(slot));
        if let Some(occ) = self.alloc.occupant(channel, slot, cycle_counter) {
            if self.behavior.own_slot_serialization {
                // Fresh data first (the CHI always stages the latest
                // instance): the newest entry still owing its initial A/B
                // transmission pair wins the occurrence; otherwise the
                // occurrence is *spare* and serves the oldest entry still
                // owing best-effort copies. Because FSPEC schedules the
                // segments separately, copies can only ride these spare
                // occurrences of the message's own slot.
                let fresh_threshold = self.fspec_tx_needed.saturating_sub(2);
                let q = self
                    .fspec_static_queues
                    .get_mut(&occ.message)
                    .expect("queue exists for every static message");
                let idx = (0..q.len())
                    .rev()
                    .find(|&i| q[i].1 > fresh_threshold)
                    .or_else(|| (!q.is_empty()).then_some(0))?;
                let entry = &mut q[idx];
                let instance = entry.0;
                entry.1 -= 1;
                let is_copy = entry.1 + 1 < self.fspec_tx_needed;
                if entry.1 == 0 {
                    q.remove(idx);
                }
                if is_copy {
                    self.copy_transmissions += 1;
                    if self.tracer.is_enabled() {
                        self.tracer.emit(
                            slot_start,
                            EventKind::RetransmissionCopy {
                                channel: channel.index() as u8,
                                frame_id: u64::from(occ.message),
                            },
                        );
                    }
                }
                let info = &self.statics[&occ.message];
                let payload = OutboundPayload {
                    message: occ.message,
                    payload_bytes: info.payload_bytes,
                    produced_at: self.tracker.get(instance).produced_at,
                };
                self.in_flight.push_back(instance);
                return Some(payload);
            }
            // Window path: transmit the instance whose generation window
            // contains this slot — the newest released at or before the
            // slot (the production batch may run ahead of the bus cycle).
            let instance = self.tracker.newest_at_or_before(occ.message, slot_start)?;
            if !self.static_instance_window_open(instance, slot_start) {
                return None; // window passed or production ended
            }
            let info = &self.statics[&occ.message];
            if occ.kind != OccupantKind::Primary {
                self.copy_transmissions += 1;
                if self.tracer.is_enabled() {
                    self.tracer.emit(
                        slot_start,
                        EventKind::RetransmissionCopy {
                            channel: channel.index() as u8,
                            frame_id: u64::from(occ.message),
                        },
                    );
                }
            }
            let payload = OutboundPayload {
                message: occ.message,
                payload_bytes: info.payload_bytes,
                produced_at: self.tracker.get(instance).produced_at,
            };
            self.in_flight.push_back(instance);
            return Some(payload);
        }
        if !self.behavior.cooperative_segments {
            // Separate-segments schemes leave free static positions idle.
            return None;
        }
        // Failover outranks cooperative filling: a hard frame stranded on
        // a storming channel takes the free position before any soft
        // backlog or opportunistic copy.
        if self.behavior.failover {
            if let Some(payload) = self.failover_mirror(channel, slot_start) {
                if self.tracer.is_enabled() {
                    self.tracer.emit(
                        slot_start,
                        EventKind::FailoverMirror {
                            channel: channel.index() as u8,
                            slot: u64::from(slot),
                            frame_id: u64::from(payload.message),
                        },
                    );
                }
                return Some(payload);
            }
        }
        self.cooperative_fill(cycle, cycle_counter, slot, channel, slot_start)
    }

    fn dynamic_frame(
        &mut self,
        cycle: u64,
        channel: ChannelId,
        slot_counter: u64,
        max_payload_bytes: u16,
    ) -> Option<OutboundPayload> {
        let Ok(frame_id) = u16::try_from(slot_counter) else {
            return None;
        };
        let q = &mut self.queues[channel.index()];
        let pos = q
            .iter()
            .position(|(_, e)| e.frame_id == frame_id && e.payload_bytes <= max_payload_bytes)?;
        let (_, entry) = q.remove(pos);
        let inst = self.tracker.get(entry.instance);
        if inst.class == MessageClass::Static {
            self.copy_transmissions += 1;
            if self.tracer.is_enabled() {
                // The scheduler doesn't know the exact minislot here; the
                // dynamic-segment start keeps the stamp between this
                // cycle's static slots and the MinislotFrame that follows.
                self.tracer.emit(
                    self.config.cycle_start(cycle) + self.config.dynamic_segment_offset(),
                    EventKind::RetransmissionCopy {
                        channel: channel.index() as u8,
                        frame_id: u64::from(inst.message),
                    },
                );
            }
        }
        let payload = OutboundPayload {
            message: inst.message,
            payload_bytes: entry.payload_bytes,
            produced_at: inst.produced_at,
        };
        self.in_flight.push_back(entry.instance);
        Some(payload)
    }

    fn on_outcome(&mut self, outcome: &TransmissionOutcome) {
        let instance = self
            .in_flight
            .pop_front()
            .expect("outcome without a staged frame");
        debug_assert_eq!(self.tracker.get(instance).message, outcome.message);
        self.tracker.record_transmission(
            instance,
            outcome.start + outcome.duration,
            outcome.corrupted,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{COEFFICIENT, FSPEC, GREEDY, HOSA, MATCHUP, SLACK_STEAL};
    use flexray::bus::BusEngine;

    fn config() -> ClusterConfig {
        ClusterConfig::paper_dynamic(50)
    }

    /// The pre-refactor cycle-stepping implementation, kept as the oracle
    /// for the closed-form `next_occurrence_at_or_after`.
    fn next_occurrence_by_stepping(
        config: &ClusterConfig,
        slot: u16,
        base: u8,
        rep: u8,
        t: SimTime,
    ) -> SimTime {
        let mut cycle = config.cycle_of(t);
        loop {
            if config.cycle_counter(cycle) % rep == base {
                let start = config.static_slot_start(cycle, u64::from(slot));
                if start >= t {
                    return start;
                }
            }
            cycle += 1;
        }
    }

    #[test]
    fn closed_form_occurrence_matches_cycle_stepping() {
        let cfg = config();
        let cycle_ns = cfg.cycle_duration().as_nanos();
        let last_slot = cfg.static_slot_count() as u16;
        for rep in [1u8, 2, 4, 8, 16, 32, 64] {
            for base in (0..rep).step_by(3.max(rep as usize / 4)) {
                for slot in [1u16, last_slot / 2 + 1, last_slot] {
                    // Probe instants scattered across several matrix
                    // periods, including exact slot starts and the
                    // nanosecond on either side of one.
                    for k in 0..260u64 {
                        let t = SimTime::ZERO + SimDuration::from_nanos(k * cycle_ns / 3 + k % 5);
                        let want = next_occurrence_by_stepping(&cfg, slot, base, rep, t);
                        let got = next_occurrence_at_or_after(&cfg, slot, base, rep, t);
                        assert_eq!(got, want, "slot {slot} base {base} rep {rep} t {t:?}");
                    }
                    let exact = next_occurrence_by_stepping(
                        &cfg,
                        slot,
                        base,
                        rep,
                        SimTime::ZERO + SimDuration::from_nanos(65 * cycle_ns),
                    );
                    for delta in [0i64, 1, -1] {
                        let t = exact + SimDuration::from_nanos(delta.unsigned_abs());
                        let t = if delta < 0 {
                            exact - SimDuration::from_nanos(1)
                        } else {
                            t
                        };
                        assert_eq!(
                            next_occurrence_at_or_after(&cfg, slot, base, rep, t),
                            next_occurrence_by_stepping(&cfg, slot, base, rep, t),
                        );
                    }
                }
            }
        }
    }

    fn statics() -> Vec<Signal> {
        vec![
            Signal::new(
                1,
                SimDuration::from_millis(1),
                SimDuration::ZERO,
                SimDuration::from_millis(1),
                400,
            ),
            Signal::new(
                2,
                SimDuration::from_millis(4),
                SimDuration::ZERO,
                SimDuration::from_millis(4),
                800,
            ),
        ]
    }

    fn dynamics() -> Vec<AperiodicMessage> {
        // Frame ids must be reachable by the dynamic slot counter, which
        // starts at 19 in the 18-slot paper_dynamic geometry.
        vec![
            AperiodicMessage::new(
                20,
                SimDuration::from_millis(50),
                SimDuration::from_millis(50),
                32,
            ),
            AperiodicMessage::new(
                21,
                SimDuration::from_millis(50),
                SimDuration::from_millis(50),
                64,
            ),
        ]
    }

    fn scheduler(policy: PolicyRef) -> Scheduler {
        Scheduler::new(
            policy,
            config(),
            FrameCoding::default(),
            &Scenario::ber7(),
            &statics(),
            &dynamics(),
        )
        .unwrap()
    }

    #[test]
    fn coefficient_places_copies_in_slack() {
        let s = scheduler(COEFFICIENT);
        // The reliability goal at BER 1e-7 forces copies for the frequent
        // static messages; they must live in the matrix, not the spill.
        assert!(
            !s.allocation().copies().is_empty(),
            "expected stolen-slack copies"
        );
        assert!(
            s.allocation().spill().is_empty(),
            "no spill expected at this load"
        );
    }

    #[test]
    fn fspec_mirrors_instead_of_stealing() {
        let s = scheduler(FSPEC);
        assert!(s.allocation().copies().is_empty());
        let p = s.allocation().primary_of(1).unwrap();
        let b = s
            .allocation()
            .occupant(ChannelId::B, p.slot, p.base_cycle)
            .unwrap();
        assert_eq!(b.kind, OccupantKind::Mirror);
        // FSPEC's best-effort copies are serialized through the message's
        // own slots: each instance owes more than one transmission.
        assert!(s.fspec_tx_needed > 1);
        assert_eq!(s.statics[&1].dynamic_copies, 0);
    }

    #[test]
    fn dynamic_ids_validated() {
        let bad = vec![AperiodicMessage::new(
            3, // inside the 18-slot static range
            SimDuration::from_millis(50),
            SimDuration::from_millis(50),
            32,
        )];
        let err = Scheduler::new(
            COEFFICIENT,
            config(),
            FrameCoding::default(),
            &Scenario::ber7(),
            &statics(),
            &bad,
        )
        .unwrap_err();
        assert!(matches!(err, SchedulerError::DynamicIdInStaticRange(3)));
    }

    #[test]
    fn static_and_dynamic_ids_may_overlap() {
        // Static signal ids and dynamic frame ids live in separate
        // namespaces (the tracker offsets dynamic keys), so a static id 20
        // coexists with dynamic frame id 20.
        let statics = vec![Signal::new(
            20,
            SimDuration::from_millis(1),
            SimDuration::ZERO,
            SimDuration::from_millis(1),
            100,
        )];
        let mut s = Scheduler::new(
            COEFFICIENT,
            config(),
            FrameCoding::default(),
            &Scenario::ber7(),
            &statics,
            &dynamics(),
        )
        .unwrap();
        s.produce_static(20, SimTime::ZERO);
        s.produce_dynamic(20, SimTime::ZERO);
        let mut engine = BusEngine::new(config());
        engine.run_cycle(0, &mut s);
        assert_eq!(s.tracker().produced(), 2);
        assert_eq!(s.tracker().delivered(), 2);
    }

    #[test]
    fn end_to_end_cycle_delivers_static_instances() {
        let mut s = scheduler(COEFFICIENT);
        s.produce_static(1, SimTime::ZERO);
        s.produce_static(2, SimTime::ZERO);
        let mut engine = BusEngine::new(config());
        engine.run_cycle(0, &mut s);
        assert_eq!(s.tracker().delivered(), 2);
        for inst in s.tracker().instances() {
            assert!(inst.latency().unwrap() < SimDuration::from_millis(1));
        }
    }

    #[test]
    fn dynamic_messages_flow_through_the_dynamic_segment() {
        let mut s = scheduler(FSPEC);
        s.produce_dynamic(20, SimTime::ZERO);
        s.produce_dynamic(21, SimTime::ZERO);
        let mut engine = BusEngine::new(config());
        engine.run_cycle(0, &mut s);
        assert_eq!(s.tracker().delivered(), 2, "primaries delivered in cycle 0");
        // FTDMA transmits one frame per id per cycle per channel, so the
        // redundant copies need a few more cycles to drain.
        for c in 1..6 {
            engine.run_cycle(c, &mut s);
        }
        assert_eq!(s.dynamic_backlog(), 0, "primaries and copies drained");
    }

    #[test]
    fn cooperative_fill_serves_dynamic_backlog_from_static_slack() {
        let mut s = scheduler(COEFFICIENT);
        // Flood the dynamic queue with more work than the dynamic segment
        // can carry in one cycle, then check static slack absorbed some.
        for _ in 0..30 {
            s.produce_dynamic(20, SimTime::ZERO);
            s.produce_dynamic(21, SimTime::ZERO);
        }
        let mut engine = BusEngine::new(config());
        engine.run_cycle(0, &mut s);
        assert!(
            s.cooperative_static_serves() > 0,
            "static slack must serve dynamic backlog"
        );
        let c = s.schedule_counters();
        assert!(c.steal_attempts > 0);
        assert!(
            c.steal_identity_holds(),
            "granted {} + denied {} != attempts {}",
            c.steal_granted,
            c.steal_denied,
            c.steal_attempts
        );
    }

    #[test]
    fn steal_counters_stay_zero_without_backlog() {
        let mut s = scheduler(COEFFICIENT);
        s.produce_static(1, SimTime::ZERO);
        let mut engine = BusEngine::new(config());
        engine.run_cycle(0, &mut s);
        assert_eq!(s.steal_attempts(), 0, "no dynamic backlog, no attempts");
        assert!(s.schedule_counters().steal_identity_holds());
    }

    #[test]
    fn fspec_leaves_static_slack_idle() {
        let mut s = scheduler(FSPEC);
        for _ in 0..30 {
            s.produce_dynamic(20, SimTime::ZERO);
        }
        let mut engine = BusEngine::new(config());
        engine.run_cycle(0, &mut s);
        assert_eq!(s.cooperative_static_serves(), 0);
        assert!(engine.stats(ChannelId::A).idle_static_slots > 0);
    }

    #[test]
    fn early_copy_accelerates_static_release() {
        // Message 2 (rep 4) releases at t=0 but its primary may sit in a
        // later cycle; a free earlier slot should carry an early copy.
        let mut s = scheduler(COEFFICIENT);
        s.produce_static(2, SimTime::ZERO);
        let mut engine = BusEngine::new(config());
        for c in 0..4 {
            engine.run_cycle(c, &mut s);
        }
        // Delivered well before the worst case (4 cycles).
        let inst = &s.tracker().instances()[0];
        assert!(inst.is_delivered());
    }

    #[test]
    fn stale_instances_are_not_retransmitted_after_production() {
        let mut s = scheduler(COEFFICIENT);
        s.produce_static(1, SimTime::ZERO); // 1 ms period
        let mut engine = BusEngine::new(config());
        engine.run_cycle(0, &mut s); // within the window
        let sent_after_first = s.tracker().instances()[0].transmissions;
        assert!(sent_after_first >= 1);
        engine.run_cycle(1, &mut s); // window closed (t ≥ 1 ms)
        engine.run_cycle(2, &mut s);
        assert_eq!(
            s.tracker().instances()[0].transmissions,
            sent_after_first,
            "stale instance kept transmitting"
        );
    }

    #[test]
    fn hosa_mirrors_and_stays_out_of_slack() {
        let s = scheduler(HOSA);
        // Mirrors on B, like FSPEC...
        let p = s.allocation().primary_of(1).unwrap();
        assert_eq!(
            s.allocation()
                .occupant(ChannelId::B, p.slot, p.base_cycle)
                .unwrap()
                .kind,
            OccupantKind::Mirror
        );
        // ...but no stolen-slack copies and no own-slot serialization.
        assert!(s.allocation().copies().is_empty());
        assert_eq!(s.fspec_tx_needed, 2, "HOSA plans exactly one extra copy");
    }

    #[test]
    fn hosa_delivers_through_the_window_path() {
        let mut s = scheduler(HOSA);
        s.produce_static(1, SimTime::ZERO);
        s.produce_dynamic(20, SimTime::ZERO);
        let mut engine = BusEngine::new(config());
        engine.run_cycle(0, &mut s);
        assert_eq!(s.tracker().delivered(), 2);
        assert_eq!(
            s.cooperative_static_serves(),
            0,
            "HOSA must not steal slack"
        );
        assert_eq!(s.early_copies_sent(), 0);
    }

    #[test]
    fn option_flags_disable_their_mechanisms() {
        use crate::policy::CoefficientOptions;
        let mk = |options: CoefficientOptions| {
            Scheduler::new_with_options(
                COEFFICIENT,
                config(),
                FrameCoding::default(),
                &Scenario::ber7(),
                &statics(),
                &dynamics(),
                options,
            )
            .unwrap()
        };

        // No early copies: flood-free run sends none.
        let mut s = mk(CoefficientOptions {
            early_copies: false,
            ..Default::default()
        });
        s.produce_static(2, SimTime::ZERO);
        let mut engine = BusEngine::new(config());
        for c in 0..4 {
            engine.run_cycle(c, &mut s);
        }
        assert_eq!(s.early_copies_sent(), 0);

        // No cooperative dynamic: a flooded queue is never served statically.
        let mut s = mk(CoefficientOptions {
            cooperative_dynamic: false,
            ..Default::default()
        });
        for _ in 0..30 {
            s.produce_dynamic(20, SimTime::ZERO);
        }
        let mut engine = BusEngine::new(config());
        engine.run_cycle(0, &mut s);
        assert_eq!(s.cooperative_static_serves(), 0);

        // Single channel: nothing allocated or filled on B.
        let s = mk(CoefficientOptions {
            dual_channel: false,
            ..Default::default()
        });
        assert_eq!(s.allocation().occupancy(ChannelId::B), 0.0);
        for c in s.allocation().copies() {
            assert_eq!(c.position.channel, ChannelId::A);
        }
    }

    #[test]
    fn outcome_order_matches_staging_order() {
        // The in-flight FIFO must stay consistent across a full cycle with
        // mixed static/dynamic traffic on both channels.
        let mut s = scheduler(COEFFICIENT);
        s.produce_static(1, SimTime::ZERO);
        s.produce_static(2, SimTime::ZERO);
        s.produce_dynamic(20, SimTime::ZERO);
        s.produce_dynamic(21, SimTime::ZERO);
        let mut engine = BusEngine::new(config());
        engine.run_cycle(0, &mut s);
        assert!(s.in_flight.is_empty(), "every staged frame got its outcome");
    }

    #[test]
    fn greedy_places_uniform_counts_into_slack() {
        let s = scheduler(GREEDY);
        // Greedy runs CoEfficient's machinery (no mirror, copies live in
        // stolen slack)...
        assert_eq!(s.behavior(), COEFFICIENT.behavior());
        assert!(
            !s.allocation().copies().is_empty(),
            "greedy must place its copies in slack"
        );
        // ...but under an undifferentiated plan: every message gets the
        // same copy count. Rebuild the planner the scheduler saw and ask
        // the policies directly.
        let scenario = Scenario::ber7();
        let coding = FrameCoding::default();
        let rel: Vec<reliability::MessageReliability> = statics()
            .iter()
            .map(|m| {
                reliability::MessageReliability::from_ber(
                    m.id,
                    coding.message_wire_bits(u64::from(m.size_bits), false) as u32,
                    m.period,
                    scenario.ber,
                )
            })
            .chain(dynamics().iter().map(|d| {
                reliability::MessageReliability::from_ber(
                    100 + u32::from(d.frame_id),
                    coding.message_wire_bits(u64::from(d.size_bits), true) as u32,
                    d.min_interarrival,
                    scenario.ber,
                )
            }))
            .collect();
        let planner = RetransmissionPlanner::new(rel).unit(scenario.unit);
        let goal = scenario.reliability_goal();
        let plan = GREEDY.plan_copies(&planner, goal);
        let k = plan.first().expect("non-empty plan").1;
        assert!(
            k > 0 && plan.iter().all(|&(_, kk)| kk == k),
            "greedy's plan is blanket-uniform: {plan:?}"
        );
        // CoEfficient's differentiated Theorem-1 plan meets the same goal
        // with fewer copies overall — greedy's blanket uniform k
        // over-provisions, which is its best-effort character.
        let co_plan = COEFFICIENT.plan_copies(&planner, goal);
        assert_ne!(plan, co_plan, "the plans must actually differ");
        let total = |p: &[(MessageId, u32)]| p.iter().map(|&(_, k)| u64::from(k)).sum::<u64>();
        assert!(
            total(&co_plan) < total(&plan),
            "differentiated plan must be leaner than blanket uniform: {co_plan:?} vs {plan:?}"
        );
    }

    #[test]
    fn slack_steal_is_health_blind() {
        let mut s = scheduler(SLACK_STEAL);
        s.set_health(HealthState::Storm, [HealthState::Storm; 2]);
        for _ in 0..30 {
            s.produce_dynamic(20, SimTime::ZERO);
        }
        let mut engine = BusEngine::new(config());
        engine.run_cycle(0, &mut s);
        assert_eq!(s.soft_shed(), 0, "no criticality shedding");
        assert_eq!(s.degraded_extra_copies(), 0, "no degraded re-plan");
        assert_eq!(s.failover_mirrors(), 0, "no failover");
        assert!(
            s.cooperative_static_serves() > 0,
            "slack stealing continues regardless of bus health"
        );
    }

    #[test]
    fn matchup_dedicates_degraded_slack_to_hard_recovery() {
        let mut s = scheduler(MATCHUP);
        // Backlog admitted while nominal...
        for _ in 0..30 {
            s.produce_dynamic(20, SimTime::ZERO);
        }
        s.produce_static(1, SimTime::ZERO);
        // ...then a storm hits: free slack serves only the hard recovery
        // schedule, never the soft backlog.
        s.set_health(HealthState::Storm, [HealthState::Storm; 2]);
        let mut engine = BusEngine::new(config());
        engine.run_cycle(0, &mut s);
        assert_eq!(s.steal_attempts(), 0, "no steals during match-up recovery");
        assert_eq!(s.cooperative_static_serves(), 0);
        // Nominal service resumes once the monitor recovers.
        s.set_health(HealthState::Nominal, [HealthState::Nominal; 2]);
        engine.run_cycle(1, &mut s);
        assert!(
            s.cooperative_static_serves() > 0,
            "cooperative service must resume after the storm"
        );
    }

    #[test]
    fn fixed_baselines_ignore_the_ablation_switches() {
        // FSPEC's scheme is not parameterized: passing ablation options
        // must not strip its channel-B mirror.
        let s = Scheduler::new_with_options(
            FSPEC,
            config(),
            FrameCoding::default(),
            &Scenario::ber7(),
            &statics(),
            &dynamics(),
            CoefficientOptions {
                dual_channel: false,
                early_copies: false,
                cooperative_dynamic: false,
            },
        )
        .unwrap();
        assert!(
            s.allocation().occupancy(ChannelId::B) > 0.0,
            "FSPEC keeps its mirror regardless of options"
        );
    }
}
