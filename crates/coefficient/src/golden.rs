//! Golden-corpus regression gating.
//!
//! A *golden corpus* is a checked-in record of a `{policy × scenario ×
//! seed}` sweep: for every cell the exact run [`fingerprint`], a metric
//! envelope (miss ratio by traffic class, delivered bandwidth, latency
//! statistics with per-group percentiles), and the structured
//! [`RunCounters`]. Verification re-runs the same matrix and holds the
//! fresh results against the record:
//!
//! * **fingerprints must be byte-identical** — the determinism contract
//!   of [`crate::sweep`] means any divergence is a real behavior change,
//!   not noise;
//! * **metrics must sit inside tolerance bands** — a second, independent
//!   line of defense that keeps working even if the fingerprint function
//!   itself is refactored;
//! * **counters are diffed field by field** — so a failure explains
//!   *why* the schedule moved ("steal_denied 12 → 31") instead of only
//!   reporting an opaque digest mismatch.
//!
//! This module owns the corpus data model and the comparison logic; JSON
//! serialization of the `coefficient-golden/1` schema and file I/O live
//! in the bench harness, which also provides the `experiments golden
//! record|verify` CLI.
//!
//! [`fingerprint`]: RunReport::fingerprint

use std::fmt;

use crate::runner::{RunCounters, RunReport};
use crate::sweep::{CellCoord, CellOutcome, GroupSummary, SweepReport};

/// Version tag of the corpus schema; bump on incompatible change.
pub const SCHEMA: &str = "coefficient-golden/1";

/// How far a fresh metric may drift from its recorded value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Absolute tolerance for ratio-valued metrics (miss ratios,
    /// utilizations, delivery ratio) — all live in `[0, 1]`.
    pub ratio_abs: f64,
    /// Relative tolerance for scale-valued metrics (latency statistics,
    /// running time, delivered bandwidth).
    pub scale_rel: f64,
}

impl Default for Tolerances {
    /// Tight defaults: replays of a deterministic simulator reproduce
    /// metrics exactly, so the bands only need to absorb float printing
    /// round-trips, not run-to-run noise.
    fn default() -> Self {
        Tolerances {
            ratio_abs: 1e-6,
            scale_rel: 1e-6,
        }
    }
}

/// Which tolerance band applies to a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Band {
    /// Compare `|recorded − fresh|` against [`Tolerances::ratio_abs`].
    RatioAbs,
    /// Compare `|recorded − fresh|` against
    /// `scale_rel · max(|recorded|, |fresh|)`.
    ScaleRel,
}

impl Band {
    /// `true` if `fresh` sits within this band around `recorded`.
    pub fn within(self, tol: &Tolerances, recorded: f64, fresh: f64) -> bool {
        // NaN-safe: a NaN on either side only passes when both are NaN
        // (e.g. a latency mean of an empty class on both sides).
        if recorded.is_nan() || fresh.is_nan() {
            return recorded.is_nan() && fresh.is_nan();
        }
        let delta = (recorded - fresh).abs();
        match self {
            Band::RatioAbs => delta <= tol.ratio_abs,
            Band::ScaleRel => delta <= tol.scale_rel * recorded.abs().max(fresh.abs()),
        }
    }
}

/// The metric envelope of one cell, extracted from its [`RunReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoldenMetrics {
    /// Simulated running time, milliseconds.
    pub running_time_ms: f64,
    /// Combined two-channel allocated utilization (fraction).
    pub utilization: f64,
    /// Wire-level busy fraction (fraction).
    pub wire_utilization: f64,
    /// Deadline miss ratio of static instances (fraction).
    pub static_miss_ratio: f64,
    /// Deadline miss ratio of dynamic instances (fraction).
    pub dynamic_miss_ratio: f64,
    /// Combined miss ratio over both classes (fraction).
    pub miss_ratio: f64,
    /// Delivered / produced instances (fraction).
    pub delivery_ratio: f64,
    /// Delivered bandwidth: instances delivered per simulated second.
    pub delivered_per_second: f64,
    /// Mean latency of delivered static instances, milliseconds (NaN if
    /// none were delivered).
    pub static_latency_mean_ms: f64,
    /// Worst observed static latency, milliseconds (NaN if none).
    pub static_latency_max_ms: f64,
    /// Mean latency of delivered dynamic instances, milliseconds (NaN if
    /// none were delivered).
    pub dynamic_latency_mean_ms: f64,
    /// Worst observed dynamic latency, milliseconds (NaN if none).
    pub dynamic_latency_max_ms: f64,
}

/// Milliseconds in an optional duration, NaN when absent.
fn opt_ms(d: Option<event_sim::SimDuration>) -> f64 {
    d.map_or(f64::NAN, |v| v.as_nanos() as f64 / 1e6)
}

impl GoldenMetrics {
    /// Extracts the envelope from a run report.
    pub fn from_report(report: &RunReport) -> Self {
        let running_time_s = report.running_time.as_nanos() as f64 / 1e9;
        let delivered_per_second = if running_time_s > 0.0 {
            report.delivered as f64 / running_time_s
        } else {
            0.0
        };
        GoldenMetrics {
            running_time_ms: report.running_time.as_nanos() as f64 / 1e6,
            utilization: report.utilization,
            wire_utilization: report.wire_utilization,
            static_miss_ratio: report.static_deadlines.miss_ratio(),
            dynamic_miss_ratio: report.dynamic_deadlines.miss_ratio(),
            miss_ratio: report.miss_ratio(),
            delivery_ratio: if report.produced > 0 {
                report.delivered as f64 / report.produced as f64
            } else {
                0.0
            },
            delivered_per_second,
            static_latency_mean_ms: opt_ms(report.static_latency.mean()),
            static_latency_max_ms: opt_ms(report.static_latency.max()),
            dynamic_latency_mean_ms: opt_ms(report.dynamic_latency.mean()),
            dynamic_latency_max_ms: opt_ms(report.dynamic_latency.max()),
        }
    }

    /// Every metric as `(name, value, band)`, in a fixed order — the
    /// corpus serializes and verifies metrics through this list.
    pub fn fields(&self) -> [(&'static str, f64, Band); 12] {
        [
            ("running_time_ms", self.running_time_ms, Band::ScaleRel),
            ("utilization", self.utilization, Band::RatioAbs),
            ("wire_utilization", self.wire_utilization, Band::RatioAbs),
            ("static_miss_ratio", self.static_miss_ratio, Band::RatioAbs),
            (
                "dynamic_miss_ratio",
                self.dynamic_miss_ratio,
                Band::RatioAbs,
            ),
            ("miss_ratio", self.miss_ratio, Band::RatioAbs),
            ("delivery_ratio", self.delivery_ratio, Band::RatioAbs),
            (
                "delivered_per_second",
                self.delivered_per_second,
                Band::ScaleRel,
            ),
            (
                "static_latency_mean_ms",
                self.static_latency_mean_ms,
                Band::ScaleRel,
            ),
            (
                "static_latency_max_ms",
                self.static_latency_max_ms,
                Band::ScaleRel,
            ),
            (
                "dynamic_latency_mean_ms",
                self.dynamic_latency_mean_ms,
                Band::ScaleRel,
            ),
            (
                "dynamic_latency_max_ms",
                self.dynamic_latency_max_ms,
                Band::ScaleRel,
            ),
        ]
    }
}

/// One recorded corpus cell.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenCell {
    /// Matrix coordinates of the cell.
    pub coord: CellCoord,
    /// Policy label (e.g. `"coefficient"`), for human-readable diffs and
    /// JSON round-trips.
    pub policy: String,
    /// Scenario label (e.g. `"BER-7"`).
    pub scenario: String,
    /// The derived master seed the cell ran under.
    pub seed: u64,
    /// The exact run fingerprint; verification requires byte identity.
    pub fingerprint: u64,
    /// Metric envelope checked against [`Tolerances`].
    pub metrics: GoldenMetrics,
    /// Structured counters, diffed field by field on mismatch.
    pub counters: RunCounters,
}

impl GoldenCell {
    /// Records a cell from a sweep outcome.
    pub fn from_outcome(cell: &CellOutcome, policy_label: &str) -> Self {
        GoldenCell {
            coord: cell.coord,
            policy: policy_label.to_string(),
            scenario: cell.scenario.to_string(),
            seed: cell.seed,
            fingerprint: cell.fingerprint,
            metrics: GoldenMetrics::from_report(&cell.report),
            counters: cell.report.counters,
        }
    }
}

/// Latency-percentile envelope of one `{policy × scenario}` group over
/// its seeds: p50/p90/p99 of the per-run mean latencies, per class.
/// Per-cell metrics pin each run exactly; the group percentiles give the
/// corpus the distribution view the paper's figures are drawn from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoldenGroup {
    /// Index into the recorded policy axis.
    pub policy: usize,
    /// Index into the recorded scenario axis.
    pub scenario: usize,
    /// Static-latency percentiles (ms over per-run means): p50, p90, p99.
    pub static_latency_ms_p: [f64; 3],
    /// Dynamic-latency percentiles (ms over per-run means): p50, p90, p99.
    pub dynamic_latency_ms_p: [f64; 3],
    /// Miss-ratio percentiles over seeds: p50, p90, p99.
    pub miss_ratio_p: [f64; 3],
}

impl GoldenGroup {
    /// Extracts the percentile envelope from a sweep group summary.
    pub fn from_summary(policy: usize, scenario: usize, g: &GroupSummary) -> Self {
        GoldenGroup {
            policy,
            scenario,
            static_latency_ms_p: [
                g.static_latency_ms.p50,
                g.static_latency_ms.p90,
                g.static_latency_ms.p99,
            ],
            dynamic_latency_ms_p: [
                g.dynamic_latency_ms.p50,
                g.dynamic_latency_ms.p90,
                g.dynamic_latency_ms.p99,
            ],
            miss_ratio_p: [g.miss_ratio.p50, g.miss_ratio.p90, g.miss_ratio.p99],
        }
    }

    /// Percentile metrics as `(name, value, band)` triples.
    pub fn fields(&self) -> [(&'static str, f64, Band); 9] {
        [
            (
                "static_latency_ms_p50",
                self.static_latency_ms_p[0],
                Band::ScaleRel,
            ),
            (
                "static_latency_ms_p90",
                self.static_latency_ms_p[1],
                Band::ScaleRel,
            ),
            (
                "static_latency_ms_p99",
                self.static_latency_ms_p[2],
                Band::ScaleRel,
            ),
            (
                "dynamic_latency_ms_p50",
                self.dynamic_latency_ms_p[0],
                Band::ScaleRel,
            ),
            (
                "dynamic_latency_ms_p90",
                self.dynamic_latency_ms_p[1],
                Band::ScaleRel,
            ),
            (
                "dynamic_latency_ms_p99",
                self.dynamic_latency_ms_p[2],
                Band::ScaleRel,
            ),
            ("miss_ratio_p50", self.miss_ratio_p[0], Band::RatioAbs),
            ("miss_ratio_p90", self.miss_ratio_p[1], Band::RatioAbs),
            ("miss_ratio_p99", self.miss_ratio_p[2], Band::RatioAbs),
        ]
    }
}

/// A complete golden corpus: the recorded cells and groups plus the
/// tolerance bands verification applies.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenCorpus {
    /// Human-readable corpus name (e.g. `"default"`).
    pub name: String,
    /// Tolerance bands for the metric envelope.
    pub tolerance: Tolerances,
    /// Recorded cells in canonical matrix order.
    pub cells: Vec<GoldenCell>,
    /// Per-group latency-percentile envelopes in matrix order.
    pub groups: Vec<GoldenGroup>,
}

impl GoldenCorpus {
    /// Records a corpus from a finished sweep. `policy_labels` must be
    /// index-aligned with the sweep matrix's policy axis.
    pub fn record(name: &str, report: &SweepReport, policy_labels: &[&str]) -> Self {
        let cells = report
            .cells
            .iter()
            .map(|c| GoldenCell::from_outcome(c, policy_labels[c.coord.policy]))
            .collect();
        let scenarios = report
            .cells
            .iter()
            .map(|c| c.coord.scenario)
            .max()
            .map_or(0, |m| m + 1);
        let groups = report
            .groups
            .iter()
            .enumerate()
            .map(|(i, g)| GoldenGroup::from_summary(i / scenarios.max(1), i % scenarios.max(1), g))
            .collect();
        GoldenCorpus {
            name: name.to_string(),
            tolerance: Tolerances::default(),
            cells,
            groups,
        }
    }

    /// Verifies a fresh sweep of the same matrix against this corpus.
    pub fn verify(&self, fresh: &SweepReport) -> VerifyReport {
        let mut checks = Vec::with_capacity(self.cells.len());
        let mut missing = Vec::new();
        for recorded in &self.cells {
            let Some(cell) = fresh.cell(recorded.coord) else {
                missing.push(recorded.coord);
                continue;
            };
            checks.push(check_cell(recorded, cell, &self.tolerance));
        }
        let mut group_diffs = Vec::new();
        for (i, recorded) in self.groups.iter().enumerate() {
            let Some(g) = fresh.groups.get(i) else {
                continue; // axis shrank: already visible as missing cells
            };
            let fresh_group = GoldenGroup::from_summary(recorded.policy, recorded.scenario, g);
            for ((name, want, band), (_, got, _)) in
                recorded.fields().iter().zip(fresh_group.fields())
            {
                if !band.within(&self.tolerance, *want, got) {
                    group_diffs.push(MetricDiff {
                        group: Some((recorded.policy, recorded.scenario)),
                        name,
                        recorded: *want,
                        fresh: got,
                    });
                }
            }
        }
        let extra = fresh.cells.len().saturating_sub(self.cells.len());
        VerifyReport {
            checks,
            missing,
            extra_cells: extra,
            group_diffs,
        }
    }
}

/// A counter whose fresh value differs from the recorded one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterDiff {
    /// Counter name (one of [`RunCounters::fields`]).
    pub name: &'static str,
    /// Value in the corpus.
    pub recorded: u64,
    /// Value of the fresh run.
    pub fresh: u64,
}

/// A metric outside its tolerance band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricDiff {
    /// `Some((policy, scenario))` for group-envelope metrics, `None` for
    /// per-cell metrics.
    pub group: Option<(usize, usize)>,
    /// Metric name.
    pub name: &'static str,
    /// Value in the corpus.
    pub recorded: f64,
    /// Value of the fresh run.
    pub fresh: f64,
}

/// The comparison result of one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellCheck {
    /// Matrix coordinates.
    pub coord: CellCoord,
    /// Policy label from the corpus.
    pub policy: String,
    /// Scenario label from the corpus.
    pub scenario: String,
    /// The derived master seed.
    pub seed: u64,
    /// Fingerprint in the corpus.
    pub recorded_fingerprint: u64,
    /// Fingerprint of the fresh replay.
    pub fresh_fingerprint: u64,
    /// Counters that moved (empty when the cell passes).
    pub counter_diffs: Vec<CounterDiff>,
    /// Metrics outside their band (empty when the cell passes).
    pub metric_diffs: Vec<MetricDiff>,
}

impl CellCheck {
    /// `true` iff fingerprint, counters and metrics all match.
    pub fn passed(&self) -> bool {
        self.recorded_fingerprint == self.fresh_fingerprint
            && self.counter_diffs.is_empty()
            && self.metric_diffs.is_empty()
    }
}

fn check_cell(recorded: &GoldenCell, fresh: &CellOutcome, tol: &Tolerances) -> CellCheck {
    let fresh_metrics = GoldenMetrics::from_report(&fresh.report);
    let counter_diffs = recorded
        .counters
        .fields()
        .iter()
        .zip(fresh.report.counters.fields())
        .filter(|((_, want), (_, got))| want != got)
        .map(|((name, want), (_, got))| CounterDiff {
            name,
            recorded: *want,
            fresh: got,
        })
        .collect();
    let metric_diffs = recorded
        .metrics
        .fields()
        .iter()
        .zip(fresh_metrics.fields())
        .filter(|((_, want, band), (_, got, _))| !band.within(tol, *want, *got))
        .map(|((name, want, _), (_, got, _))| MetricDiff {
            group: None,
            name,
            recorded: *want,
            fresh: got,
        })
        .collect();
    CellCheck {
        coord: recorded.coord,
        policy: recorded.policy.clone(),
        scenario: recorded.scenario.clone(),
        seed: recorded.seed,
        recorded_fingerprint: recorded.fingerprint,
        fresh_fingerprint: fresh.fingerprint,
        counter_diffs,
        metric_diffs,
    }
}

/// The result of verifying a whole corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// One check per corpus cell found in the fresh sweep.
    pub checks: Vec<CellCheck>,
    /// Corpus cells the fresh sweep did not produce at all.
    pub missing: Vec<CellCoord>,
    /// Fresh cells beyond the corpus (matrix grew without re-recording).
    pub extra_cells: usize,
    /// Group-envelope metrics outside their band.
    pub group_diffs: Vec<MetricDiff>,
}

impl VerifyReport {
    /// `true` iff every cell passed and the matrices line up.
    pub fn passed(&self) -> bool {
        self.missing.is_empty()
            && self.extra_cells == 0
            && self.group_diffs.is_empty()
            && self.checks.iter().all(CellCheck::passed)
    }

    /// The checks that failed.
    pub fn failures(&self) -> impl Iterator<Item = &CellCheck> {
        self.checks.iter().filter(|c| !c.passed())
    }
}

impl fmt::Display for VerifyReport {
    /// Renders the verdict with a counter-level diff per failing cell.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let failed = self.failures().count();
        writeln!(
            f,
            "golden verify: {} cells, {} passed, {} failed, {} missing, {} extra",
            self.checks.len(),
            self.checks.len() - failed,
            failed,
            self.missing.len(),
            self.extra_cells,
        )?;
        for coord in &self.missing {
            writeln!(
                f,
                "  MISSING cell {{policy {}, scenario {}, seed {}}}",
                coord.policy, coord.scenario, coord.seed
            )?;
        }
        for c in self.failures() {
            writeln!(
                f,
                "  FAIL {} × {} (seed {:#018x}): fingerprint {:016x} -> {:016x}",
                c.policy, c.scenario, c.seed, c.recorded_fingerprint, c.fresh_fingerprint
            )?;
            for d in &c.counter_diffs {
                writeln!(
                    f,
                    "    counter {:<28} {:>10} -> {:<10} ({:+})",
                    d.name,
                    d.recorded,
                    d.fresh,
                    d.fresh as i128 - d.recorded as i128
                )?;
            }
            for d in &c.metric_diffs {
                writeln!(
                    f,
                    "    metric  {:<28} {:>14.6} -> {:<14.6}",
                    d.name, d.recorded, d.fresh
                )?;
            }
            if c.counter_diffs.is_empty() && c.metric_diffs.is_empty() {
                writeln!(
                    f,
                    "    (no counter or metric moved: divergence is in the \
                     latency/deadline tails folded into the fingerprint)"
                )?;
            }
        }
        for d in &self.group_diffs {
            let (p, s) = d.group.expect("group diffs carry their group");
            writeln!(
                f,
                "  GROUP {{policy {p}, scenario {s}}} metric {:<24} {:>14.6} -> {:<14.6}",
                d.name, d.recorded, d.fresh
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{SeedStrategy, SweepMatrix, SweepRunner};
    use crate::{Scenario, StopCondition, COEFFICIENT, FSPEC, GREEDY};
    use event_sim::SimDuration;
    use flexray::config::ClusterConfig;

    fn small_matrix() -> SweepMatrix {
        SweepMatrix {
            cluster: ClusterConfig::paper_dynamic(50),
            static_messages: workloads::bbw::message_set(),
            dynamic_messages: workloads::sae::message_set(
                workloads::sae::IdRange::StartingAt(20),
                1,
            ),
            policies: vec![COEFFICIENT, FSPEC],
            scenarios: vec![Scenario::ber7()],
            seeds: vec![11, 22],
            stop: StopCondition::Horizon(SimDuration::from_millis(20)),
            seed_strategy: SeedStrategy::PerCell,
        }
    }

    fn sweep() -> SweepReport {
        SweepRunner::new(small_matrix())
            .threads(2)
            .run()
            .expect("matrix is schedulable")
    }

    #[test]
    fn replay_of_the_same_matrix_verifies_clean() {
        let corpus = GoldenCorpus::record("test", &sweep(), &["coefficient", "fspec"]);
        assert_eq!(corpus.cells.len(), 4);
        let report = corpus.verify(&sweep());
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn perturbed_fingerprint_fails_with_counter_diff() {
        let mut corpus = GoldenCorpus::record("test", &sweep(), &["coefficient", "fspec"]);
        corpus.cells[0].fingerprint ^= 1;
        corpus.cells[0].counters.steal_denied += 5;
        let report = corpus.verify(&sweep());
        assert!(!report.passed());
        let failure = report.failures().next().expect("cell 0 fails");
        assert_eq!(failure.coord, corpus.cells[0].coord);
        assert!(
            failure
                .counter_diffs
                .iter()
                .any(|d| d.name == "steal_denied"),
            "diff must name the moved counter: {failure:?}"
        );
        let rendered = report.to_string();
        assert!(rendered.contains("steal_denied"), "{rendered}");
    }

    #[test]
    fn metric_outside_band_fails_even_with_matching_fingerprint() {
        let mut corpus = GoldenCorpus::record("test", &sweep(), &["coefficient", "fspec"]);
        corpus.cells[1].metrics.miss_ratio += 0.5;
        let report = corpus.verify(&sweep());
        assert!(!report.passed());
        let failure = report.failures().next().expect("cell 1 fails");
        assert!(failure.metric_diffs.iter().any(|d| d.name == "miss_ratio"));
    }

    #[test]
    fn missing_and_extra_cells_are_reported() {
        let corpus = GoldenCorpus::record("test", &sweep(), &["coefficient", "fspec"]);
        let mut shrunk = small_matrix();
        shrunk.seeds.pop();
        let fresh = SweepRunner::new(shrunk).threads(1).run().unwrap();
        let report = corpus.verify(&fresh);
        assert!(!report.passed());
        assert_eq!(report.missing.len(), 2, "one seed × two policies");
    }

    #[test]
    fn nan_latencies_compare_equal() {
        // A matrix with no dynamic messages has NaN dynamic-latency
        // metrics on both sides; that must not fail verification.
        let mut m = small_matrix();
        m.dynamic_messages.clear();
        let run = || SweepRunner::new(m.clone()).threads(1).run().unwrap();
        let corpus = GoldenCorpus::record("test", &run(), &["coefficient", "fspec"]);
        assert!(corpus.cells[0].metrics.dynamic_latency_mean_ms.is_nan());
        let report = corpus.verify(&run());
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn a_new_policy_column_cannot_mask_an_old_column_regression() {
        // The corpus grows by appending policy columns. The per-cell
        // checks must stay anchored to coordinates, so a widened corpus
        // still rejects a perturbed cell in one of the *original*
        // columns even though every new-policy cell verifies clean.
        let mut wide = small_matrix();
        wide.policies.push(GREEDY);
        let run = || {
            SweepRunner::new(wide.clone())
                .threads(2)
                .run()
                .expect("widened matrix is schedulable")
        };
        let labels = &["coefficient", "fspec", "greedy"];
        let mut corpus = GoldenCorpus::record("test", &run(), labels);
        assert_eq!(corpus.cells.len(), 6);
        // Perturb an FSPEC cell (an "old" column) the way a behavioral
        // regression would move it.
        let victim = corpus
            .cells
            .iter()
            .position(|c| c.policy == "fspec")
            .expect("fspec column recorded");
        corpus.cells[victim].fingerprint ^= 1;
        corpus.cells[victim].counters.dropped_copies += 3;
        let report = corpus.verify(&run());
        assert!(!report.passed(), "old-column regression slipped through");
        let failures: Vec<_> = report.failures().collect();
        assert_eq!(failures.len(), 1, "exactly the perturbed cell fails");
        assert_eq!(failures[0].policy, "fspec");
        assert_eq!(failures[0].coord, corpus.cells[victim].coord);
        // And the greedy column genuinely verified — it is present, not
        // skipped (its passing must not be what hides the regression).
        assert!(report
            .checks
            .iter()
            .any(|c| c.policy == "greedy" && c.passed()));
    }

    #[test]
    fn widening_the_matrix_without_rerecording_is_flagged() {
        // Appending a policy column makes the fresh sweep larger than the
        // corpus; verification must surface that as extra cells rather
        // than silently ignoring the unrecorded column.
        let corpus = GoldenCorpus::record("test", &sweep(), &["coefficient", "fspec"]);
        let mut wide = small_matrix();
        wide.policies.push(GREEDY);
        let fresh = SweepRunner::new(wide).threads(2).run().unwrap();
        let report = corpus.verify(&fresh);
        assert!(!report.passed());
        assert_eq!(report.extra_cells, 2, "one new policy × two seeds");
    }

    #[test]
    fn band_semantics() {
        let tol = Tolerances {
            ratio_abs: 0.01,
            scale_rel: 0.05,
        };
        assert!(Band::RatioAbs.within(&tol, 0.50, 0.505));
        assert!(!Band::RatioAbs.within(&tol, 0.50, 0.52));
        assert!(Band::ScaleRel.within(&tol, 100.0, 104.0));
        assert!(!Band::ScaleRel.within(&tol, 100.0, 106.0));
        assert!(Band::ScaleRel.within(&tol, f64::NAN, f64::NAN));
        assert!(!Band::ScaleRel.within(&tol, 1.0, f64::NAN));
    }
}
