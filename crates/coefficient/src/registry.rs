//! The string-keyed policy registry: every scheduling scheme the crate
//! knows, as one trait object per policy.
//!
//! [`Policy`] is the extension point of the scheduler zoo. A policy is a
//! stateless description — a registry key, a display label, a
//! [`PolicyBehavior`] flag set consumed by [`crate::Scheduler`], and a
//! retransmission-plan function — while all scheduling machinery lives in
//! the shared scheduler engine. Adding a policy is a one-file change:
//! implement the trait on a unit struct here, add the constant to
//! [`ALL`], and the shared `tests/policy_contract.rs` battery picks it up
//! automatically.
//!
//! Policies are addressed as `&'static dyn Policy` trait objects
//! ([`PolicyRef`]), resolved from strings end to end ([`resolve`]): the
//! bench CLI, the golden corpus JSON and the sweep harness all go through
//! the same lookup, so an unknown name fails with a listing of the
//! registered keys instead of a panic.
//!
//! | key | semantics |
//! |---|---|
//! | `coefficient` | the paper's scheme: differentiated Theorem-1 copies in stolen slack, cooperative segments, degraded mode, failover |
//! | `fspec` | FlexRay-specification baseline: blanket B-mirror, uniform best-effort copies serialized through own slots |
//! | `hosa` | dual-channel redundancy only: mirror + one extra copy, no slack use |
//! | `greedy` | greedy best-effort retransmission: uniform copy count, but placed in stolen slack like CoEfficient |
//! | `slack-steal` | slack stealing without criticality differentiation: no shedding, no degraded mode, no failover |
//! | `matchup` | mixed-criticality match-up: after a fault burst, slack switches to a recovery schedule for hard instances only |

use flexray::schedule::MessageId;
use reliability::RetransmissionPlanner;

/// FSPEC's best-effort retransmission cap: the uniform per-message copy
/// count is searched up to this bound (beyond it, best effort gives up —
/// the bandwidth simply is not there).
const FSPEC_MAX_UNIFORM_K: u32 = 4;

/// The switchboard a policy hands the scheduler engine: each flag enables
/// one mechanism of the shared machinery. The legacy schemes are exact
/// flag sets — CoEfficient enables everything except
/// [`matchup_recovery`](Self::matchup_recovery), FSPEC is the
/// mirror/own-slot pair, HOSA is mirror plus dynamic-channel balancing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyBehavior {
    /// Whether [`crate::CoefficientOptions`] apply to this policy. When
    /// `false` the scheduler pins the options to their defaults, so the
    /// ablation switches only ever affect policies that opt in (the
    /// baselines keep their fixed behaviour).
    pub uses_options: bool,
    /// Blanket-mirror every static primary on channel B instead of
    /// planning per-message copies into stolen slack.
    pub mirror_allocation: bool,
    /// Serialize all of a static message's transmissions (primary +
    /// best-effort copies) through the message's own slot pattern with a
    /// bounded CHI queue (the FSPEC separate-segments model).
    pub own_slot_serialization: bool,
    /// Alternate dynamic messages' home channels across A and B.
    pub balance_dynamic_channels: bool,
    /// Use free static positions cooperatively (slack stealing for the
    /// dynamic backlog, early copies of released static instances).
    pub cooperative_segments: bool,
    /// Degraded mode sheds soft dynamic traffic by criticality class.
    pub criticality_shedding: bool,
    /// Degraded mode re-plans freed slack into extra hard-message copies.
    pub degraded_hard_copies: bool,
    /// Mirror hard frames onto the healthier channel during an asymmetric
    /// channel storm.
    pub failover: bool,
    /// Match-up recovery: while the health monitor reports a degraded
    /// bus, free slack serves *only* the hard recovery schedule (extra
    /// copies of undelivered static instances); nominal cooperative
    /// service resumes when the monitor returns to `Nominal`.
    pub matchup_recovery: bool,
}

impl PolicyBehavior {
    /// CoEfficient's flag set: everything on except match-up recovery.
    const COEFFICIENT: PolicyBehavior = PolicyBehavior {
        uses_options: true,
        mirror_allocation: false,
        own_slot_serialization: false,
        balance_dynamic_channels: true,
        cooperative_segments: true,
        criticality_shedding: true,
        degraded_hard_copies: true,
        failover: true,
        matchup_recovery: false,
    };
}

/// A scheduling policy: one member of the registry.
///
/// Implementations are stateless unit structs; the scheduler engine
/// reads the [`behavior`](Self::behavior) flags and the retransmission
/// plan and does the rest. The trait is object-safe and every registered
/// policy is reachable as a `Box<dyn Policy + Send>`-compatible trait
/// object via the `&'static` [`PolicyRef`] constants below.
pub trait Policy: std::fmt::Debug + Send + Sync {
    /// Stable registry key (lowercase, e.g. `"slack-steal"`); the string
    /// the CLI and corpus resolve.
    fn key(&self) -> &'static str;

    /// Human-readable display label (e.g. `"CoEfficient"`); also accepted
    /// by [`resolve`], case-insensitively.
    fn label(&self) -> &'static str;

    /// The ordinal folded into [`crate::RunReport::fingerprint`]. Legacy
    /// values are frozen — CoEfficient 0, FSPEC 1, HOSA 2 — so the golden
    /// corpus digests recorded before the registry existed stay
    /// byte-identical; new policies claim the next free ordinal.
    fn fingerprint_tag(&self) -> u64;

    /// The mechanism switchboard the scheduler engine runs under.
    fn behavior(&self) -> PolicyBehavior;

    /// Per-message retransmission copy counts for a reliability goal.
    fn plan_copies(&self, planner: &RetransmissionPlanner, goal: f64) -> Vec<(MessageId, u32)>;

    /// Additional names [`resolve`] accepts for this policy.
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// One-line semantics, shown in the scheduler-zoo docs.
    fn summary(&self) -> &'static str;
}

/// A registered policy: a `'static` trait object, `Copy` and comparable
/// by registry key.
pub type PolicyRef = &'static (dyn Policy + Send + Sync);

impl PartialEq for dyn Policy + Send + Sync {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for dyn Policy + Send + Sync {}

/// The paper's differentiated Theorem-1 plan: per-message `k_z` copy
/// counts for the goal, falling back to the uniform cap if the goal is
/// unreachable.
fn differentiated_plan(planner: &RetransmissionPlanner, goal: f64) -> Vec<(MessageId, u32)> {
    if goal <= 0.0 {
        return Vec::new();
    }
    let plan = planner
        .plan_for_goal(goal)
        .unwrap_or_else(|_| planner.uniform(FSPEC_MAX_UNIFORM_K));
    plan.messages()
        .iter()
        .zip(plan.retransmission_counts())
        .map(|(m, &k)| (m.id, k))
        .collect()
}

/// Uniform best effort: the smallest `k` meeting the goal, applied to
/// every message (capped at [`FSPEC_MAX_UNIFORM_K`]).
fn uniform_best_effort_plan(planner: &RetransmissionPlanner, goal: f64) -> Vec<(MessageId, u32)> {
    let k = if goal <= 0.0 {
        0
    } else {
        (0..=FSPEC_MAX_UNIFORM_K)
            .find(|&k| planner.uniform(k).success_probability() >= goal)
            .unwrap_or(FSPEC_MAX_UNIFORM_K)
    };
    planner
        .uniform(k)
        .messages()
        .iter()
        .map(|m| (m.id, k))
        .collect()
}

/// The paper's contribution: cooperative dual-channel scheduling with
/// selective slack stealing and differentiated retransmission.
pub struct CoefficientPolicy;

impl std::fmt::Debug for CoefficientPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CoEfficient")
    }
}

impl Policy for CoefficientPolicy {
    fn key(&self) -> &'static str {
        "coefficient"
    }
    fn label(&self) -> &'static str {
        "CoEfficient"
    }
    fn fingerprint_tag(&self) -> u64 {
        0
    }
    fn behavior(&self) -> PolicyBehavior {
        PolicyBehavior::COEFFICIENT
    }
    fn plan_copies(&self, planner: &RetransmissionPlanner, goal: f64) -> Vec<(MessageId, u32)> {
        differentiated_plan(planner, goal)
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["co"]
    }
    fn summary(&self) -> &'static str {
        "differentiated Theorem-1 copies in stolen slack, cooperative segments, \
         degraded mode, dual-channel failover"
    }
}

/// The standard FlexRay-specification behaviour with best-effort
/// retransmission of all segments (the paper's baseline).
pub struct FspecPolicy;

impl std::fmt::Debug for FspecPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Fspec")
    }
}

impl Policy for FspecPolicy {
    fn key(&self) -> &'static str {
        "fspec"
    }
    fn label(&self) -> &'static str {
        "FSPEC"
    }
    fn fingerprint_tag(&self) -> u64 {
        1
    }
    fn behavior(&self) -> PolicyBehavior {
        PolicyBehavior {
            uses_options: false,
            mirror_allocation: true,
            own_slot_serialization: true,
            balance_dynamic_channels: false,
            cooperative_segments: false,
            criticality_shedding: false,
            degraded_hard_copies: false,
            failover: false,
            matchup_recovery: false,
        }
    }
    fn plan_copies(&self, planner: &RetransmissionPlanner, goal: f64) -> Vec<(MessageId, u32)> {
        uniform_best_effort_plan(planner, goal)
    }
    fn summary(&self) -> &'static str {
        "blanket channel-B mirror; uniform best-effort copies serialized \
         through each message's own slots (separate segments)"
    }
}

/// A HOSA-like scheme (paper §V-B, reference \[7\]): dual-channel
/// redundancy — every static message mirrored on channel B, every dynamic
/// message sent once more on the other channel — but no slack stealing
/// and no cooperative use of idle slots.
pub struct HosaPolicy;

impl std::fmt::Debug for HosaPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Hosa")
    }
}

impl Policy for HosaPolicy {
    fn key(&self) -> &'static str {
        "hosa"
    }
    fn label(&self) -> &'static str {
        "HOSA"
    }
    fn fingerprint_tag(&self) -> u64 {
        2
    }
    fn behavior(&self) -> PolicyBehavior {
        PolicyBehavior {
            uses_options: false,
            mirror_allocation: true,
            own_slot_serialization: false,
            balance_dynamic_channels: true,
            cooperative_segments: false,
            criticality_shedding: false,
            degraded_hard_copies: false,
            failover: false,
            matchup_recovery: false,
        }
    }
    fn plan_copies(&self, planner: &RetransmissionPlanner, _goal: f64) -> Vec<(MessageId, u32)> {
        // HOSA's redundancy is fixed: exactly one extra copy of every
        // message via the second channel.
        planner
            .uniform(1)
            .messages()
            .iter()
            .map(|m| (m.id, 1))
            .collect()
    }
    fn summary(&self) -> &'static str {
        "dual-channel redundancy only: static B-mirror plus one extra dynamic \
         copy, no slack use"
    }
}

/// Greedy best-effort retransmission: plans the FSPEC-style uniform copy
/// count but places the copies in stolen static slack like CoEfficient.
/// On a fault-free goal both plans are empty, so greedy and CoEfficient
/// produce identical static-segment schedules — they only diverge under
/// faults, where greedy's undifferentiated plan wastes slack on robust
/// messages.
pub struct GreedyPolicy;

impl std::fmt::Debug for GreedyPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Greedy")
    }
}

impl Policy for GreedyPolicy {
    fn key(&self) -> &'static str {
        "greedy"
    }
    fn label(&self) -> &'static str {
        "Greedy"
    }
    fn fingerprint_tag(&self) -> u64 {
        3
    }
    fn behavior(&self) -> PolicyBehavior {
        PolicyBehavior::COEFFICIENT
    }
    fn plan_copies(&self, planner: &RetransmissionPlanner, goal: f64) -> Vec<(MessageId, u32)> {
        uniform_best_effort_plan(planner, goal)
    }
    fn summary(&self) -> &'static str {
        "greedy best-effort retransmission: uniform copy counts placed in \
         stolen slack (no per-message differentiation)"
    }
}

/// Slack stealing without criticality differentiation: the cooperative
/// machinery of CoEfficient, but health-blind — no soft-traffic
/// shedding, no degraded-mode re-plan, no failover. Every arrival is
/// admitted regardless of bus health.
pub struct SlackStealPolicy;

impl std::fmt::Debug for SlackStealPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SlackSteal")
    }
}

impl Policy for SlackStealPolicy {
    fn key(&self) -> &'static str {
        "slack-steal"
    }
    fn label(&self) -> &'static str {
        "SlackSteal"
    }
    fn fingerprint_tag(&self) -> u64 {
        4
    }
    fn behavior(&self) -> PolicyBehavior {
        PolicyBehavior {
            criticality_shedding: false,
            degraded_hard_copies: false,
            failover: false,
            ..PolicyBehavior::COEFFICIENT
        }
    }
    fn plan_copies(&self, planner: &RetransmissionPlanner, goal: f64) -> Vec<(MessageId, u32)> {
        differentiated_plan(planner, goal)
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["slacksteal", "slack_steal"]
    }
    fn summary(&self) -> &'static str {
        "slack stealing without criticality differentiation: cooperative \
         segments but no shedding, degraded mode or failover"
    }
}

/// Mixed-criticality match-up scheduling: nominally identical to
/// CoEfficient, but when the health monitor signals a fault burst
/// (`Stressed`/`Storm`) the free slack switches to a *recovery schedule*
/// — it serves only extra copies of undelivered hard instances until the
/// monitor reports `Nominal` again, at which point the schedule has
/// "matched up" with the nominal plan and cooperative service resumes.
pub struct MatchupPolicy;

impl std::fmt::Debug for MatchupPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Matchup")
    }
}

impl Policy for MatchupPolicy {
    fn key(&self) -> &'static str {
        "matchup"
    }
    fn label(&self) -> &'static str {
        "Matchup"
    }
    fn fingerprint_tag(&self) -> u64 {
        5
    }
    fn behavior(&self) -> PolicyBehavior {
        PolicyBehavior {
            matchup_recovery: true,
            ..PolicyBehavior::COEFFICIENT
        }
    }
    fn plan_copies(&self, planner: &RetransmissionPlanner, goal: f64) -> Vec<(MessageId, u32)> {
        differentiated_plan(planner, goal)
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["match-up"]
    }
    fn summary(&self) -> &'static str {
        "mixed-criticality match-up: during a fault burst, slack serves only \
         the hard recovery schedule; nominal service resumes after the storm"
    }
}

/// The CoEfficient policy (registry key `coefficient`).
pub const COEFFICIENT: PolicyRef = &CoefficientPolicy;
/// The FSPEC baseline (registry key `fspec`).
pub const FSPEC: PolicyRef = &FspecPolicy;
/// The HOSA-like ablation baseline (registry key `hosa`).
pub const HOSA: PolicyRef = &HosaPolicy;
/// The greedy best-effort variant (registry key `greedy`).
pub const GREEDY: PolicyRef = &GreedyPolicy;
/// Undifferentiated slack stealing (registry key `slack-steal`).
pub const SLACK_STEAL: PolicyRef = &SlackStealPolicy;
/// The match-up recovery policy (registry key `matchup`).
pub const MATCHUP: PolicyRef = &MatchupPolicy;

/// Every registered policy, legacy schemes first: the order fixes the
/// policy axis of the default sweep and golden matrices, so appending
/// here never renumbers an existing corpus column.
pub const ALL: &[PolicyRef] = &[COEFFICIENT, FSPEC, HOSA, GREEDY, SLACK_STEAL, MATCHUP];

/// Every registered policy (the registry in iteration order).
pub fn all() -> &'static [PolicyRef] {
    ALL
}

/// The registered policy keys, in registry order.
pub fn names() -> Vec<&'static str> {
    ALL.iter().map(|p| p.key()).collect()
}

/// A policy-name lookup that matched nothing in the registry. The
/// [`Display`](std::fmt::Display) rendering lists every registered key,
/// so CLI and corpus errors tell the user what *would* have worked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPolicy {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown policy \"{}\" (registered: {})",
            self.name,
            names().join(", ")
        )
    }
}

impl std::error::Error for UnknownPolicy {}

/// Resolves a policy by registry key, display label or alias
/// (case-insensitive, surrounding whitespace ignored).
///
/// # Errors
/// [`UnknownPolicy`] — whose message lists the registered keys — if no
/// registered policy matches.
pub fn resolve(name: &str) -> Result<PolicyRef, UnknownPolicy> {
    let needle = name.trim();
    for &p in ALL {
        if p.key().eq_ignore_ascii_case(needle)
            || p.label().eq_ignore_ascii_case(needle)
            || p.aliases().iter().any(|a| a.eq_ignore_ascii_case(needle))
        {
            return Ok(p);
        }
    }
    Err(UnknownPolicy {
        name: name.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_at_least_five_policies_with_unique_identities() {
        assert!(ALL.len() >= 5, "the zoo must hold at least five policies");
        let mut keys: Vec<_> = ALL.iter().map(|p| p.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), ALL.len(), "registry keys must be unique");
        let mut tags: Vec<_> = ALL.iter().map(|p| p.fingerprint_tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), ALL.len(), "fingerprint tags must be unique");
    }

    #[test]
    fn legacy_fingerprint_tags_are_frozen() {
        // The golden corpus digests recorded before the registry existed
        // depend on these exact ordinals.
        assert_eq!(COEFFICIENT.fingerprint_tag(), 0);
        assert_eq!(FSPEC.fingerprint_tag(), 1);
        assert_eq!(HOSA.fingerprint_tag(), 2);
    }

    #[test]
    fn resolve_accepts_keys_labels_and_aliases() {
        assert_eq!(resolve("coefficient").unwrap(), COEFFICIENT);
        assert_eq!(resolve("CoEfficient").unwrap(), COEFFICIENT);
        assert_eq!(resolve("co").unwrap(), COEFFICIENT);
        assert_eq!(resolve("FSPEC").unwrap(), FSPEC);
        assert_eq!(resolve(" hosa ").unwrap(), HOSA);
        assert_eq!(resolve("greedy").unwrap(), GREEDY);
        assert_eq!(resolve("slack-steal").unwrap(), SLACK_STEAL);
        assert_eq!(resolve("slack_steal").unwrap(), SLACK_STEAL);
        assert_eq!(resolve("match-up").unwrap(), MATCHUP);
    }

    #[test]
    fn unknown_names_list_the_registry() {
        let err = resolve("bogus").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown policy \"bogus\""), "{msg}");
        for key in names() {
            assert!(msg.contains(key), "error must list {key}: {msg}");
        }
    }

    #[test]
    fn labels_round_trip_through_resolve() {
        for &p in ALL {
            assert_eq!(resolve(p.label()).unwrap(), p, "label {}", p.label());
            assert_eq!(resolve(p.key()).unwrap(), p, "key {}", p.key());
            assert!(!p.summary().is_empty());
        }
    }

    #[test]
    fn debug_rendering_matches_the_legacy_enum() {
        assert_eq!(format!("{COEFFICIENT:?}"), "CoEfficient");
        assert_eq!(format!("{FSPEC:?}"), "Fspec");
        assert_eq!(format!("{HOSA:?}"), "Hosa");
    }
}
