//! End-to-end simulation runner.
//!
//! [`Runner`] wires a [`Scheduler`] to a fault-injecting
//! [`flexray::bus::BusEngine`], produces workload instances cycle by
//! cycle, and collects the paper's four metrics into a [`RunReport`].

use std::sync::{Arc, Mutex};

use event_sim::rng::substream;
use event_sim::{SimDuration, SimTime};
use flexray::bus::BusEngine;
use flexray::codec::FrameCoding;
use flexray::config::ClusterConfig;
use flexray::signal::Signal;
use flexray::ChannelId;
use metrics::{DeadlineTracker, Summary};
use observe::{
    CounterSampler, EventKind, RingBufferSink, TraceConfig, TraceLog, TraceMode, Tracer,
};
use rand::Rng;
use reliability::campaign::{CampaignCounters, CampaignFaults, CampaignSpec, CampaignTarget};
use reliability::fault::{BernoulliFaults, FaultCounters, FaultProcess, GilbertElliott};
use reliability::monitor::{HealthState, MonitorConfig, ReliabilityMonitor};
use reliability::Ber;
use workloads::AperiodicMessage;

use crate::instance::{InstanceStatus, MessageClass};
use crate::policy::{CoefficientOptions, Scheduler, SchedulerError};
use crate::registry::PolicyRef;
use crate::scenario::{FaultModel, Scenario};

/// When a run ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCondition {
    /// Produce this many message instances (across both classes), then run
    /// until all pending transmissions drain.
    ProducedInstances(u64),
    /// Run (producing continuously) until this many instances have been
    /// **successfully transmitted** (delivered within their deadline, the
    /// paper's §III-E success notion). The running-time experiments
    /// measure the time to complete the transmission of a message set
    /// (§IV-B.1); a scheduler that drops, loses or delays instances needs
    /// proportionally longer to complete the same count.
    DeliveredInstances(u64),
    /// Run for a fixed span of simulated time (production continues to the
    /// end) — used by the utilization/latency/miss-ratio experiments.
    Horizon(SimDuration),
}

/// Everything a run needs.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Cluster geometry.
    pub cluster: ClusterConfig,
    /// Fault/reliability scenario.
    pub scenario: Scenario,
    /// Static (time-triggered) workload.
    pub static_messages: Vec<Signal>,
    /// Dynamic (event-triggered) workload.
    pub dynamic_messages: Vec<AperiodicMessage>,
    /// Scheduling policy under test (resolved from [`crate::registry`]).
    pub policy: PolicyRef,
    /// Stop condition.
    pub stop: StopCondition,
    /// Master seed (drives fault injection and arrival phases).
    pub seed: u64,
    /// Structured event tracing (off by default). Tracing observes the
    /// run without perturbing it: the [`RunReport::fingerprint`] of a
    /// traced run equals the untraced one.
    pub trace: TraceConfig,
}

/// Structured counters aggregated across every layer of one run: the
/// scheduler's steal decisions ([`tasks::ScheduleCounters`]), the fault
/// processes' injection counts ([`reliability::fault::FaultCounters`]),
/// and the instance tracker's recovery accounting. These explain *why*
/// two run fingerprints differ; the golden corpus diffs them field by
/// field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunCounters {
    /// Free static positions offered while dynamic backlog was pending.
    pub steal_attempts: u64,
    /// Steal attempts that served a backlogged dynamic entry.
    pub steal_granted: u64,
    /// Steal attempts where no backlogged entry fit the slot.
    pub steal_denied: u64,
    /// Early static copies sent through free slack.
    pub early_copies_sent: u64,
    /// Planned retransmission copies dropped for lack of fitting slack.
    pub dropped_copies: u64,
    /// Retransmission copies actually transmitted — the consumed part of
    /// the planned retransmission budget (Theorem 1's `k_i` copies).
    pub retransmission_budget_used: u64,
    /// Job resumptions after interruption (always zero on the FlexRay
    /// bus — slots are non-preemptive — but kept so CPU-side schedules
    /// share the same record shape).
    pub preemptions: u64,
    /// Frames the fault processes were consulted about (both channels).
    pub frames_checked: u64,
    /// Frames the fault processes corrupted (both channels).
    pub faults_injected: u64,
    /// Instances that suffered ≥ 1 corrupted transmission yet were still
    /// delivered — faults masked by retransmission redundancy.
    pub faults_recovered: u64,
    /// Health-state changes of the effective bus health (overall monitor
    /// ⊔ per-channel monitors), in either direction.
    pub health_transitions: u64,
    /// Transitions of the effective health into `Storm`.
    pub storm_entries: u64,
    /// Recoveries of the effective health back to `Nominal` from a
    /// degraded state (each one restores nominal soft-traffic service).
    pub service_restores: u64,
    /// Soft dynamic instances shed by the degraded mode (produced but
    /// refused admission by criticality).
    pub soft_shed: u64,
    /// Extra hard-message copies sent through slack freed by shedding
    /// (beyond the Theorem-1 plan and the nominal early copy).
    pub degraded_extra_copies: u64,
    /// Hard frames mirrored to the healthy channel while the owning
    /// channel was in `Storm`.
    pub failover_mirrors: u64,
    /// Scripted campaign events whose window opened during the run.
    pub campaign_events: u64,
    /// Frames corrupted unconditionally by scripted blackouts.
    pub campaign_blackout_faults: u64,
    /// Frames corrupted by scripted spike/babble draws on top of the
    /// stochastic model.
    pub campaign_extra_faults: u64,
    /// Cycles the reported fault counters spent frozen by a scripted
    /// sensor dropout.
    pub campaign_dropout_cycles: u64,
}

impl RunCounters {
    /// The baseline counters (the `coefficient-golden/1` schema as first
    /// recorded) as `(name, value)` pairs, in a fixed order.
    pub fn legacy_fields(&self) -> [(&'static str, u64); 10] {
        [
            ("steal_attempts", self.steal_attempts),
            ("steal_granted", self.steal_granted),
            ("steal_denied", self.steal_denied),
            ("early_copies_sent", self.early_copies_sent),
            ("dropped_copies", self.dropped_copies),
            (
                "retransmission_budget_used",
                self.retransmission_budget_used,
            ),
            ("preemptions", self.preemptions),
            ("frames_checked", self.frames_checked),
            ("faults_injected", self.faults_injected),
            ("faults_recovered", self.faults_recovered),
        ]
    }

    /// The resilience counters (monitor transitions, shedding, failover)
    /// added with the fault-storm subsystem, as `(name, value)` pairs.
    pub fn resilience_fields(&self) -> [(&'static str, u64); 6] {
        [
            ("health_transitions", self.health_transitions),
            ("storm_entries", self.storm_entries),
            ("service_restores", self.service_restores),
            ("soft_shed", self.soft_shed),
            ("degraded_extra_copies", self.degraded_extra_copies),
            ("failover_mirrors", self.failover_mirrors),
        ]
    }

    /// The scripted-campaign counters added with the chaos subsystem, as
    /// `(name, value)` pairs. All zero whenever
    /// [`Scenario::campaign`](crate::Scenario) is `None`.
    pub fn campaign_fields(&self) -> [(&'static str, u64); 4] {
        [
            ("campaign_events", self.campaign_events),
            ("campaign_blackout_faults", self.campaign_blackout_faults),
            ("campaign_extra_faults", self.campaign_extra_faults),
            ("campaign_dropout_cycles", self.campaign_dropout_cycles),
        ]
    }

    /// Every counter as a `(name, value)` pair, in a fixed order — the
    /// golden corpus serializes and diffs counters through this list so
    /// a field added here is automatically recorded and compared.
    pub fn fields(&self) -> [(&'static str, u64); 20] {
        let legacy = self.legacy_fields();
        let resilience = self.resilience_fields();
        let campaign = self.campaign_fields();
        let mut all = [("", 0u64); 20];
        all[..10].copy_from_slice(&legacy);
        all[10..16].copy_from_slice(&resilience);
        all[16..].copy_from_slice(&campaign);
        all
    }

    /// `true` iff every steal attempt was resolved one way or the other.
    pub fn steal_identity_holds(&self) -> bool {
        self.steal_granted + self.steal_denied == self.steal_attempts
    }
}

/// The measured results of one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Which policy produced this report.
    pub policy: PolicyRef,
    /// Scenario label.
    pub scenario: &'static str,
    /// Simulated time from start to completion (drain) or horizon.
    pub running_time: SimDuration,
    /// Channel-A bandwidth utilization: the allocated fraction of the
    /// channel timeline (occupied static slots count whole, as TDMA
    /// reserves them; dynamic transmissions count their consumed
    /// minislots).
    pub utilization_a: f64,
    /// Channel-B bandwidth utilization (same definition).
    pub utilization_b: f64,
    /// Combined utilization over both channels.
    pub utilization: f64,
    /// Wire-level busy fraction over both channels (frame bits only).
    pub wire_utilization: f64,
    /// Latency of delivered static instances.
    pub static_latency: Summary,
    /// Latency of delivered dynamic instances.
    pub dynamic_latency: Summary,
    /// Deadline accounting for static instances.
    pub static_deadlines: DeadlineTracker,
    /// Deadline accounting for dynamic instances.
    pub dynamic_deadlines: DeadlineTracker,
    /// Instances produced.
    pub produced: u64,
    /// Instances delivered (≥ 1 uncorrupted transmission).
    pub delivered: u64,
    /// Frames transmitted (both channels).
    pub frames: u64,
    /// Frames corrupted by fault injection.
    pub corrupted: u64,
    /// Dynamic messages served through stolen static slack (CoEfficient).
    pub cooperative_static_serves: u64,
    /// Early static copies sent through free slack (CoEfficient).
    pub early_copies_sent: u64,
    /// Retransmission copies transmitted.
    pub copy_transmissions: u64,
    /// Structured counters from every layer (steal decisions, fault
    /// injection/recovery, retransmission budget).
    pub counters: RunCounters,
    /// Per-channel fault-process counters (A, B) — the merged totals are
    /// `counters.frames_checked` / `counters.faults_injected`; the split
    /// view shows which channel the storm hit.
    pub channel_faults: [FaultCounters; 2],
    /// `true` if the run hit the safety cycle cap before draining.
    pub truncated: bool,
    /// High-water bytes of the scheduler's reusable scratch buffers (see
    /// [`Scheduler::scratch_bytes`]). A measurement of the implementation,
    /// not of the schedule, so — like `trace` — it is **excluded** from
    /// [`fingerprint`](Self::fingerprint).
    pub peak_scratch_bytes: u64,
    /// The captured event stream when [`RunConfig::trace`] was enabled
    /// (`None` otherwise). Deliberately **excluded** from
    /// [`fingerprint`](Self::fingerprint): traces describe a run, they
    /// are not part of its measured result.
    pub trace: Option<TraceLog>,
    /// Recovery observations when the scenario carried a scripted
    /// campaign (`None` otherwise). Excluded from
    /// [`fingerprint`](Self::fingerprint) like `trace`.
    pub chaos: Option<ChaosObservation>,
}

impl RunReport {
    /// Combined deadline miss ratio over both classes.
    pub fn miss_ratio(&self) -> f64 {
        let mut t = self.static_deadlines;
        t.merge(&self.dynamic_deadlines);
        t.miss_ratio()
    }

    /// Stable digest over every measured quantity of this run.
    ///
    /// Two runs of the same [`RunConfig`] must produce the same
    /// fingerprint — on any thread of any sweep, at any parallelism. The
    /// sweep harness's determinism regression tests and the `replay`
    /// entry point compare these digests, so the fingerprint folds in the
    /// *exact* bit patterns of every float (no rounding) and the raw
    /// counters behind every derived metric.
    pub fn fingerprint(&self) -> u64 {
        let mut d = event_sim::rng::Digest::new();
        d.push(self.policy.fingerprint_tag());
        d.push_bytes(self.scenario.as_bytes());
        d.push(self.running_time.as_nanos());
        d.push_f64(self.utilization_a);
        d.push_f64(self.utilization_b);
        d.push_f64(self.wire_utilization);
        for latency in [&self.static_latency, &self.dynamic_latency] {
            d.push(latency.count());
            d.push_u128(latency.total_nanos());
            d.push(latency.min().map_or(u64::MAX, |m| m.as_nanos()));
            d.push(latency.max().map_or(u64::MAX, |m| m.as_nanos()));
        }
        for deadlines in [&self.static_deadlines, &self.dynamic_deadlines] {
            d.push(deadlines.met());
            d.push(deadlines.missed());
        }
        d.push(self.produced);
        d.push(self.delivered);
        d.push(self.frames);
        d.push(self.corrupted);
        d.push(self.cooperative_static_serves);
        d.push(self.early_copies_sent);
        d.push(self.copy_transmissions);
        for (_, value) in self.counters.legacy_fields() {
            d.push(value);
        }
        // The resilience counters joined the schema after the baseline
        // corpus was recorded. Each folds in only when it engaged — tagged
        // with its index so distinct fields cannot alias — which keeps the
        // digest of every run where the subsystem stayed idle identical to
        // its recorded baseline.
        for (i, (_, value)) in self.counters.resilience_fields().into_iter().enumerate() {
            if value != 0 {
                d.push(0x5245_5349_4c00 | i as u64);
                d.push(value);
            }
        }
        // Same deal for the campaign counters (PR: chaos campaigns): a
        // distinct tag namespace, folded only when the campaign engaged,
        // so every campaign-free digest is bit-identical to its baseline.
        for (i, (_, value)) in self.counters.campaign_fields().into_iter().enumerate() {
            if value != 0 {
                d.push(0x4348_414F_5300 | i as u64);
                d.push(value);
            }
        }
        d.push(u64::from(self.truncated));
        d.finish()
    }
}

/// What happened to one scripted [`reliability::campaign::FaultEvent`]
/// during a run: when it
/// struck, when it cleared, and when — if ever — the effective bus health
/// returned to `Nominal` afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignEventOutcome {
    /// The event kind's short label (`"blackout"`, `"ber-spike"`, …).
    pub kind: &'static str,
    /// Channel(s) the event struck.
    pub target: CampaignTarget,
    /// First cycle the event was active.
    pub start_cycle: u64,
    /// First cycle after the event cleared (`None` for a permanent fault,
    /// which by definition has no recovery to await).
    pub clear_cycle: Option<u64>,
    /// First cycle at or after `clear_cycle` where the effective health
    /// was back to `Nominal` (`None` if the run ended first or the event
    /// is permanent). Recovery latency is `restored_at_cycle −
    /// clear_cycle`: zero means service was nominal again on the very
    /// first clean cycle.
    pub restored_at_cycle: Option<u64>,
}

/// Per-run recovery observations, collected only when the scenario
/// carries a [`CampaignSpec`]. Like [`RunReport::trace`] this *describes*
/// the run rather than measuring the schedule, so it is **excluded** from
/// [`RunReport::fingerprint`] — the counters it summarizes already feed
/// the digest through [`RunCounters::campaign_fields`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosObservation {
    /// One outcome per scripted event, in spec order.
    pub events: Vec<CampaignEventOutcome>,
    /// Cycles whose effective health was `Nominal`.
    pub nominal_cycles: u64,
    /// Cycles whose effective health was degraded (`Stressed`/`Storm`).
    pub degraded_cycles: u64,
    /// Effective health when the run ended.
    pub final_health: HealthState,
    /// `true` iff every [`RunCounters`] field was monotone non-decreasing
    /// across the whole run (sampled once per cycle).
    pub counters_monotone: bool,
}

impl ChaosObservation {
    /// Availability: the fraction of cycles with `Nominal` effective
    /// health.
    pub fn availability(&self) -> f64 {
        let total = self.nominal_cycles + self.degraded_cycles;
        if total == 0 {
            1.0
        } else {
            self.nominal_cycles as f64 / total as f64
        }
    }
}

/// Cycle-by-cycle recovery bookkeeping behind [`ChaosObservation`].
#[derive(Debug)]
struct ChaosTracker {
    spec: CampaignSpec,
    nominal_cycles: u64,
    degraded_cycles: u64,
    /// Index-aligned with `spec.events()`.
    restored_at: Vec<Option<u64>>,
    prev_fields: [u64; 20],
    monotone: bool,
}

impl ChaosTracker {
    fn new(spec: CampaignSpec) -> Self {
        let restored_at = vec![None; spec.events().len()];
        ChaosTracker {
            spec,
            nominal_cycles: 0,
            degraded_cycles: 0,
            restored_at,
            prev_fields: [0; 20],
            monotone: true,
        }
    }

    /// Records the health of the cycle that just completed (`cycle` is its
    /// index) and the counters sampled after it.
    fn observe(&mut self, cycle: u64, effective: HealthState, counters: &RunCounters) {
        if effective == HealthState::Nominal {
            self.nominal_cycles += 1;
        } else {
            self.degraded_cycles += 1;
        }
        let fields = counters.fields().map(|(_, v)| v);
        if fields
            .iter()
            .zip(self.prev_fields.iter())
            .any(|(now, before)| now < before)
        {
            self.monotone = false;
        }
        self.prev_fields = fields;
        for (event, restored) in self.spec.events().iter().zip(self.restored_at.iter_mut()) {
            if restored.is_none()
                && effective == HealthState::Nominal
                && event.end_cycle().is_some_and(|end| cycle >= end)
            {
                *restored = Some(cycle);
            }
        }
    }

    fn observation(&self, final_health: HealthState) -> ChaosObservation {
        let events = self
            .spec
            .events()
            .iter()
            .zip(self.restored_at.iter())
            .map(|(event, restored)| CampaignEventOutcome {
                kind: event.kind.label(),
                target: event.target,
                start_cycle: event.start_cycle,
                clear_cycle: event.end_cycle(),
                restored_at_cycle: *restored,
            })
            .collect();
        ChaosObservation {
            events,
            nominal_cycles: self.nominal_cycles,
            degraded_cycles: self.degraded_cycles,
            final_health,
            counters_monotone: self.monotone,
        }
    }
}

/// Safety cap: no experiment in the suite needs more simulated cycles.
const MAX_CYCLES: u64 = 5_000_000;

/// Drives one policy over one workload. See the crate-level example.
#[derive(Debug)]
pub struct Runner {
    cfg: RunConfig,
    scheduler: Scheduler,
    engine: BusEngine,
    /// Arrival phase per dynamic message (index-aligned).
    dynamic_phases: Vec<SimDuration>,
    /// Bus-wide reliability monitor over the merged fault counters; the
    /// engine holds the per-channel monitors.
    monitor: ReliabilityMonitor,
    /// Worst of (overall, channel A, channel B) health at the last cycle.
    effective_health: HealthState,
    health_transitions: u64,
    storm_entries: u64,
    service_restores: u64,
    /// The shared ring buffer behind `tracer` when tracing is enabled;
    /// drained into [`RunReport::trace`] by [`report`](Self::report).
    sink: Option<Arc<Mutex<RingBufferSink>>>,
    tracer: Tracer,
    sampler: CounterSampler,
    /// Recovery bookkeeping, present iff the scenario carries a campaign
    /// — campaign-free runs pay nothing on the cycle path.
    chaos: Option<ChaosTracker>,
}

impl Runner {
    /// Builds the scheduler and fault-injecting engine for `cfg` with
    /// default [`CoefficientOptions`].
    ///
    /// # Errors
    /// Propagates [`SchedulerError`] from scheduler construction.
    pub fn new(cfg: RunConfig) -> Result<Self, SchedulerError> {
        Self::new_with_options(cfg, CoefficientOptions::default())
    }

    /// Like [`Runner::new`] with explicit CoEfficient feature switches
    /// (used by the ablation experiments).
    ///
    /// # Errors
    /// Propagates [`SchedulerError`] from scheduler construction.
    pub fn new_with_options(
        cfg: RunConfig,
        options: CoefficientOptions,
    ) -> Result<Self, SchedulerError> {
        let coding = FrameCoding::default();
        let (sink, tracer) = match cfg.trace.mode {
            TraceMode::Off => (None, Tracer::disabled()),
            TraceMode::Ring { capacity } => {
                let sink = Arc::new(Mutex::new(RingBufferSink::new(capacity)));
                (Some(sink.clone()), Tracer::new(sink))
            }
        };
        let sampler = CounterSampler::new(if cfg.trace.is_enabled() {
            cfg.trace.counter_sample_every
        } else {
            0
        });
        let mut scheduler = Scheduler::new_with_options(
            cfg.policy,
            cfg.cluster.clone(),
            coding,
            &cfg.scenario,
            &cfg.static_messages,
            &cfg.dynamic_messages,
            options,
        )?;
        if tracer.is_enabled() {
            scheduler.set_tracer(tracer.clone());
        }
        let fault = |channel_index: usize, seed: u64| -> Box<dyn FaultProcess> {
            let base: Box<dyn FaultProcess> = match cfg.scenario.fault_model {
                FaultModel::Bernoulli => Box::new(BernoulliFaults::new(cfg.scenario.ber, seed)),
                FaultModel::GilbertElliott {
                    bad_factor,
                    p_gb,
                    p_bg,
                } => {
                    let bad = Ber::new((cfg.scenario.ber.rate() * bad_factor).min(0.999))
                        .expect("scaled BER in range");
                    Box::new(GilbertElliott::new(cfg.scenario.ber, bad, p_gb, p_bg, seed))
                }
            };
            // The decorator draws from its own `fault/campaign` substream
            // of the same per-channel seed, so the base stream is exactly
            // the stream a campaign-free run would consume.
            match &cfg.scenario.campaign {
                Some(spec) => Box::new(CampaignFaults::new(base, spec, channel_index, seed)),
                None => base,
            }
        };
        // Thresholds sit a safe factor above the frame-failure rate the
        // offline plan assumed (a representative 1000-bit frame at the
        // scenario's good-state BER), so nominal runs never trip the
        // monitor while a Gilbert–Elliott bad state does within windows.
        let monitor_cfg = MonitorConfig::for_expected_fault_rate(
            cfg.scenario.ber.frame_failure_probability(1000),
        );
        let mut engine = BusEngine::new(cfg.cluster.clone())
            .with_coding(coding)
            .with_faults(fault(0, cfg.seed ^ 0xA), fault(1, cfg.seed ^ 0xB))
            .with_health_monitoring(monitor_cfg);
        if tracer.is_enabled() {
            engine.set_tracer(tracer.clone());
        }
        let mut monitor = ReliabilityMonitor::new(monitor_cfg);
        if tracer.is_enabled() {
            monitor.set_tracer(tracer.clone(), 2);
        }
        let mut rng = substream(cfg.seed, "runner/dynamic-phases");
        let dynamic_phases: Vec<SimDuration> = cfg
            .dynamic_messages
            .iter()
            .map(|d| {
                let span = d.min_interarrival.as_nanos();
                SimDuration::from_nanos(rng.gen_range(0..span))
            })
            .collect();
        // Size the instance store for the whole run up front so the
        // steady-state production path never grows it (the counting-
        // allocator test pins this for the cycle loop proper).
        let expected_instances = match cfg.stop {
            StopCondition::Horizon(h) => {
                let statics: u64 = cfg
                    .static_messages
                    .iter()
                    .map(|s| h.as_nanos() / s.period.as_nanos() + 1)
                    .sum();
                let dynamics: u64 = cfg
                    .dynamic_messages
                    .iter()
                    .map(|d| h.as_nanos() / d.min_interarrival.as_nanos() + 1)
                    .sum();
                statics + dynamics
            }
            StopCondition::ProducedInstances(n) => {
                n + (cfg.static_messages.len() + cfg.dynamic_messages.len()) as u64
            }
            // Open-ended: delivery-gated runs produce until enough arrive;
            // twice the target is a generous steady-state estimate.
            StopCondition::DeliveredInstances(n) => n.saturating_mul(2),
        };
        scheduler.reserve_instances(usize::try_from(expected_instances).unwrap_or(usize::MAX));
        let chaos = cfg.scenario.campaign.clone().map(ChaosTracker::new);
        Ok(Runner {
            cfg,
            scheduler,
            engine,
            dynamic_phases,
            monitor,
            effective_health: HealthState::Nominal,
            health_transitions: 0,
            storm_entries: 0,
            service_restores: 0,
            sink,
            tracer,
            sampler,
            chaos,
        })
    }

    /// Read-only access to the scheduler (allocation, tracker).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Runs to completion and reports.
    pub fn run(self) -> RunReport {
        self.run_with_instances().0
    }

    /// Runs to completion and reports, additionally returning the life
    /// record of every message instance (production, deadline, first
    /// uncorrupted delivery). End-to-end pipelines — e.g. a backbone
    /// gateway forwarding FlexRay frames onto a TT-Ethernet link — need
    /// the per-instance delivery instants, which the aggregated
    /// [`RunReport`] deliberately summarizes away. The schedule itself is
    /// byte-identical to [`run`](Self::run)'s: the instance records are a
    /// read-out, not a mode.
    pub fn run_with_instances(mut self) -> (RunReport, Vec<InstanceStatus>) {
        let cycle_dur = self.cfg.cluster.cycle_duration();
        let production_target = match self.cfg.stop {
            StopCondition::ProducedInstances(n) => Some(n),
            StopCondition::Horizon(_) | StopCondition::DeliveredInstances(_) => None,
        };
        let horizon = match self.cfg.stop {
            StopCondition::Horizon(h) => Some(SimTime::ZERO + h),
            StopCondition::ProducedInstances(_) | StopCondition::DeliveredInstances(_) => None,
        };

        // Release cursors.
        let mut static_next: Vec<SimTime> = self
            .cfg
            .static_messages
            .iter()
            .map(|s| SimTime::ZERO + s.offset)
            .collect();
        let mut dynamic_next: Vec<SimTime> = self
            .dynamic_phases
            .iter()
            .map(|p| SimTime::ZERO + *p)
            .collect();
        let max_static_period = self
            .cfg
            .static_messages
            .iter()
            .map(|s| s.period)
            .max()
            .unwrap_or(SimDuration::ZERO);

        let mut produced: u64 = 0;
        let mut production_done =
            self.cfg.static_messages.is_empty() && self.cfg.dynamic_messages.is_empty();
        let mut last_production = SimTime::ZERO;
        let mut cycle: u64 = 0;
        let mut truncated = false;

        loop {
            let cycle_start = self.cfg.cluster.cycle_start(cycle);
            let cycle_end = cycle_start + cycle_dur;
            self.scheduler.purge_expired(cycle_start);

            // Produce every release falling in this cycle, in time order
            // across messages (merge by earliest release).
            if !production_done {
                loop {
                    // Earliest pending release among all messages.
                    let next_static = static_next
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, t)| **t)
                        .map(|(i, t)| (i, *t));
                    let next_dynamic = dynamic_next
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, t)| **t)
                        .map(|(i, t)| (i, *t));
                    let pick_static = match (next_static, next_dynamic) {
                        (Some((_, ts)), Some((_, td))) => ts <= td,
                        (Some(_), None) => true,
                        (None, _) => false,
                    };
                    let release = if pick_static {
                        next_static.map(|(_, t)| t)
                    } else {
                        next_dynamic.map(|(_, t)| t)
                    };
                    let Some(release) = release else { break };
                    if release >= cycle_end {
                        break;
                    }
                    if let Some(h) = horizon {
                        if release >= h {
                            production_done = true;
                            break;
                        }
                    }
                    if pick_static {
                        let (i, t) = next_static.expect("static release exists");
                        self.scheduler
                            .produce_static(self.cfg.static_messages[i].id, t);
                        static_next[i] = t + self.cfg.static_messages[i].period;
                    } else {
                        let (i, t) = next_dynamic.expect("dynamic release exists");
                        self.scheduler
                            .produce_dynamic(self.cfg.dynamic_messages[i].frame_id, t);
                        dynamic_next[i] = t + self.cfg.dynamic_messages[i].min_interarrival;
                    }
                    produced += 1;
                    last_production = release;
                    if let Some(target) = production_target {
                        if produced >= target {
                            production_done = true;
                            break;
                        }
                    }
                }
            }

            self.engine.run_cycle(cycle, &mut self.scheduler);
            cycle += 1;
            self.observe_health();
            if self.chaos.is_some() {
                let counters = self.collect_counters();
                let effective = self.effective_health;
                if let Some(tracker) = self.chaos.as_mut() {
                    tracker.observe(cycle - 1, effective, &counters);
                }
            }
            let elapsed = self.engine.elapsed();
            if self.sampler.should_sample(cycle) {
                let counters = self.collect_counters();
                self.tracer.emit(
                    elapsed,
                    EventKind::CounterSample {
                        cycle,
                        values: counters.fields().iter().map(|&(_, v)| v).collect(),
                    },
                );
            }

            // Stop checks.
            match self.cfg.stop {
                StopCondition::Horizon(h) => {
                    if elapsed >= SimTime::ZERO + h {
                        break;
                    }
                }
                StopCondition::ProducedInstances(_) => {
                    let windows_closed =
                        elapsed >= last_production.saturating_add(max_static_period);
                    if production_done && windows_closed && self.scheduler.pending_work() == 0 {
                        break;
                    }
                }
                StopCondition::DeliveredInstances(n) => {
                    if self.scheduler.tracker().delivered_in_time() >= n {
                        break;
                    }
                }
            }
            if cycle >= MAX_CYCLES {
                truncated = true;
                break;
            }
        }

        let instances = self.scheduler.tracker().instances().to_vec();
        (self.report(truncated), instances)
    }

    /// Feeds the bus-wide monitor the merged fault counters, combines it
    /// with the engine's per-channel health into the *effective* health
    /// (the worst of the three — a single-channel storm must degrade
    /// service even when the merged rate is diluted by the healthy
    /// channel), counts transitions, and pushes the result into the
    /// scheduler for the next cycle's degraded-mode decisions.
    fn observe_health(&mut self) {
        let merged = self
            .engine
            .fault_counters(ChannelId::A)
            .merged(self.engine.fault_counters(ChannelId::B));
        let now = self.engine.elapsed();
        self.monitor.set_trace_clock(now);
        let overall = self.monitor.observe(merged);
        let channels = [
            self.engine.channel_health(ChannelId::A),
            self.engine.channel_health(ChannelId::B),
        ];
        let effective = overall.max(channels[0]).max(channels[1]);
        if effective != self.effective_health {
            self.health_transitions += 1;
            if self.tracer.is_enabled() {
                self.tracer.emit(
                    now,
                    EventKind::HealthTransition {
                        scope: 3,
                        from: self.effective_health.as_u8(),
                        to: effective.as_u8(),
                    },
                );
            }
            if effective == HealthState::Storm {
                self.storm_entries += 1;
            }
            if effective == HealthState::Nominal {
                self.service_restores += 1;
            }
            self.effective_health = effective;
        }
        self.scheduler.set_health(effective, channels);
    }

    /// Aggregates the run counters from every layer (scheduler steal
    /// decisions, fault injection/recovery, health transitions). Shared by
    /// the final [`report`](Self::report) and the periodic
    /// [`EventKind::CounterSample`] emission.
    fn collect_counters(&self) -> RunCounters {
        let tracker = self.scheduler.tracker();
        let sched = self.scheduler.schedule_counters();
        let faults = self
            .engine
            .fault_counters(ChannelId::A)
            .merged(self.engine.fault_counters(ChannelId::B));
        let faults_recovered = tracker
            .instances()
            .iter()
            .filter(|i| i.corrupted > 0 && i.is_delivered())
            .count() as u64;
        let campaign = [ChannelId::A, ChannelId::B]
            .into_iter()
            .filter_map(|ch| self.engine.campaign_counters(ch))
            .fold(CampaignCounters::default(), CampaignCounters::merged);
        RunCounters {
            steal_attempts: sched.steal_attempts,
            steal_granted: sched.steal_granted,
            steal_denied: sched.steal_denied,
            early_copies_sent: sched.early_copies,
            dropped_copies: self.scheduler.dropped_copies(),
            retransmission_budget_used: self.scheduler.copy_transmissions(),
            preemptions: sched.preemptions,
            frames_checked: faults.frames_checked,
            faults_injected: faults.faults_injected,
            faults_recovered,
            health_transitions: self.health_transitions,
            storm_entries: self.storm_entries,
            service_restores: self.service_restores,
            soft_shed: sched.degraded_sheds,
            degraded_extra_copies: self.scheduler.degraded_extra_copies(),
            failover_mirrors: self.scheduler.failover_mirrors(),
            campaign_events: campaign.events_started,
            campaign_blackout_faults: campaign.blackout_faults,
            campaign_extra_faults: campaign.extra_faults,
            campaign_dropout_cycles: campaign.dropout_cycles,
        }
    }

    fn report(self, truncated: bool) -> RunReport {
        let elapsed = self.engine.elapsed();
        let counters = self.collect_counters();
        let trace = self
            .sink
            .as_ref()
            .map(|sink| sink.lock().expect("trace sink lock poisoned").take_log());
        let a = self.engine.stats(ChannelId::A);
        let b = self.engine.stats(ChannelId::B);
        let tracker = self.scheduler.tracker();
        let utilization_a = a.occupied_utilization(elapsed);
        let utilization_b = b.occupied_utilization(elapsed);
        let wire_utilization = (a.utilization(elapsed) + b.utilization(elapsed)) / 2.0;
        RunReport {
            policy: self.scheduler.policy(),
            scenario: self.cfg.scenario.name,
            running_time: elapsed - SimTime::ZERO,
            utilization_a,
            utilization_b,
            utilization: (utilization_a + utilization_b) / 2.0,
            wire_utilization,
            static_latency: tracker.latency_summary(MessageClass::Static),
            dynamic_latency: tracker.latency_summary(MessageClass::Dynamic),
            static_deadlines: tracker.deadline_tracker(MessageClass::Static),
            dynamic_deadlines: tracker.deadline_tracker(MessageClass::Dynamic),
            produced: tracker.produced() as u64,
            delivered: tracker.delivered() as u64,
            frames: a.frames + b.frames,
            corrupted: a.corrupted + b.corrupted,
            cooperative_static_serves: self.scheduler.cooperative_static_serves(),
            early_copies_sent: self.scheduler.early_copies_sent(),
            copy_transmissions: self.scheduler.copy_transmissions(),
            counters,
            channel_faults: [
                self.engine.fault_counters(ChannelId::A),
                self.engine.fault_counters(ChannelId::B),
            ],
            truncated,
            peak_scratch_bytes: self.scheduler.scratch_bytes(),
            trace,
            chaos: self
                .chaos
                .as_ref()
                .map(|t| t.observation(self.effective_health)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{COEFFICIENT, FSPEC, HOSA};

    fn base_config(policy: PolicyRef, stop: StopCondition) -> RunConfig {
        RunConfig {
            cluster: ClusterConfig::paper_dynamic(50),
            scenario: Scenario::ber7(),
            static_messages: workloads::bbw::message_set(),
            dynamic_messages: workloads::sae::message_set(
                workloads::sae::IdRange::StartingAt(20),
                1,
            ),
            policy,
            stop,
            seed: 42,
            trace: TraceConfig::off(),
        }
    }

    #[test]
    fn coefficient_run_delivers_and_drains() {
        let report = Runner::new(base_config(
            COEFFICIENT,
            StopCondition::ProducedInstances(300),
        ))
        .unwrap()
        .run();
        assert!(!report.truncated);
        assert_eq!(report.produced, 300);
        assert!(report.delivered as f64 >= 0.95 * report.produced as f64);
        assert!(report.running_time > SimDuration::ZERO);
        assert!(report.frames > 0);
    }

    #[test]
    fn fspec_run_completes_too() {
        let report = Runner::new(base_config(FSPEC, StopCondition::ProducedInstances(300)))
            .unwrap()
            .run();
        assert!(!report.truncated);
        assert_eq!(report.produced, 300);
        assert!(report.delivered > 0);
    }

    #[test]
    fn coefficient_beats_fspec_on_running_time() {
        let co = Runner::new(base_config(
            COEFFICIENT,
            StopCondition::ProducedInstances(500),
        ))
        .unwrap()
        .run();
        let fs = Runner::new(base_config(FSPEC, StopCondition::ProducedInstances(500)))
            .unwrap()
            .run();
        assert!(
            co.running_time < fs.running_time,
            "CoEfficient {:?} !< FSPEC {:?}",
            co.running_time,
            fs.running_time
        );
    }

    #[test]
    fn coefficient_utilizes_more_bandwidth() {
        let horizon = StopCondition::Horizon(SimDuration::from_millis(500));
        let co = Runner::new(base_config(COEFFICIENT, horizon))
            .unwrap()
            .run();
        let fs = Runner::new(base_config(FSPEC, horizon)).unwrap().run();
        assert!(
            co.utilization > fs.utilization,
            "CoEfficient {} !> FSPEC {}",
            co.utilization,
            fs.utilization
        );
    }

    #[test]
    fn coefficient_outperforms_fspec_under_pressure() {
        // With a tight 25-minislot dynamic segment, FSPEC's copies crowd
        // the FTDMA arbitration; CoEfficient offloads to static slack.
        //
        // Mean dynamic latency is deliberately NOT compared here: FSPEC
        // fails to deliver dozens of messages that CoEfficient delivers
        // (late ones included), so its latency average survives on the
        // easy subset and the strict `<` flips with the seed. Deliveries
        // and deadline misses are the seed-robust superiority claims.
        let mk = |policy| {
            let mut cfg = base_config(
                policy,
                StopCondition::Horizon(SimDuration::from_millis(500)),
            );
            cfg.cluster = ClusterConfig::paper_dynamic(25);
            Runner::new(cfg).unwrap().run()
        };
        let co = mk(COEFFICIENT);
        let fs = mk(FSPEC);
        assert!(
            co.delivered > fs.delivered,
            "CoEfficient delivered {} !> FSPEC {}",
            co.delivered,
            fs.delivered
        );
        assert!(
            co.miss_ratio() < fs.miss_ratio(),
            "CoEfficient miss {} !< FSPEC {}",
            co.miss_ratio(),
            fs.miss_ratio()
        );
    }

    #[test]
    fn horizon_stop_is_exact() {
        let report = Runner::new(base_config(
            COEFFICIENT,
            StopCondition::Horizon(SimDuration::from_millis(100)),
        ))
        .unwrap()
        .run();
        assert_eq!(report.running_time, SimDuration::from_millis(100));
    }

    #[test]
    fn deterministic_under_seed() {
        let mk = || {
            Runner::new(base_config(
                COEFFICIENT,
                StopCondition::ProducedInstances(200),
            ))
            .unwrap()
            .run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.running_time, b.running_time);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.corrupted, b.corrupted);
    }

    #[test]
    fn fault_free_scenario_delivers_everything() {
        let mut cfg = base_config(COEFFICIENT, StopCondition::ProducedInstances(200));
        cfg.scenario = Scenario::fault_free();
        let report = Runner::new(cfg).unwrap().run();
        assert_eq!(report.corrupted, 0);
        assert_eq!(report.delivered, report.produced);
    }

    #[test]
    fn hosa_sits_between_the_extremes() {
        let horizon = StopCondition::Horizon(SimDuration::from_millis(500));
        let co = Runner::new(base_config(COEFFICIENT, horizon))
            .unwrap()
            .run();
        let ho = Runner::new(base_config(HOSA, horizon)).unwrap().run();
        assert!(ho.delivered > 0);
        assert!(ho.cooperative_static_serves == 0);
        // HOSA's blanket mirror gives it decent delivery but it cannot
        // exceed CoEfficient's slack-assisted delivery.
        assert!(ho.delivered <= co.delivered);
    }

    #[test]
    fn static_only_workload_runs() {
        let mut cfg = base_config(
            COEFFICIENT,
            StopCondition::Horizon(SimDuration::from_millis(100)),
        );
        cfg.dynamic_messages.clear();
        let report = Runner::new(cfg).unwrap().run();
        assert!(report.delivered > 0);
        assert_eq!(report.dynamic_latency.count(), 0);
    }

    #[test]
    fn dynamic_only_workload_runs() {
        let mut cfg = base_config(
            COEFFICIENT,
            StopCondition::Horizon(SimDuration::from_millis(200)),
        );
        cfg.static_messages.clear();
        let report = Runner::new(cfg).unwrap().run();
        assert!(report.delivered > 0);
        assert_eq!(report.static_latency.count(), 0);
    }

    #[test]
    fn bursty_scenario_still_meets_goals() {
        let mut cfg = base_config(
            COEFFICIENT,
            StopCondition::Horizon(SimDuration::from_millis(300)),
        );
        cfg.scenario = Scenario::ber7().bursty();
        let report = Runner::new(cfg).unwrap().run();
        assert!(report.delivered > 0);
        // Burstiness changes the fault pattern, not feasibility.
        assert!(report.delivered * 10 >= report.produced * 9);
    }

    #[test]
    fn run_counters_are_consistent_with_legacy_fields() {
        let report = Runner::new(base_config(
            COEFFICIENT,
            StopCondition::Horizon(SimDuration::from_millis(200)),
        ))
        .unwrap()
        .run();
        let c = report.counters;
        assert!(c.steal_identity_holds(), "{c:?}");
        assert_eq!(c.steal_granted, report.cooperative_static_serves);
        assert_eq!(c.early_copies_sent, report.early_copies_sent);
        assert_eq!(c.retransmission_budget_used, report.copy_transmissions);
        assert_eq!(
            c.faults_injected, report.corrupted,
            "fault-process injections must equal bus-observed corruptions"
        );
        assert!(c.frames_checked >= report.frames);
        assert_eq!(c.preemptions, 0, "FlexRay slots are non-preemptive");
        assert!(
            c.faults_recovered <= c.faults_injected,
            "cannot recover more instances than frames corrupted"
        );
    }

    #[test]
    fn counters_feed_the_fingerprint() {
        let report = Runner::new(base_config(
            COEFFICIENT,
            StopCondition::Horizon(SimDuration::from_millis(100)),
        ))
        .unwrap()
        .run();
        let base = report.fingerprint();
        let mut perturbed = report.clone();
        perturbed.counters.faults_recovered += 1;
        assert_ne!(
            base,
            perturbed.fingerprint(),
            "a counter change must move the fingerprint"
        );
    }

    /// A base config plus a 50-cycle channel-A blackout opening at cycle
    /// 40, with a horizon long enough to watch the recovery.
    fn blackout_config(policy: PolicyRef) -> RunConfig {
        let campaign = CampaignSpec::new().blackout(CampaignTarget::A, 40, 50);
        let horizon = ClusterConfig::paper_dynamic(50).cycle_duration() * 220;
        let mut cfg = base_config(policy, StopCondition::Horizon(horizon));
        cfg.scenario = Scenario::ber7().with_campaign("BER-7-blackout", campaign);
        cfg
    }

    #[test]
    fn campaign_free_run_reports_no_chaos() {
        let report = Runner::new(base_config(
            COEFFICIENT,
            StopCondition::Horizon(SimDuration::from_millis(100)),
        ))
        .unwrap()
        .run();
        assert!(report.chaos.is_none());
        assert_eq!(report.counters.campaign_fields().map(|(_, v)| v), [0; 4]);
    }

    #[test]
    fn blackout_campaign_disturbs_and_recovers() {
        let report = Runner::new(blackout_config(COEFFICIENT)).unwrap().run();
        let c = report.counters;
        assert_eq!(c.campaign_events, 1);
        assert!(c.campaign_blackout_faults > 0, "{c:?}");
        assert_eq!(
            c.faults_injected, report.corrupted,
            "the blackout's corruptions must be bus-observed like any other"
        );
        let chaos = report.chaos.expect("campaign scenario collects chaos");
        assert_eq!(chaos.events.len(), 1);
        let event = chaos.events[0];
        assert_eq!(event.kind, "blackout");
        assert_eq!(event.clear_cycle, Some(90));
        let restored = event
            .restored_at_cycle
            .expect("service must restore after the blackout clears");
        assert!(restored >= 90);
        assert_eq!(chaos.final_health, HealthState::Nominal);
        assert!(chaos.counters_monotone);
        assert!(
            chaos.degraded_cycles > 0,
            "the blackout must degrade health"
        );
        assert!(
            c.service_restores >= 1,
            "recovery must fire a service restore: {c:?}"
        );
    }

    #[test]
    fn campaign_counters_feed_the_fingerprint_but_chaos_does_not() {
        let report = Runner::new(blackout_config(COEFFICIENT)).unwrap().run();
        let base = report.fingerprint();
        let mut counter_bump = report.clone();
        counter_bump.counters.campaign_extra_faults += 1;
        assert_ne!(base, counter_bump.fingerprint());
        let mut chaos_stripped = report.clone();
        chaos_stripped.chaos = None;
        assert_eq!(
            base,
            chaos_stripped.fingerprint(),
            "chaos observations describe the run; they are not measurements"
        );
    }

    #[test]
    fn campaign_runs_are_deterministic() {
        let a = Runner::new(blackout_config(COEFFICIENT)).unwrap().run();
        let b = Runner::new(blackout_config(COEFFICIENT)).unwrap().run();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.chaos, b.chaos);
    }

    #[test]
    fn miss_ratio_combines_classes() {
        let report = Runner::new(base_config(
            COEFFICIENT,
            StopCondition::Horizon(SimDuration::from_millis(200)),
        ))
        .unwrap()
        .run();
        let r = report.miss_ratio();
        assert!((0.0..=1.0).contains(&r));
    }
}
