//! Evaluation scenarios.

use event_sim::SimDuration;
use reliability::campaign::CampaignSpec;
use reliability::Ber;

/// How transient faults arrive on the channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultModel {
    /// The paper's model: each frame corrupted independently with
    /// `p = 1 − (1 − BER)^bits`.
    Bernoulli,
    /// A bursty Gilbert–Elliott channel: the scenario's BER applies in the
    /// good state; the bad state multiplies it and the transition
    /// probabilities shape the bursts. Same long-run average when
    /// configured via [`Scenario::bursty`].
    GilbertElliott {
        /// BER multiplier of the bad state.
        bad_factor: f64,
        /// P(good → bad) after each frame.
        p_gb: f64,
        /// P(bad → good) after each frame.
        p_bg: f64,
    },
}

/// A fault/reliability scenario: the physical channel quality and the
/// reliability goal the scheduler must meet.
///
/// The paper labels its two scenarios "BER = 10⁻⁷" and "BER = 10⁻⁹" and
/// notes they "correspond to different reliability goals" (§IV-A): the
/// stricter scenario demands more retransmission redundancy and therefore
/// pays more bandwidth and latency (§IV-B.1). We model that faithfully:
/// both scenarios share the physical channel BER, and differ in the
/// tolerated failure probability γ per time unit — 10⁻⁷ vs 10⁻⁹.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Display label (used in experiment output).
    pub name: &'static str,
    /// Physical bit error rate of each channel.
    pub ber: Ber,
    /// Maximum tolerated probability of any deadline failure per unit.
    pub gamma: f64,
    /// The time unit γ refers to.
    pub unit: SimDuration,
    /// The arrival process of transient faults.
    pub fault_model: FaultModel,
    /// Scripted fault-injection campaign layered over the stochastic
    /// model (`None` — the default everywhere — leaves the fault
    /// processes exactly as before, so golden digests are unaffected).
    pub campaign: Option<CampaignSpec>,
}

impl Scenario {
    /// The paper's `BER-7` scenario: channel BER 10⁻⁷, goal γ = 10⁻⁷ per
    /// hour (the IEC 61508 SIL 3 budget; the standard expresses failure
    /// budgets per hour of continuous operation).
    pub fn ber7() -> Scenario {
        Scenario {
            name: "BER-7",
            ber: Ber::new(1e-7).expect("constant in range"),
            gamma: 1e-7,
            unit: SimDuration::from_secs(3600),
            fault_model: FaultModel::Bernoulli,
            campaign: None,
        }
    }

    /// The paper's `BER-9` scenario: same physical channel, stricter goal
    /// γ = 10⁻⁹ per hour (beyond SIL 4) → more planned retransmissions.
    pub fn ber9() -> Scenario {
        Scenario {
            name: "BER-9",
            ber: Ber::new(1e-7).expect("constant in range"),
            gamma: 1e-9,
            unit: SimDuration::from_secs(3600),
            fault_model: FaultModel::Bernoulli,
            campaign: None,
        }
    }

    /// A bursty variant of this scenario: the same average fault rate,
    /// delivered in Gilbert–Elliott bursts (the channel spends
    /// `p_gb / (p_gb + p_bg)` of its time in a state with `bad_factor`
    /// times the BER). Used by the fault-model ablation.
    ///
    /// The name changes with the model: sweep output labels groups by it,
    /// and per-cell seed derivation keys on it, so a matrix holding both
    /// `ber7` and `ber7-bursty` must not alias the two.
    pub fn bursty(mut self) -> Scenario {
        self.name = match self.name {
            "BER-7" => "BER-7-bursty",
            "BER-9" => "BER-9-bursty",
            "fault-free" => "fault-free-bursty",
            other => other,
        };
        self.fault_model = FaultModel::GilbertElliott {
            bad_factor: 50.0,
            p_gb: 0.002,
            p_bg: 0.098,
        };
        self
    }

    /// A fault-storm variant of this scenario: same good-state channel,
    /// but the Gilbert–Elliott bad state multiplies the BER by 1500× —
    /// far beyond what the Theorem-1 plan budgeted for — and bursts last
    /// ~167 frames on average (`1/p_bg`, roughly 20 FlexRay cycles under
    /// the paper's workloads), with the channel spending
    /// `p_gb / (p_gb + p_bg)` = 25% of its time in the bad state. This is
    /// the regime the runtime resilience subsystem exists for: the
    /// reliability monitor classifies the burst as `Stressed`/`Storm`,
    /// degraded mode sheds soft traffic into extra hard copies, and hard
    /// frames fail over to the healthier channel. Fault processes are
    /// seeded independently per channel, so asymmetric storms (one
    /// channel bad, the other good) are the common case.
    ///
    /// Like [`Scenario::bursty`], the name changes with the model so
    /// matrix cells and per-cell seeds never alias the base scenario.
    pub fn storm(mut self) -> Scenario {
        self.name = match self.name {
            "BER-7" => "BER-7-storm",
            "BER-9" => "BER-9-storm",
            "fault-free" => "fault-free-storm",
            other => other,
        };
        self.fault_model = FaultModel::GilbertElliott {
            bad_factor: 1500.0,
            p_gb: 0.002,
            p_bg: 0.006,
        };
        self
    }

    /// A fault-free scenario (testing / calibration).
    pub fn fault_free() -> Scenario {
        Scenario {
            name: "fault-free",
            ber: Ber::ZERO,
            gamma: 1.0,
            unit: SimDuration::from_secs(1),
            fault_model: FaultModel::Bernoulli,
            campaign: None,
        }
    }

    /// Layers a scripted fault campaign over this scenario's stochastic
    /// model and renames it to `name`.
    ///
    /// Like [`Scenario::bursty`]/[`Scenario::storm`], the rename is
    /// mandatory: sweep output labels groups by name and per-cell seed
    /// derivation keys on it, so a campaign cell must never alias its
    /// base scenario. Callers pick a distinct static label (e.g.
    /// `"BER-7-blackout"`).
    pub fn with_campaign(mut self, name: &'static str, campaign: CampaignSpec) -> Scenario {
        assert!(
            name != self.name,
            "campaign scenarios must be renamed to avoid seed aliasing"
        );
        self.name = name;
        self.campaign = Some(campaign);
        self
    }

    /// The reliability goal ρ = 1 − γ.
    pub fn reliability_goal(&self) -> f64 {
        1.0 - self.gamma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let s7 = Scenario::ber7();
        let s9 = Scenario::ber9();
        assert_eq!(s7.ber, s9.ber, "same physical channel");
        assert!(s9.gamma < s7.gamma, "BER-9 is the stricter goal");
        assert!(s9.reliability_goal() > s7.reliability_goal());
        assert_eq!(Scenario::fault_free().reliability_goal(), 0.0);
    }

    #[test]
    fn goal_complements_gamma() {
        let s = Scenario::ber7();
        assert!((s.reliability_goal() + s.gamma - 1.0).abs() < 1e-15);
    }

    #[test]
    fn storm_renames_and_goes_bursty() {
        let s = Scenario::ber7().storm();
        assert_eq!(s.name, "BER-7-storm");
        assert_eq!(s.ber, Scenario::ber7().ber, "good state keeps the BER");
        let FaultModel::GilbertElliott {
            bad_factor,
            p_gb,
            p_bg,
        } = s.fault_model
        else {
            panic!("storm must use the Gilbert–Elliott model");
        };
        // Much nastier and much longer-lived than the `bursty` ablation.
        assert!(bad_factor > 50.0);
        assert!(p_bg < 0.098);
        // A quarter of the timeline sits in the bad state.
        let stationary = p_gb / (p_gb + p_bg);
        assert!((stationary - 0.25).abs() < 1e-12);
        assert_eq!(Scenario::ber9().storm().name, "BER-9-storm");
    }
}
