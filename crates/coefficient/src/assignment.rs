//! Static-segment allocation and selective slack stealing.
//!
//! Everything periodic in a FlexRay schedule repeats over the 64-cycle
//! matrix, so CoEfficient's placement decisions — primaries, mirrors, and
//! the retransmission copies required by the reliability plan — are made
//! **offline** over a `(channel × slot × 64 cycles)` occupancy matrix:
//!
//! * **primaries**: each static message gets a slot and a
//!   `(base, repetition)` pattern on channel A, repetition being the
//!   largest power of two whose cycle multiple still fits the message
//!   period (so every period sees at least one transmission);
//! * **mirrors** (FSPEC): the same position on channel B — the
//!   spec's blanket dual-channel redundancy;
//! * **copies** (CoEfficient): `k_z` extra positions *stolen from the idle
//!   slack*, preferring zero-added-latency positions (channel B, same
//!   slot/cycle), then later slots of the same cycle, then following
//!   cycles — and only positions whose capacity fits the frame (the
//!   *selective* criterion of §III-F). Copies that find no static slack
//!   spill to the dynamic segment at run time.

use std::fmt;

use flexray::codec::FrameCoding;
use flexray::config::{ClusterConfig, CYCLE_COUNT_MAX};
use flexray::schedule::MessageId;
use flexray::signal::Signal;
use flexray::ChannelId;

/// Why an occupant sits in a position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccupantKind {
    /// The message's primary transmission.
    Primary,
    /// FSPEC's channel-B duplicate of the primary.
    Mirror,
    /// A CoEfficient retransmission copy stolen from slack.
    Copy,
}

/// One occupied position in the allocation matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occupant {
    /// The message transmitted here.
    pub message: MessageId,
    /// Primary, mirror or stolen copy.
    pub kind: OccupantKind,
}

/// A repeating position in the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotPosition {
    /// Static slot (1-based).
    pub slot: u16,
    /// First active cycle (0–63).
    pub base_cycle: u8,
    /// Cycle repetition (power of two ≤ 64).
    pub repetition: u8,
    /// Channel.
    pub channel: ChannelId,
}

/// A stolen-slack copy position for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyPlacement {
    /// The protected message.
    pub message: MessageId,
    /// Where the copy transmits.
    pub position: SlotPosition,
}

/// Allocation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocationError {
    /// A frame's wire length exceeds the static slot capacity.
    FrameTooLarge {
        /// The offending message.
        message: MessageId,
        /// Its on-wire bits.
        wire_bits: u64,
        /// The slot capacity.
        capacity: u64,
    },
    /// No `(slot, base)` could host the message's primary pattern.
    NoSlotAvailable {
        /// The message that could not be placed.
        message: MessageId,
    },
}

impl fmt::Display for AllocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocationError::FrameTooLarge {
                message,
                wire_bits,
                capacity,
            } => write!(
                f,
                "message {message}: frame of {wire_bits} wire bits exceeds slot capacity {capacity}"
            ),
            AllocationError::NoSlotAvailable { message } => {
                write!(
                    f,
                    "message {message}: no free static slot pattern available"
                )
            }
        }
    }
}

impl std::error::Error for AllocationError {}

/// The populated allocation matrix.
pub struct StaticAllocation {
    slots: u16,
    /// `matrix[channel][slot-1][cycle]`.
    matrix: Vec<Option<Occupant>>,
    primaries: Vec<(MessageId, SlotPosition)>,
    copies: Vec<CopyPlacement>,
    /// Copies that found no static slack: `(message, count per instance)`.
    spill: Vec<(MessageId, u32)>,
}

impl fmt::Debug for StaticAllocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StaticAllocation")
            .field("slots", &self.slots)
            .field("primaries", &self.primaries.len())
            .field("copies", &self.copies.len())
            .field("spill", &self.spill)
            .finish()
    }
}

const CYCLES: usize = CYCLE_COUNT_MAX as usize;

impl StaticAllocation {
    fn index(&self, channel: ChannelId, slot: u16, cycle: u8) -> usize {
        debug_assert!(slot >= 1 && slot <= self.slots);
        (channel.index() * usize::from(self.slots) + usize::from(slot - 1)) * CYCLES
            + usize::from(cycle)
    }

    /// The occupant of `(channel, slot)` in the cycle with counter
    /// `cycle_counter`, if any.
    pub fn occupant(&self, channel: ChannelId, slot: u16, cycle_counter: u8) -> Option<Occupant> {
        self.matrix[self.index(channel, slot, cycle_counter)]
    }

    /// `true` if the position is free.
    pub fn is_free(&self, channel: ChannelId, slot: u16, cycle_counter: u8) -> bool {
        self.occupant(channel, slot, cycle_counter).is_none()
    }

    /// Primary position of `message`.
    pub fn primary_of(&self, message: MessageId) -> Option<SlotPosition> {
        self.primaries
            .iter()
            .find(|(m, _)| *m == message)
            .map(|(_, p)| *p)
    }

    /// All stolen-slack copy placements.
    pub fn copies(&self) -> &[CopyPlacement] {
        &self.copies
    }

    /// Copies that must spill to the dynamic segment, per instance.
    pub fn spill(&self) -> &[(MessageId, u32)] {
        &self.spill
    }

    /// Number of static slots per channel.
    pub fn slot_count(&self) -> u16 {
        self.slots
    }

    /// Free positions over the whole matrix (both channels).
    pub fn free_positions(&self) -> usize {
        self.matrix.iter().filter(|o| o.is_none()).count()
    }

    /// Fraction of matrix positions occupied on `channel`.
    pub fn occupancy(&self, channel: ChannelId) -> f64 {
        let per_channel = usize::from(self.slots) * CYCLES;
        let start = channel.index() * per_channel;
        let used = self.matrix[start..start + per_channel]
            .iter()
            .filter(|o| o.is_some())
            .count();
        used as f64 / per_channel as f64
    }

    /// Checks a candidate `(slot, base, rep)` pattern for freeness.
    fn pattern_free(&self, channel: ChannelId, slot: u16, base: u8, rep: u8) -> bool {
        (0..CYCLES as u16)
            .filter(|c| c % u16::from(rep) == u16::from(base))
            .all(|c| self.is_free(channel, slot, c as u8))
    }

    fn occupy_pattern(&mut self, pos: SlotPosition, occ: Occupant) {
        for c in 0..CYCLES as u16 {
            if c % u16::from(pos.repetition) == u16::from(pos.base_cycle) {
                let i = self.index(pos.channel, pos.slot, c as u8);
                debug_assert!(self.matrix[i].is_none(), "double allocation");
                self.matrix[i] = Some(occ);
            }
        }
    }

    /// The repetition used for a message of the given period: the largest
    /// power of two `r ≤ 64` with `r × cycle ≤ period`, at least 1.
    pub fn repetition_for(config: &ClusterConfig, period: event_sim::SimDuration) -> u8 {
        let cycle = config.cycle_duration();
        let mut rep: u64 = 1;
        while rep < CYCLE_COUNT_MAX && cycle * (rep * 2) <= period {
            rep *= 2;
        }
        rep as u8
    }

    /// Builds the allocation with dual-channel copy placement (the
    /// default CoEfficient behaviour). See [`Self::build_with_channels`].
    ///
    /// # Errors
    /// [`AllocationError`] if a frame exceeds the slot capacity or no
    /// primary pattern fits.
    pub fn build(
        config: &ClusterConfig,
        coding: &FrameCoding,
        messages: &[Signal],
        copy_counts: &[(MessageId, u32)],
        mirror_on_b: bool,
    ) -> Result<Self, AllocationError> {
        Self::build_with_channels(config, coding, messages, copy_counts, mirror_on_b, true)
    }

    /// Builds the allocation.
    ///
    /// * `messages` — the static workload;
    /// * `copy_counts` — per message id, the number of retransmission
    ///   copies to steal slack for (`k_z`; empty for FSPEC);
    /// * `mirror_on_b` — FSPEC's blanket channel-B duplication;
    /// * `copies_on_b` — whether stolen-slack copies may use channel B
    ///   (disabled by the single-channel ablation).
    ///
    /// # Errors
    /// [`AllocationError`] if a frame exceeds the slot capacity or no
    /// primary pattern fits.
    pub fn build_with_channels(
        config: &ClusterConfig,
        coding: &FrameCoding,
        messages: &[Signal],
        copy_counts: &[(MessageId, u32)],
        mirror_on_b: bool,
        copies_on_b: bool,
    ) -> Result<Self, AllocationError> {
        let slots = config.static_slot_count() as u16;
        let capacity = config.static_slot_capacity_bits();
        let mut alloc = StaticAllocation {
            slots,
            matrix: vec![None; 2 * usize::from(slots) * CYCLES],
            primaries: Vec::with_capacity(messages.len()),
            copies: Vec::new(),
            spill: Vec::new(),
        };

        // Capacity check up front (selective criterion: a slot must fit
        // the frame).
        for m in messages {
            let wire = coding.message_wire_bits(u64::from(m.size_bits), false);
            if wire > capacity {
                return Err(AllocationError::FrameTooLarge {
                    message: m.id,
                    wire_bits: wire,
                    capacity,
                });
            }
        }

        // Primary placement: tightest repetition first (they are the
        // hardest to fit), then by deadline, then id for determinism.
        let mut order: Vec<&Signal> = messages.iter().collect();
        order.sort_by_key(|m| {
            (
                StaticAllocation::repetition_for(config, m.period),
                m.deadline,
                m.id,
            )
        });
        for m in &order {
            let rep = StaticAllocation::repetition_for(config, m.period);
            let mut placed = false;
            'search: for slot in 1..=slots {
                for base in 0..rep {
                    if alloc.pattern_free(ChannelId::A, slot, base, rep)
                        && (!mirror_on_b || alloc.pattern_free(ChannelId::B, slot, base, rep))
                    {
                        let pos = SlotPosition {
                            slot,
                            base_cycle: base,
                            repetition: rep,
                            channel: ChannelId::A,
                        };
                        alloc.occupy_pattern(
                            pos,
                            Occupant {
                                message: m.id,
                                kind: OccupantKind::Primary,
                            },
                        );
                        if mirror_on_b {
                            alloc.occupy_pattern(
                                SlotPosition {
                                    channel: ChannelId::B,
                                    ..pos
                                },
                                Occupant {
                                    message: m.id,
                                    kind: OccupantKind::Mirror,
                                },
                            );
                        }
                        alloc.primaries.push((m.id, pos));
                        placed = true;
                        break 'search;
                    }
                }
            }
            if !placed {
                return Err(AllocationError::NoSlotAvailable { message: m.id });
            }
        }

        // Copy placement: steal slack near the primary, cheapest added
        // latency first.
        for &(message, k) in copy_counts {
            if k == 0 {
                continue;
            }
            let Some(primary) = alloc.primary_of(message) else {
                continue; // dynamic messages spill entirely
            };
            let mut remaining = k;
            // Candidate order: same slot on B (Δlatency 0), later slots of
            // the same cycle (A then B), then subsequent cycles.
            let channel_order: &[ChannelId] = if copies_on_b {
                &[ChannelId::B, ChannelId::A]
            } else {
                &[ChannelId::A]
            };
            'day: for delta_cycle in 0..u16::from(primary.repetition) {
                let base =
                    (u16::from(primary.base_cycle) + delta_cycle) % u16::from(primary.repetition);
                let slot_from = if delta_cycle == 0 { primary.slot } else { 1 };
                for slot in slot_from..=slots {
                    for &channel in channel_order {
                        if delta_cycle == 0 && slot == primary.slot && channel == ChannelId::A {
                            continue; // the primary itself
                        }
                        if alloc.pattern_free(channel, slot, base as u8, primary.repetition) {
                            let pos = SlotPosition {
                                slot,
                                base_cycle: base as u8,
                                repetition: primary.repetition,
                                channel,
                            };
                            alloc.occupy_pattern(
                                pos,
                                Occupant {
                                    message,
                                    kind: OccupantKind::Copy,
                                },
                            );
                            alloc.copies.push(CopyPlacement {
                                message,
                                position: pos,
                            });
                            remaining -= 1;
                            if remaining == 0 {
                                break 'day;
                            }
                        }
                    }
                }
            }
            if remaining > 0 {
                alloc.spill.push((message, remaining));
            }
        }
        // Dynamic-message copies (ids without a primary) spill by
        // definition; record them so the runtime enqueues extras.
        for &(message, k) in copy_counts {
            if k > 0 && alloc.primary_of(message).is_none() {
                alloc.spill.push((message, k));
            }
        }

        Ok(alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_sim::SimDuration;

    fn config() -> ClusterConfig {
        ClusterConfig::paper_dynamic(50)
    }

    fn sig(id: u32, period_ms: u64, bits: u32) -> Signal {
        Signal::new(
            id,
            SimDuration::from_millis(period_ms),
            SimDuration::ZERO,
            SimDuration::from_millis(period_ms),
            bits,
        )
    }

    #[test]
    fn repetition_matches_period() {
        let c = config(); // 1 ms cycle
        assert_eq!(
            StaticAllocation::repetition_for(&c, SimDuration::from_millis(1)),
            1
        );
        assert_eq!(
            StaticAllocation::repetition_for(&c, SimDuration::from_millis(8)),
            8
        );
        assert_eq!(
            StaticAllocation::repetition_for(&c, SimDuration::from_millis(24)),
            16
        );
        assert_eq!(
            StaticAllocation::repetition_for(&c, SimDuration::from_millis(100)),
            64
        );
        // Period shorter than the cycle still transmits every cycle.
        assert_eq!(
            StaticAllocation::repetition_for(&c, SimDuration::from_micros(500)),
            1
        );
    }

    #[test]
    fn primaries_land_on_channel_a_without_conflicts() {
        let msgs = vec![
            sig(1, 1, 100),
            sig(2, 2, 100),
            sig(3, 2, 100),
            sig(4, 8, 100),
        ];
        let a =
            StaticAllocation::build(&config(), &FrameCoding::default(), &msgs, &[], false).unwrap();
        // msg 1 needs a full slot; msgs 2 and 3 share slot 2 (bases 0/1).
        let p1 = a.primary_of(1).unwrap();
        let p2 = a.primary_of(2).unwrap();
        let p3 = a.primary_of(3).unwrap();
        assert_eq!(p1.repetition, 1);
        assert_eq!(p2.slot, p3.slot, "rep-2 messages share a slot");
        assert_ne!(p2.base_cycle, p3.base_cycle);
        for p in [p1, p2, p3] {
            assert_eq!(p.channel, ChannelId::A);
        }
        // Channel B stays empty without mirrors.
        assert_eq!(a.occupancy(ChannelId::B), 0.0);
    }

    #[test]
    fn mirror_mode_duplicates_on_b() {
        let msgs = vec![sig(1, 1, 100)];
        let a =
            StaticAllocation::build(&config(), &FrameCoding::default(), &msgs, &[], true).unwrap();
        let p = a.primary_of(1).unwrap();
        let occ_b = a.occupant(ChannelId::B, p.slot, p.base_cycle).unwrap();
        assert_eq!(occ_b.kind, OccupantKind::Mirror);
        assert_eq!(occ_b.message, 1);
        assert!((a.occupancy(ChannelId::A) - a.occupancy(ChannelId::B)).abs() < 1e-12);
    }

    #[test]
    fn first_copy_prefers_channel_b_same_slot() {
        let msgs = vec![sig(1, 1, 100)];
        let a =
            StaticAllocation::build(&config(), &FrameCoding::default(), &msgs, &[(1, 2)], false)
                .unwrap();
        assert_eq!(a.copies().len(), 2);
        let p = a.primary_of(1).unwrap();
        let first = a.copies()[0].position;
        assert_eq!(first.channel, ChannelId::B);
        assert_eq!(first.slot, p.slot);
        assert_eq!(first.base_cycle, p.base_cycle);
        assert!(a.spill().is_empty());
    }

    #[test]
    fn copies_spill_when_matrix_is_full() {
        // Fill every slot with rep-1 messages, then ask for copies.
        let cfg = config();
        let slots = cfg.static_slot_count() as u32;
        let msgs: Vec<Signal> = (1..=slots * 2).map(|i| sig(i, 2, 100)).collect();
        // 2×slots rep-2 messages fill both bases of every slot on A...
        // with mirrors they'd fill B too; use mirrors to exhaust all slack.
        let a =
            StaticAllocation::build(&cfg, &FrameCoding::default(), &msgs, &[(1, 3)], true).unwrap();
        assert_eq!(a.free_positions(), 0, "matrix fully packed");
        assert_eq!(a.spill(), &[(1, 3)]);
    }

    #[test]
    fn overflow_of_primaries_errors() {
        let cfg = config();
        let slots = cfg.static_slot_count() as u32;
        let msgs: Vec<Signal> = (1..=slots + 1).map(|i| sig(i, 1, 100)).collect();
        let err =
            StaticAllocation::build(&cfg, &FrameCoding::default(), &msgs, &[], false).unwrap_err();
        assert!(matches!(err, AllocationError::NoSlotAvailable { .. }));
    }

    #[test]
    fn oversized_frame_errors() {
        let cfg = config();
        let cap = cfg.static_slot_capacity_bits();
        let msgs = vec![sig(1, 1, (cap + 1) as u32)];
        let err =
            StaticAllocation::build(&cfg, &FrameCoding::default(), &msgs, &[], false).unwrap_err();
        assert!(matches!(
            err,
            AllocationError::FrameTooLarge { message: 1, .. }
        ));
    }

    #[test]
    fn dynamic_message_copies_always_spill() {
        let msgs = vec![sig(1, 1, 100)];
        let a = StaticAllocation::build(
            &config(),
            &FrameCoding::default(),
            &msgs,
            &[(99, 2)], // 99 has no primary → dynamic
            false,
        )
        .unwrap();
        assert_eq!(a.spill(), &[(99, 2)]);
        assert!(a.copies().is_empty());
    }

    #[test]
    fn occupancy_accounts_repetitions() {
        let cfg = config();
        let msgs = vec![sig(1, 2, 100)]; // rep 2: half the cycles of one slot
        let a = StaticAllocation::build(&cfg, &FrameCoding::default(), &msgs, &[], false).unwrap();
        let expected = 0.5 / cfg.static_slot_count() as f64;
        assert!((a.occupancy(ChannelId::A) - expected).abs() < 1e-12);
    }

    #[test]
    fn bbw_and_acc_fit_the_paper_dynamic_preset() {
        let mut msgs = workloads::bbw::message_set();
        msgs.extend(workloads::acc::message_set());
        let a = StaticAllocation::build(&config(), &FrameCoding::default(), &msgs, &[], false);
        let a = a.expect("BBW+ACC must fit 18 slots via cycle multiplexing");
        assert_eq!(a.primaries.len(), 40);
    }
}
