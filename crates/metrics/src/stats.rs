//! Streaming summary statistics over simulated durations.

use event_sim::SimDuration;

/// Online min/max/mean/variance accumulator (Welford's algorithm) over
/// [`SimDuration`] samples.
///
/// ```
/// use metrics::Summary;
/// use event_sim::SimDuration;
/// let mut s = Summary::new();
/// for us in [1u64, 2, 3, 4] {
///     s.record(SimDuration::from_micros(us));
/// }
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.min().unwrap().as_micros(), 1);
/// assert_eq!(s.max().unwrap().as_micros(), 4);
/// assert_eq!(s.mean().unwrap().as_nanos(), 2_500);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    min: Option<SimDuration>,
    max: Option<SimDuration>,
    mean_ns: f64,
    m2_ns: f64,
    total_ns: u128,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn record(&mut self, sample: SimDuration) {
        self.count += 1;
        self.total_ns += u128::from(sample.as_nanos());
        self.min = Some(match self.min {
            Some(m) => m.min(sample),
            None => sample,
        });
        self.max = Some(match self.max {
            Some(m) => m.max(sample),
            None => sample,
        });
        let x = sample.as_nanos() as f64;
        let delta = x - self.mean_ns;
        self.mean_ns += delta / self.count as f64;
        self.m2_ns += delta * (x - self.mean_ns);
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean_ns - self.mean_ns;
        let total = n1 + n2;
        self.mean_ns += delta * n2 / total;
        self.m2_ns += other.m2_ns + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample, if any were recorded.
    pub fn min(&self) -> Option<SimDuration> {
        self.min
    }

    /// Largest sample, if any were recorded.
    pub fn max(&self) -> Option<SimDuration> {
        self.max
    }

    /// Sum of all samples in nanoseconds (exact, 128-bit).
    pub fn total_nanos(&self) -> u128 {
        self.total_ns
    }

    /// Arithmetic mean, if any samples were recorded (rounded to whole
    /// nanoseconds).
    pub fn mean(&self) -> Option<SimDuration> {
        if self.count == 0 {
            None
        } else {
            Some(SimDuration::from_nanos(
                (self.total_ns / u128::from(self.count)) as u64,
            ))
        }
    }

    /// Mean in milliseconds as a float, `0.0` if empty (for table output).
    pub fn mean_millis_f64(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64 / 1e6
        }
    }

    /// Sample standard deviation in nanoseconds; `None` with fewer than two
    /// samples.
    pub fn std_dev_nanos(&self) -> Option<f64> {
        if self.count < 2 {
            None
        } else {
            Some((self.m2_ns / (self.count - 1) as f64).sqrt())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn empty_summary_has_no_stats() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert!(s.min().is_none());
        assert!(s.max().is_none());
        assert!(s.mean().is_none());
        assert!(s.std_dev_nanos().is_none());
        assert_eq!(s.mean_millis_f64(), 0.0);
    }

    #[test]
    fn mean_and_extremes() {
        let mut s = Summary::new();
        for v in [5, 1, 9, 5] {
            s.record(us(v));
        }
        assert_eq!(s.min(), Some(us(1)));
        assert_eq!(s.max(), Some(us(9)));
        assert_eq!(s.mean(), Some(us(5)));
        assert_eq!(s.total_nanos(), 20_000);
    }

    #[test]
    fn std_dev_matches_closed_form() {
        let mut s = Summary::new();
        for v in [2, 4, 4, 4, 5, 5, 7, 9] {
            s.record(us(v));
        }
        // Sample variance of this classic set is 32/7 us^2.
        let expected = (32.0f64 / 7.0).sqrt() * 1e3; // in ns
        let got = s.std_dev_nanos().unwrap();
        assert!(
            (got - expected).abs() < 1e-6 * expected,
            "{got} vs {expected}"
        );
    }

    #[test]
    fn merge_equals_sequential() {
        let mut all = Summary::new();
        let mut left = Summary::new();
        let mut right = Summary::new();
        for (i, v) in [3u64, 1, 4, 1, 5, 9, 2, 6].iter().enumerate() {
            all.record(us(*v));
            if i < 4 {
                left.record(us(*v));
            } else {
                right.record(us(*v));
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
        assert_eq!(left.mean(), all.mean());
        let (a, b) = (left.std_dev_nanos().unwrap(), all.std_dev_nanos().unwrap());
        assert!((a - b).abs() < 1e-9 * b.max(1.0));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::new();
        s.record(us(7));
        let snapshot = format!("{s:?}");
        s.merge(&Summary::new());
        assert_eq!(format!("{s:?}"), snapshot);

        let mut e = Summary::new();
        e.merge(&s);
        assert_eq!(e.count(), 1);
        assert_eq!(e.mean(), Some(us(7)));
    }

    #[test]
    fn mean_millis_reporting() {
        let mut s = Summary::new();
        s.record(SimDuration::from_millis(3));
        s.record(SimDuration::from_millis(5));
        assert!((s.mean_millis_f64() - 4.0).abs() < 1e-12);
    }
}
