//! Deadline hit/miss accounting.

use event_sim::SimTime;

/// Whether a message instance met its deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeadlineOutcome {
    /// Completed at or before its absolute deadline.
    Met,
    /// Completed after its absolute deadline, or never completed.
    Missed,
}

/// Counts met and missed deadlines.
///
/// The paper's *deadline miss ratio* (§IV-B.4) is "the number of
/// missing-deadline messages divided by the total number of the transmitted
/// messages".
///
/// ```
/// use metrics::{DeadlineTracker, DeadlineOutcome};
/// use event_sim::SimTime;
/// let mut t = DeadlineTracker::new();
/// t.record_completion(SimTime::from_millis(4), SimTime::from_millis(5));
/// t.record_completion(SimTime::from_millis(9), SimTime::from_millis(5));
/// t.record_lost();
/// assert_eq!(t.met(), 1);
/// assert_eq!(t.missed(), 2);
/// assert!((t.miss_ratio() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeadlineTracker {
    met: u64,
    missed: u64,
}

impl DeadlineTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completion at `finished` against an absolute `deadline`
    /// and returns the outcome. Completion exactly at the deadline counts
    /// as met.
    pub fn record_completion(&mut self, finished: SimTime, deadline: SimTime) -> DeadlineOutcome {
        if finished <= deadline {
            self.met += 1;
            DeadlineOutcome::Met
        } else {
            self.missed += 1;
            DeadlineOutcome::Missed
        }
    }

    /// Records a message that never completed (dropped / still pending at
    /// the end of the run); counts as a miss.
    pub fn record_lost(&mut self) {
        self.missed += 1;
    }

    /// Records an outcome computed elsewhere.
    pub fn record_outcome(&mut self, outcome: DeadlineOutcome) {
        match outcome {
            DeadlineOutcome::Met => self.met += 1,
            DeadlineOutcome::Missed => self.missed += 1,
        }
    }

    /// Number of met deadlines.
    pub fn met(&self) -> u64 {
        self.met
    }

    /// Number of missed deadlines (including lost messages).
    pub fn missed(&self) -> u64 {
        self.missed
    }

    /// Total accounted messages.
    pub fn total(&self) -> u64 {
        self.met + self.missed
    }

    /// Miss ratio in `0.0 ..= 1.0`; `0.0` when nothing was recorded.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.missed as f64 / total as f64
        }
    }

    /// Adds the counts of another tracker.
    pub fn merge(&mut self, other: &DeadlineTracker) {
        self.met += other.met;
        self.missed += other.missed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_deadline_counts_as_met() {
        let mut t = DeadlineTracker::new();
        let out = t.record_completion(SimTime::from_millis(5), SimTime::from_millis(5));
        assert_eq!(out, DeadlineOutcome::Met);
        assert_eq!(t.met(), 1);
        assert_eq!(t.miss_ratio(), 0.0);
    }

    #[test]
    fn late_counts_as_missed() {
        let mut t = DeadlineTracker::new();
        let out = t.record_completion(SimTime::from_nanos(5_000_001), SimTime::from_millis(5));
        assert_eq!(out, DeadlineOutcome::Missed);
        assert_eq!(t.missed(), 1);
        assert_eq!(t.miss_ratio(), 1.0);
    }

    #[test]
    fn empty_tracker_ratio_is_zero() {
        assert_eq!(DeadlineTracker::new().miss_ratio(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = DeadlineTracker::new();
        a.record_outcome(DeadlineOutcome::Met);
        let mut b = DeadlineTracker::new();
        b.record_lost();
        b.record_outcome(DeadlineOutcome::Met);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.missed(), 1);
    }
}
