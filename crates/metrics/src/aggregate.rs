//! Cross-run aggregation with percentile summaries.
//!
//! [`Summary`](crate::Summary) streams over the *durations inside one run*;
//! [`Aggregate`] instead collects one scalar **per run** of a sweep (a
//! utilization, a mean latency, a miss ratio, …) and summarizes the
//! distribution over the whole `{policy × scenario × seed}` cell group:
//! mean, sample standard deviation, extremes and percentiles.

/// Collects `f64` samples and summarizes their distribution.
///
/// Samples are kept (a sweep has at most a few thousand cells), so
/// percentiles are exact order statistics rather than sketch estimates,
/// and results are bit-deterministic for a fixed insertion sequence.
///
/// ```
/// use metrics::Aggregate;
/// let mut a = Aggregate::new();
/// for v in [4.0, 1.0, 3.0, 2.0] {
///     a.record(v);
/// }
/// assert_eq!(a.count(), 4);
/// assert_eq!(a.min(), Some(1.0));
/// assert_eq!(a.max(), Some(4.0));
/// assert_eq!(a.mean(), Some(2.5));
/// assert_eq!(a.percentile(50.0), Some(2.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Aggregate {
    samples: Vec<f64>,
}

/// One fully computed distribution summary (all fields are `0.0` when the
/// aggregate was empty, with `count == 0` flagging that case).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateSummary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`0.0` with fewer than two samples).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Aggregate {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    ///
    /// # Panics
    /// Panics on NaN: a NaN metric is always an upstream bug, and admitting
    /// it would poison every downstream statistic silently.
    pub fn record(&mut self, sample: f64) {
        assert!(!sample.is_nan(), "aggregated metrics must not be NaN");
        self.samples.push(sample);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    /// Arithmetic mean, if any samples were recorded.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Sample standard deviation; `None` with fewer than two samples.
    pub fn std_dev(&self) -> Option<f64> {
        let n = self.samples.len();
        if n < 2 {
            return None;
        }
        let mean = self.mean().expect("non-empty");
        let m2: f64 = self.samples.iter().map(|s| (s - mean) * (s - mean)).sum();
        Some((m2 / (n - 1) as f64).sqrt())
    }

    /// The `p`-th percentile (nearest-rank on the sorted samples), if any
    /// samples were recorded.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        // Nearest-rank: ceil(p/100 · n), 1-based; p = 0 maps to the first.
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
    }

    /// Computes the full summary in one pass.
    pub fn summary(&self) -> AggregateSummary {
        if self.samples.is_empty() {
            return AggregateSummary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
            };
        }
        AggregateSummary {
            count: self.count(),
            mean: self.mean().expect("non-empty"),
            std_dev: self.std_dev().unwrap_or(0.0),
            min: self.min().expect("non-empty"),
            max: self.max().expect("non-empty"),
            p50: self.percentile(50.0).expect("non-empty"),
            p90: self.percentile(90.0).expect("non-empty"),
            p99: self.percentile(99.0).expect("non-empty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_aggregate() {
        let a = Aggregate::new();
        assert_eq!(a.count(), 0);
        assert_eq!(a.min(), None);
        assert_eq!(a.max(), None);
        assert_eq!(a.mean(), None);
        assert_eq!(a.std_dev(), None);
        assert_eq!(a.percentile(50.0), None);
        let s = a.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sample_summary() {
        let mut a = Aggregate::new();
        a.record(7.5);
        let s = a.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 7.5);
        assert_eq!(s.max, 7.5);
        assert_eq!(s.p50, 7.5);
        assert_eq!(s.p99, 7.5);
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let mut a = Aggregate::new();
        // Insert shuffled 1..=100.
        for i in 0..100u32 {
            a.record(f64::from((i * 37) % 100 + 1));
        }
        assert_eq!(a.percentile(0.0), Some(1.0));
        assert_eq!(a.percentile(50.0), Some(50.0));
        assert_eq!(a.percentile(90.0), Some(90.0));
        assert_eq!(a.percentile(99.0), Some(99.0));
        assert_eq!(a.percentile(100.0), Some(100.0));
    }

    #[test]
    fn std_dev_matches_closed_form() {
        let mut a = Aggregate::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.record(v);
        }
        let expected = (32.0f64 / 7.0).sqrt();
        let got = a.std_dev().unwrap();
        assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
    }

    #[test]
    fn insertion_order_does_not_change_percentiles() {
        let mut fwd = Aggregate::new();
        let mut rev = Aggregate::new();
        for i in 0..50 {
            fwd.record(f64::from(i));
            rev.record(f64::from(49 - i));
        }
        for p in [0.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            assert_eq!(fwd.percentile(p), rev.percentile(p));
        }
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_samples_rejected() {
        Aggregate::new().record(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn out_of_range_percentile_rejected() {
        let mut a = Aggregate::new();
        a.record(1.0);
        let _ = a.percentile(101.0);
    }
}
