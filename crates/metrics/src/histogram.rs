//! Fixed-width duration histograms.

use event_sim::SimDuration;

/// A histogram of durations with uniform bin width and an overflow bin.
///
/// Used for latency distributions: the paper reports averages, but the
/// reproduction also records distributions so the benches can print
/// percentiles.
///
/// ```
/// use metrics::Histogram;
/// use event_sim::SimDuration;
/// let mut h = Histogram::new(SimDuration::from_millis(1), 10);
/// h.record(SimDuration::from_micros(1_500)); // bin 1
/// h.record(SimDuration::from_micros(9_999)); // bin 9
/// h.record(SimDuration::from_millis(50));    // overflow
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bin_count(1), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    bin_width: SimDuration,
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins of width `bin_width`.
    /// Samples at or beyond `bin_width * bins` land in the overflow bin.
    ///
    /// # Panics
    /// Panics if `bin_width` is zero or `bins` is zero.
    pub fn new(bin_width: SimDuration, bins: usize) -> Self {
        assert!(!bin_width.is_zero(), "bin width must be positive");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            bin_width,
            bins: vec![0; bins],
            overflow: 0,
            count: 0,
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, sample: SimDuration) {
        self.count += 1;
        let idx = (sample.as_nanos() / self.bin_width.as_nanos()) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of samples in bin `idx` (0-based).
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn bin_count(&self, idx: usize) -> u64 {
        self.bins[idx]
    }

    /// Number of samples beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Number of bins (excluding overflow).
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> SimDuration {
        self.bin_width
    }

    /// The inclusive lower edge of bin `idx`.
    pub fn bin_lower_edge(&self, idx: usize) -> SimDuration {
        self.bin_width * idx as u64
    }

    /// An upper bound on the `q`-quantile (0.0 ..= 1.0): the upper edge of
    /// the bin in which the quantile falls, or `None` if the histogram is
    /// empty or the quantile lands in the overflow bin.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<SimDuration> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (idx, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.bin_width * (idx as u64 + 1));
            }
        }
        None // quantile is in the overflow bin
    }

    /// Iterates over `(lower_edge, count)` pairs for the finite bins.
    pub fn iter(&self) -> impl Iterator<Item = (SimDuration, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.bin_lower_edge(i), c))
    }

    /// Merges another histogram with identical geometry into this one.
    ///
    /// # Panics
    /// Panics if bin width or bin count differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bin_width, other.bin_width, "bin width mismatch");
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn bins_receive_correct_samples() {
        let mut h = Histogram::new(us(10), 5);
        h.record(us(0)); // bin 0 (lower edge inclusive)
        h.record(us(9)); // bin 0
        h.record(us(10)); // bin 1
        h.record(us(49)); // bin 4
        h.record(us(50)); // overflow
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(4), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn quantiles_bound_from_above() {
        let mut h = Histogram::new(us(1), 100);
        for v in 0..100 {
            h.record(us(v));
        }
        // Median of 0..99 is < 50, upper bound of its bin is 50us.
        assert_eq!(h.quantile_upper_bound(0.5), Some(us(50)));
        assert_eq!(h.quantile_upper_bound(1.0), Some(us(100)));
        assert_eq!(h.quantile_upper_bound(0.0), Some(us(1)));
    }

    #[test]
    fn quantile_of_empty_is_none() {
        let h = Histogram::new(us(1), 4);
        assert_eq!(h.quantile_upper_bound(0.5), None);
    }

    #[test]
    fn extreme_quantiles_of_empty_are_none() {
        // p0 and p100 have no special casing that could invent a bound
        // for a histogram with no samples.
        let h = Histogram::new(us(1), 4);
        assert_eq!(h.quantile_upper_bound(0.0), None);
        assert_eq!(h.quantile_upper_bound(1.0), None);
    }

    #[test]
    fn single_bucket_histogram_answers_every_quantile() {
        // The degenerate one-bin geometry: every in-range sample lands in
        // bin 0, so every quantile's upper bound is the bin's upper edge.
        let mut h = Histogram::new(us(10), 1);
        h.record(us(0));
        h.record(us(9));
        assert_eq!(h.num_bins(), 1);
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(h.quantile_upper_bound(q), Some(us(10)), "q = {q}");
        }
    }

    #[test]
    fn p0_clamps_to_the_first_sample() {
        // q = 0 must still demand one sample (not zero), so it skips
        // leading empty bins and lands on the first occupied one.
        let mut h = Histogram::new(us(10), 4);
        h.record(us(25)); // bin 2 — bins 0 and 1 stay empty
        assert_eq!(h.quantile_upper_bound(0.0), Some(us(30)));
    }

    #[test]
    fn p100_is_the_last_occupied_bin_edge() {
        let mut h = Histogram::new(us(10), 4);
        h.record(us(5)); // bin 0
        h.record(us(35)); // bin 3
        assert_eq!(h.quantile_upper_bound(1.0), Some(us(40)));
        // But p100 with any overflow sample is unbounded.
        h.record(us(1000));
        assert_eq!(h.quantile_upper_bound(1.0), None);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_above_one_rejected() {
        let h = Histogram::new(us(1), 4);
        let _ = h.quantile_upper_bound(1.5);
    }

    #[test]
    fn quantile_in_overflow_is_none() {
        let mut h = Histogram::new(us(1), 2);
        h.record(us(100));
        assert_eq!(h.quantile_upper_bound(0.5), None);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(us(10), 3);
        let mut b = Histogram::new(us(10), 3);
        a.record(us(5));
        b.record(us(5));
        b.record(us(25));
        b.record(us(1000));
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.bin_count(0), 2);
        assert_eq!(a.bin_count(2), 1);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "bin width mismatch")]
    fn merge_rejects_different_geometry() {
        let mut a = Histogram::new(us(10), 3);
        let b = Histogram::new(us(20), 3);
        a.merge(&b);
    }

    #[test]
    fn iter_yields_edges_and_counts() {
        let mut h = Histogram::new(us(10), 2);
        h.record(us(15));
        let v: Vec<_> = h.iter().collect();
        assert_eq!(v, vec![(us(0), 0), (us(10), 1)]);
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn zero_bin_width_rejected() {
        let _ = Histogram::new(SimDuration::ZERO, 3);
    }
}
