//! Fixed-width and log-scale mergeable histograms.
//!
//! Both histogram types share one bucket-counting core ([`Buckets`]):
//! uniform-width duration bins for latency reports ([`Histogram`]) and
//! logarithmic `u64` buckets for fleet-scale streaming aggregation
//! ([`LogHistogram`]). The core owns the recording, merging and
//! quantile-scan logic so the two geometries cannot drift apart.

use event_sim::SimDuration;

/// The shared bucket-counting core: a fixed vector of counters, an
/// overflow counter, and the quantile scan. Geometry (which bucket a
/// sample lands in, what a bucket's edges mean) lives in the wrapping
/// histogram types; everything that only needs *counts* lives here.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Buckets {
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
}

impl Buckets {
    fn new(bins: usize) -> Self {
        Buckets {
            bins: vec![0; bins],
            overflow: 0,
            count: 0,
        }
    }

    /// Adds `n` samples to bucket `idx` (or to overflow when `idx` is
    /// beyond the last bucket).
    fn record_n(&mut self, idx: usize, n: u64) {
        self.count += n;
        if idx < self.bins.len() {
            self.bins[idx] += n;
        } else {
            self.overflow += n;
        }
    }

    /// Index of the bucket holding the `q`-quantile sample, `None` when
    /// the histogram is empty or the quantile falls into overflow.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    fn quantile_bucket(&self, q: f64) -> Option<usize> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (idx, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(idx);
            }
        }
        None // quantile is in the overflow bucket
    }

    /// Adds another core with identical bucket count into this one.
    /// Bucket-wise `u64` addition, so merging is commutative and
    /// associative — a sharded aggregation may merge partial histograms
    /// in any order and reach bit-identical totals.
    fn merge(&mut self, other: &Buckets) {
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
    }

    fn clear(&mut self) {
        self.bins.fill(0);
        self.overflow = 0;
        self.count = 0;
    }

    fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.bins.capacity() * std::mem::size_of::<u64>()
    }
}

/// A histogram of durations with uniform bin width and an overflow bin.
///
/// Used for latency distributions: the paper reports averages, but the
/// reproduction also records distributions so the benches can print
/// percentiles.
///
/// ```
/// use metrics::Histogram;
/// use event_sim::SimDuration;
/// let mut h = Histogram::new(SimDuration::from_millis(1), 10);
/// h.record(SimDuration::from_micros(1_500)); // bin 1
/// h.record(SimDuration::from_micros(9_999)); // bin 9
/// h.record(SimDuration::from_millis(50));    // overflow
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bin_count(1), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    bin_width: SimDuration,
    buckets: Buckets,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins of width `bin_width`.
    /// Samples at or beyond `bin_width * bins` land in the overflow bin.
    ///
    /// # Panics
    /// Panics if `bin_width` is zero or `bins` is zero.
    pub fn new(bin_width: SimDuration, bins: usize) -> Self {
        assert!(!bin_width.is_zero(), "bin width must be positive");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            bin_width,
            buckets: Buckets::new(bins),
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, sample: SimDuration) {
        let idx = (sample.as_nanos() / self.bin_width.as_nanos()) as usize;
        self.buckets.record_n(idx, 1);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.buckets.count
    }

    /// Number of samples in bin `idx` (0-based).
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn bin_count(&self, idx: usize) -> u64 {
        self.buckets.bins[idx]
    }

    /// Number of samples beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.buckets.overflow
    }

    /// Number of bins (excluding overflow).
    pub fn num_bins(&self) -> usize {
        self.buckets.bins.len()
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> SimDuration {
        self.bin_width
    }

    /// The inclusive lower edge of bin `idx`.
    pub fn bin_lower_edge(&self, idx: usize) -> SimDuration {
        self.bin_width * idx as u64
    }

    /// An upper bound on the `q`-quantile (0.0 ..= 1.0): the upper edge of
    /// the bin in which the quantile falls, or `None` if the histogram is
    /// empty or the quantile lands in the overflow bin.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<SimDuration> {
        self.buckets
            .quantile_bucket(q)
            .map(|idx| self.bin_width * (idx as u64 + 1))
    }

    /// Iterates over `(lower_edge, count)` pairs for the finite bins.
    pub fn iter(&self) -> impl Iterator<Item = (SimDuration, u64)> + '_ {
        self.buckets
            .bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.bin_lower_edge(i), c))
    }

    /// Merges another histogram with identical geometry into this one.
    ///
    /// # Panics
    /// Panics if bin width or bin count differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bin_width, other.bin_width, "bin width mismatch");
        self.buckets.merge(&other.buckets);
    }
}

/// A mergeable log-scale histogram over `u64` values.
///
/// Buckets cover the whole `u64` range with bounded relative error: each
/// power-of-two octave is split into `2^sub_bits` linear sub-buckets, so
/// a bucket's width is at most `2^-sub_bits` of its value (3.2% at the
/// default `sub_bits = 5`). Memory is fixed at construction —
/// `(65 - sub_bits) · 2^sub_bits` counters, ~15 KiB at the default —
/// independent of how many samples are recorded, which is what makes
/// streaming fleet aggregation O(shards × buckets) instead of
/// O(vehicles).
///
/// [`merge`](Self::merge) is bucket-wise `u64` addition: commutative and
/// associative, so partial histograms from any shard partition, merged in
/// any order, produce bit-identical totals (the fleet digest depends on
/// this).
///
/// ```
/// use metrics::LogHistogram;
/// let mut h = LogHistogram::default();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p99 = h.quantile_upper_bound(0.99).unwrap();
/// assert!((990..=1023).contains(&p99), "{p99}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    sub_bits: u32,
    buckets: Buckets,
}

impl Default for LogHistogram {
    /// The default geometry: 32 sub-buckets per octave (≤ 3.2% relative
    /// quantile error).
    fn default() -> Self {
        LogHistogram::new(5)
    }
}

impl LogHistogram {
    /// Creates a histogram with `2^sub_bits` linear sub-buckets per
    /// power-of-two octave.
    ///
    /// # Panics
    /// Panics unless `1 <= sub_bits <= 8`.
    pub fn new(sub_bits: u32) -> Self {
        assert!(
            (1..=8).contains(&sub_bits),
            "sub_bits must be in 1..=8, got {sub_bits}"
        );
        let buckets = (65 - sub_bits as usize) << sub_bits;
        LogHistogram {
            sub_bits,
            buckets: Buckets::new(buckets),
        }
    }

    /// The bucket index of `value`.
    fn index_of(&self, value: u64) -> usize {
        let sub = 1u64 << self.sub_bits;
        if value < sub {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let shift = msb - self.sub_bits;
        let block = u64::from(shift + 1);
        ((block << self.sub_bits) + ((value >> shift) & (sub - 1))) as usize
    }

    /// The largest value that lands in bucket `idx` (the inclusive upper
    /// bound a quantile reports).
    fn upper_bound_of(&self, idx: usize) -> u64 {
        let sub = 1u64 << self.sub_bits;
        let idx = idx as u64;
        if idx < sub {
            return idx;
        }
        let block = idx >> self.sub_bits;
        let pos = idx & (sub - 1);
        let shift = (block - 1) as u32;
        // Upper edge is ((sub + pos + 1) << shift); the largest member is
        // one below it. Saturate for the topmost bucket.
        match (sub + pos + 1).checked_shl(shift) {
            Some(edge) if edge != 0 => edge - 1,
            _ => u64::MAX,
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, value: u64) {
        let idx = self.index_of(value);
        self.buckets.record_n(idx, 1);
    }

    /// Adds `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        let idx = self.index_of(value);
        self.buckets.record_n(idx, n);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.buckets.count
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.count == 0
    }

    /// Number of buckets (fixed at construction).
    pub fn num_buckets(&self) -> usize {
        self.buckets.bins.len()
    }

    /// Sub-bucket resolution exponent this histogram was built with.
    pub fn sub_bits(&self) -> u32 {
        self.sub_bits
    }

    /// An inclusive upper bound on the `q`-quantile (0.0 ..= 1.0): the
    /// largest value of the bucket in which the quantile falls, `None`
    /// when the histogram is empty. Within `2^-sub_bits` of the exact
    /// order statistic.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        self.buckets
            .quantile_bucket(q)
            .map(|idx| self.upper_bound_of(idx))
    }

    /// Merges another histogram with the same geometry into this one.
    /// Commutative and associative (see the type docs).
    ///
    /// # Panics
    /// Panics if the sub-bucket resolution differs.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.sub_bits, other.sub_bits, "sub_bits mismatch");
        self.buckets.merge(&other.buckets);
    }

    /// Resets every counter to zero without releasing the bucket storage
    /// (a sharded worker reuses one histogram across shards).
    pub fn clear(&mut self) {
        self.buckets.clear();
    }

    /// Iterates over the `(bucket_index, count)` pairs of non-empty
    /// buckets — the deterministic serialization a digest folds over.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .bins
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(i, &c)| (i, c))
    }

    /// Heap + inline bytes this histogram occupies — the O(buckets) term
    /// of the fleet-aggregation memory contract.
    pub fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>() - std::mem::size_of::<Buckets>()
            + self.buckets.footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn bins_receive_correct_samples() {
        let mut h = Histogram::new(us(10), 5);
        h.record(us(0)); // bin 0 (lower edge inclusive)
        h.record(us(9)); // bin 0
        h.record(us(10)); // bin 1
        h.record(us(49)); // bin 4
        h.record(us(50)); // overflow
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(4), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn quantiles_bound_from_above() {
        let mut h = Histogram::new(us(1), 100);
        for v in 0..100 {
            h.record(us(v));
        }
        // Median of 0..99 is < 50, upper bound of its bin is 50us.
        assert_eq!(h.quantile_upper_bound(0.5), Some(us(50)));
        assert_eq!(h.quantile_upper_bound(1.0), Some(us(100)));
        assert_eq!(h.quantile_upper_bound(0.0), Some(us(1)));
    }

    #[test]
    fn quantile_of_empty_is_none() {
        let h = Histogram::new(us(1), 4);
        assert_eq!(h.quantile_upper_bound(0.5), None);
    }

    #[test]
    fn extreme_quantiles_of_empty_are_none() {
        // p0 and p100 have no special casing that could invent a bound
        // for a histogram with no samples.
        let h = Histogram::new(us(1), 4);
        assert_eq!(h.quantile_upper_bound(0.0), None);
        assert_eq!(h.quantile_upper_bound(1.0), None);
    }

    #[test]
    fn single_bucket_histogram_answers_every_quantile() {
        // The degenerate one-bin geometry: every in-range sample lands in
        // bin 0, so every quantile's upper bound is the bin's upper edge.
        let mut h = Histogram::new(us(10), 1);
        h.record(us(0));
        h.record(us(9));
        assert_eq!(h.num_bins(), 1);
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(h.quantile_upper_bound(q), Some(us(10)), "q = {q}");
        }
    }

    #[test]
    fn p0_clamps_to_the_first_sample() {
        // q = 0 must still demand one sample (not zero), so it skips
        // leading empty bins and lands on the first occupied one.
        let mut h = Histogram::new(us(10), 4);
        h.record(us(25)); // bin 2 — bins 0 and 1 stay empty
        assert_eq!(h.quantile_upper_bound(0.0), Some(us(30)));
    }

    #[test]
    fn p100_is_the_last_occupied_bin_edge() {
        let mut h = Histogram::new(us(10), 4);
        h.record(us(5)); // bin 0
        h.record(us(35)); // bin 3
        assert_eq!(h.quantile_upper_bound(1.0), Some(us(40)));
        // But p100 with any overflow sample is unbounded.
        h.record(us(1000));
        assert_eq!(h.quantile_upper_bound(1.0), None);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_above_one_rejected() {
        let h = Histogram::new(us(1), 4);
        let _ = h.quantile_upper_bound(1.5);
    }

    #[test]
    fn quantile_in_overflow_is_none() {
        let mut h = Histogram::new(us(1), 2);
        h.record(us(100));
        assert_eq!(h.quantile_upper_bound(0.5), None);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(us(10), 3);
        let mut b = Histogram::new(us(10), 3);
        a.record(us(5));
        b.record(us(5));
        b.record(us(25));
        b.record(us(1000));
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.bin_count(0), 2);
        assert_eq!(a.bin_count(2), 1);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "bin width mismatch")]
    fn merge_rejects_different_geometry() {
        let mut a = Histogram::new(us(10), 3);
        let b = Histogram::new(us(20), 3);
        a.merge(&b);
    }

    #[test]
    fn iter_yields_edges_and_counts() {
        let mut h = Histogram::new(us(10), 2);
        h.record(us(15));
        let v: Vec<_> = h.iter().collect();
        assert_eq!(v, vec![(us(0), 0), (us(10), 1)]);
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn zero_bin_width_rejected() {
        let _ = Histogram::new(SimDuration::ZERO, 3);
    }

    // --- LogHistogram ---

    #[test]
    fn log_small_values_are_exact() {
        // Below 2^sub_bits every value owns its own bucket, so the
        // quantile upper bound is the exact order statistic.
        let mut h = LogHistogram::new(5);
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.quantile_upper_bound(0.0), Some(0));
        assert_eq!(h.quantile_upper_bound(1.0), Some(31));
        assert_eq!(h.count(), 32);
    }

    #[test]
    fn log_index_and_upper_bound_are_consistent() {
        // Every probe value must land in a bucket whose inclusive upper
        // bound is >= the value and within the relative-error contract.
        let mut probes = vec![0u64, 1, 2, 31, 32, 33, 1000, 123_456_789];
        probes.extend((0..64).map(|s| 1u64 << s));
        probes.push(u64::MAX);
        for sub_bits in [1u32, 4, 5, 8] {
            let h = LogHistogram::new(sub_bits);
            for &v in &probes {
                let idx = h.index_of(v);
                assert!(idx < h.num_buckets(), "v={v} idx={idx}");
                let ub = h.upper_bound_of(idx);
                assert!(ub >= v, "v={v} ub={ub}");
                // Bucket width <= 2^-sub_bits of the value (plus 1 for
                // the integer edges).
                let width = ub - v;
                assert!(
                    (width as u128) <= ((v as u128) >> sub_bits) + 1,
                    "v={v} ub={ub} sub_bits={sub_bits}"
                );
            }
        }
    }

    #[test]
    fn log_buckets_are_monotone() {
        // Index is monotone in the value, and consecutive buckets tile
        // the range: upper_bound(idx) + 1 is the first value of idx + 1.
        let h = LogHistogram::new(2);
        let mut last = 0usize;
        for v in 0..4096u64 {
            let idx = h.index_of(v);
            assert!(idx >= last, "index not monotone at {v}");
            if idx > last {
                assert_eq!(idx, last + 1, "skipped a bucket at {v}");
                assert_eq!(h.upper_bound_of(last), v - 1);
            }
            last = idx;
        }
    }

    #[test]
    fn log_full_range_has_no_overflow() {
        let mut h = LogHistogram::default();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_upper_bound(1.0), Some(u64::MAX));
        assert_eq!(h.quantile_upper_bound(0.0), Some(0));
    }

    #[test]
    fn log_quantiles_match_exact_within_relative_error() {
        let mut h = LogHistogram::default();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 5_000u64), (0.99, 9_900), (0.999, 9_990)] {
            let got = h.quantile_upper_bound(q).unwrap();
            assert!(got >= exact, "q={q}: {got} < exact {exact}");
            assert!(
                (got - exact) as f64 <= exact as f64 / 32.0 + 1.0,
                "q={q}: {got} vs exact {exact}"
            );
        }
    }

    #[test]
    fn log_record_n_equals_repeated_record() {
        let mut a = LogHistogram::default();
        let mut b = LogHistogram::default();
        for _ in 0..7 {
            a.record(1234);
        }
        b.record_n(1234, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn log_clear_keeps_geometry() {
        let mut h = LogHistogram::default();
        h.record(42);
        let buckets = h.num_buckets();
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.num_buckets(), buckets);
        assert_eq!(h.quantile_upper_bound(0.5), None);
    }

    #[test]
    #[should_panic(expected = "sub_bits mismatch")]
    fn log_merge_rejects_different_resolution() {
        let mut a = LogHistogram::new(4);
        let b = LogHistogram::new(5);
        a.merge(&b);
    }

    #[test]
    fn log_footprint_is_fixed() {
        let mut h = LogHistogram::default();
        let before = h.footprint_bytes();
        for v in 0..100_000u64 {
            h.record(v.wrapping_mul(0x9E37_79B9));
        }
        assert_eq!(h.footprint_bytes(), before, "recording must not grow");
        assert!(before >= h.num_buckets() * 8);
    }

    #[test]
    fn log_iter_nonzero_reports_every_sample() {
        let mut h = LogHistogram::default();
        h.record(3);
        h.record_n(1_000_000, 4);
        let pairs: Vec<_> = h.iter_nonzero().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs.iter().map(|&(_, c)| c).sum::<u64>(), 5);
    }

    proptest! {
        #[test]
        fn log_merge_is_commutative(
            xs in proptest::collection::vec(0u64..=u64::MAX, 0..50),
            ys in proptest::collection::vec(0u64..=u64::MAX, 0..50),
        ) {
            let mut a = LogHistogram::default();
            let mut b = LogHistogram::default();
            for &v in &xs { a.record(v); }
            for &v in &ys { b.record(v); }
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn log_merge_is_associative(
            xs in proptest::collection::vec(0u64..=u64::MAX, 0..40),
            ys in proptest::collection::vec(0u64..=u64::MAX, 0..40),
            zs in proptest::collection::vec(0u64..=u64::MAX, 0..40),
        ) {
            let build = |vals: &[u64]| {
                let mut h = LogHistogram::default();
                for &v in vals { h.record(v); }
                h
            };
            let (a, b, c) = (build(&xs), build(&ys), build(&zs));
            // (a + b) + c
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            // a + (b + c)
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            prop_assert_eq!(left, right);
        }

        #[test]
        fn log_merge_equals_recording_everything_in_one(
            xs in proptest::collection::vec(0u64..=u64::MAX, 0..60),
            split in 0usize..60,
        ) {
            let split = split.min(xs.len());
            let mut whole = LogHistogram::default();
            for &v in &xs { whole.record(v); }
            let mut left = LogHistogram::default();
            let mut right = LogHistogram::default();
            for &v in &xs[..split] { left.record(v); }
            for &v in &xs[split..] { right.record(v); }
            left.merge(&right);
            prop_assert_eq!(whole, left);
        }

        #[test]
        fn log_quantile_bounds_any_value_distribution(
            xs in proptest::collection::vec(0u64..1u64 << 40, 1..80),
            q_millis in 0u64..=1000,
        ) {
            let q = q_millis as f64 / 1000.0;
            let mut h = LogHistogram::default();
            for &v in &xs { h.record(v); }
            let mut xs = xs;
            xs.sort_unstable();
            let rank = ((q * xs.len() as f64).ceil().max(1.0) as usize).min(xs.len()) - 1;
            let exact = xs[rank];
            let got = h.quantile_upper_bound(q).unwrap();
            prop_assert!(got >= exact, "{got} < exact {exact}");
            prop_assert!(
                (got - exact) as f64 <= exact as f64 / 32.0 + 1.0,
                "{got} too far above exact {exact}"
            );
        }
    }
}
