//! Measurement utilities for the CoEfficient simulation.
//!
//! The paper's evaluation reports four metrics (§IV-B): overall running
//! time, bandwidth utilization, average transmission latency and deadline
//! miss ratio. This crate provides the accounting primitives those metrics
//! are computed from:
//!
//! * [`Summary`] — streaming min/max/mean/variance over durations;
//! * [`Histogram`] — fixed-width latency histograms for percentile reports;
//! * [`LogHistogram`] — mergeable log-scale `u64` histograms for
//!   fleet-scale streaming aggregation (fixed memory, order-independent
//!   merge);
//! * [`UtilizationTimeline`] — busy/idle accounting of a bus or channel;
//! * [`DeadlineTracker`] — met/missed deadline counting per message class;
//! * [`Aggregate`] — cross-run distribution summaries (mean/stddev/min/max
//!   and exact percentiles) for the multi-seed sweep harness.
//!
//! ```
//! use metrics::Summary;
//! use event_sim::SimDuration;
//! let mut s = Summary::new();
//! s.record(SimDuration::from_micros(10));
//! s.record(SimDuration::from_micros(30));
//! assert_eq!(s.mean().unwrap().as_micros(), 20);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod aggregate;
mod deadline;
mod histogram;
mod stats;
mod utilization;

pub use aggregate::{Aggregate, AggregateSummary};
pub use deadline::{DeadlineOutcome, DeadlineTracker};
pub use histogram::{Histogram, LogHistogram};
pub use stats::Summary;
pub use utilization::UtilizationTimeline;
