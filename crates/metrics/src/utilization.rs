//! Busy/idle accounting for a bus or channel.

use event_sim::{SimDuration, SimTime};

/// Tracks how much of a resource's timeline was spent transmitting.
///
/// The paper's *bandwidth utilization* metric (§IV-B.2) is "the ratio of the
/// bandwidth that is actually used to the whole bandwidth"; on a serial bus
/// that equals busy time over elapsed time.
///
/// Busy intervals are recorded as half-open `[start, end)` spans. Spans must
/// be non-overlapping per timeline (the FlexRay bus is serial; overlap would
/// indicate an arbitration bug), which this type asserts.
///
/// ```
/// use metrics::UtilizationTimeline;
/// use event_sim::{SimTime, SimDuration};
/// let mut u = UtilizationTimeline::new();
/// u.record_busy(SimTime::ZERO, SimDuration::from_micros(30));
/// u.record_busy(SimTime::from_micros(50), SimDuration::from_micros(20));
/// assert_eq!(u.busy_time(), SimDuration::from_micros(50));
/// assert!((u.utilization(SimTime::from_micros(100)) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct UtilizationTimeline {
    busy: SimDuration,
    last_busy_end: Option<SimTime>,
    spans: u64,
}

impl UtilizationTimeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a busy span starting at `start` lasting `len`.
    ///
    /// # Panics
    /// Panics if the span overlaps a previously recorded span (spans must be
    /// recorded in non-decreasing start order, as a serial bus produces
    /// them).
    pub fn record_busy(&mut self, start: SimTime, len: SimDuration) {
        if let Some(end) = self.last_busy_end {
            assert!(
                start >= end,
                "overlapping busy spans: new span starts at {start} before previous end {end}"
            );
        }
        self.busy += len;
        self.last_busy_end = Some(start + len);
        self.spans += 1;
    }

    /// Total busy time recorded so far.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of busy spans recorded.
    pub fn span_count(&self) -> u64 {
        self.spans
    }

    /// End of the latest busy span, if any.
    pub fn last_busy_end(&self) -> Option<SimTime> {
        self.last_busy_end
    }

    /// Fraction of `[0, horizon)` that was busy, in `0.0 ..= 1.0`.
    ///
    /// # Panics
    /// Panics if `horizon` is zero.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        assert!(horizon > SimTime::ZERO, "horizon must be positive");
        (self.busy.as_nanos() as f64 / horizon.as_nanos() as f64).min(1.0)
    }

    /// Idle time within `[0, horizon)` (saturating at zero if busy time
    /// exceeds the horizon, which can only happen if spans extend past it).
    pub fn idle_time(&self, horizon: SimTime) -> SimDuration {
        SimDuration::from_nanos(horizon.as_nanos()).saturating_sub(self.busy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_busy_time() {
        let mut u = UtilizationTimeline::new();
        u.record_busy(SimTime::from_micros(10), SimDuration::from_micros(5));
        u.record_busy(SimTime::from_micros(20), SimDuration::from_micros(15));
        assert_eq!(u.busy_time(), SimDuration::from_micros(20));
        assert_eq!(u.span_count(), 2);
        assert_eq!(u.last_busy_end(), Some(SimTime::from_micros(35)));
    }

    #[test]
    fn utilization_fraction() {
        let mut u = UtilizationTimeline::new();
        u.record_busy(SimTime::ZERO, SimDuration::from_millis(1));
        let util = u.utilization(SimTime::from_millis(4));
        assert!((util - 0.25).abs() < 1e-12);
        assert_eq!(
            u.idle_time(SimTime::from_millis(4)),
            SimDuration::from_millis(3)
        );
    }

    #[test]
    fn back_to_back_spans_allowed() {
        let mut u = UtilizationTimeline::new();
        u.record_busy(SimTime::ZERO, SimDuration::from_micros(10));
        u.record_busy(SimTime::from_micros(10), SimDuration::from_micros(10));
        assert_eq!(u.busy_time(), SimDuration::from_micros(20));
    }

    #[test]
    #[should_panic(expected = "overlapping busy spans")]
    fn overlap_detected() {
        let mut u = UtilizationTimeline::new();
        u.record_busy(SimTime::ZERO, SimDuration::from_micros(10));
        u.record_busy(SimTime::from_micros(5), SimDuration::from_micros(1));
    }

    #[test]
    fn utilization_clamps_at_one() {
        let mut u = UtilizationTimeline::new();
        u.record_busy(SimTime::ZERO, SimDuration::from_millis(10));
        assert_eq!(u.utilization(SimTime::from_millis(5)), 1.0);
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        let u = UtilizationTimeline::new();
        let _ = u.utilization(SimTime::ZERO);
    }
}
