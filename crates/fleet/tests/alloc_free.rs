//! Proof that the fleet aggregation path is allocation-free — the
//! mechanical half of the memory contract: aggregation state is
//! O(shards × buckets) *and never grows*, no matter how many vehicles
//! stream through it.
//!
//! A counting global allocator is armed after the aggregates are built
//! (all histogram storage is reserved at construction). From then on,
//! recording thousands of vehicle reports, counting unschedulable
//! vehicles, merging shard aggregates and clearing them for reuse must
//! not touch the heap at all.
//!
//! A single `#[test]` because the allocator state is global — parallel
//! tests would count each other's allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use coefficient::{Runner, COEFFICIENT, GREEDY};
use event_sim::SimDuration;
use fleet::{FleetAggregate, FleetSpec};

struct CountingAllocator;

/// Counted while [`ARMED`]: every fresh allocation or reallocation.
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn aggregation_path_does_not_allocate() {
    let spec = FleetSpec {
        vehicles: 4,
        horizon: SimDuration::from_millis(5),
        ..FleetSpec::default()
    };
    let policies = [COEFFICIENT, GREEDY];

    // A handful of real reports to stream in over and over (simulating
    // the vehicles themselves may allocate freely — the contract covers
    // the aggregation state, which must stay fixed).
    let reports: Vec<_> = (0..spec.vehicles)
        .map(|v| {
            let draw = spec.vehicle_draw(v);
            let report = Runner::new(spec.vehicle_config(v, COEFFICIENT))
                .expect("schedulable")
                .run();
            (draw.condition, report)
        })
        .collect();

    let mut shard = FleetAggregate::new(&policies);
    let mut global = FleetAggregate::new(&policies);
    let before = shard.footprint_bytes();

    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for round in 0..2_000u64 {
        for (i, (condition, report)) in reports.iter().enumerate() {
            let vehicle = round * reports.len() as u64 + i as u64;
            shard.record(0, vehicle, *condition, report);
            shard.record(1, vehicle, *condition, report);
        }
        shard.record_unschedulable(0, round);
        global.merge(&shard);
        shard.clear();
    }
    let digest = global.digest();
    ARMED.store(false, Ordering::SeqCst);

    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "{allocs} heap allocations while streaming 8000 vehicle reports \
         through record/merge/clear"
    );
    assert_eq!(shard.footprint_bytes(), before, "aggregate must not grow");
    assert_eq!(global.policy(0).vehicles, 8_000);
    assert_ne!(digest, 0);
}
