//! Shard-determinism contract: the fleet aggregate — and therefore its
//! digest — must be a pure function of the [`FleetSpec`], invariant to
//! worker-thread count and shard size, and (property-tested) to any
//! partition of the vehicle range.

use coefficient::{Runner, COEFFICIENT, GREEDY};
use event_sim::SimDuration;
use fleet::{exec, FleetAggregate, FleetSpec};
use proptest::prelude::*;

fn pinned_spec() -> FleetSpec {
    FleetSpec {
        vehicles: 48,
        policies: vec![COEFFICIENT, GREEDY],
        horizon: SimDuration::from_millis(5),
        shard_size: 16,
        ..FleetSpec::default()
    }
}

#[test]
fn digest_is_identical_across_1_2_8_threads() {
    let spec = pinned_spec();
    let d1 = exec::run(&spec, 1).aggregate.digest();
    let d2 = exec::run(&spec, 2).aggregate.digest();
    let d8 = exec::run(&spec, 8).aggregate.digest();
    assert_eq!(d1, d2);
    assert_eq!(d1, d8);
}

#[test]
fn digest_is_identical_across_shard_sizes() {
    let base = pinned_spec();
    let small_shards = FleetSpec {
        shard_size: 5,
        ..base.clone()
    };
    let one_big_shard = FleetSpec {
        shard_size: 1000,
        ..base.clone()
    };
    let d_base = exec::run(&base, 2).aggregate.digest();
    let d_small = exec::run(&small_shards, 2).aggregate.digest();
    let d_big = exec::run(&one_big_shard, 2).aggregate.digest();
    assert_eq!(d_base, d_small, "shard size must not leak into the digest");
    assert_eq!(d_base, d_big);
}

#[test]
fn aggregates_not_just_digests_are_equal() {
    let spec = pinned_spec();
    let serial = exec::run(&spec, 1).aggregate;
    let parallel = exec::run(&spec, 8).aggregate;
    assert_eq!(serial, parallel);
    let agg = serial.policy(0);
    assert_eq!(agg.vehicles + agg.unschedulable, spec.vehicles);
    assert!(agg.produced > 0, "the fleet did real work");
}

/// Records vehicles `range` of `spec` (first policy only) into `agg`.
fn record_range(spec: &FleetSpec, agg: &mut FleetAggregate, range: std::ops::Range<u64>) {
    for v in range {
        match Runner::new(spec.vehicle_config(v, spec.policies[0])) {
            Ok(runner) => {
                let report = runner.run();
                agg.record(0, v, spec.vehicle_draw(v).condition, &report);
            }
            Err(_) => agg.record_unschedulable(0, v),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any partition of the vehicle range into contiguous shards, merged
    /// in any rotation, yields the same aggregate as one pass over the
    /// whole range.
    #[test]
    fn arbitrary_shard_partitions_merge_identically(
        cuts in proptest::collection::vec(1u64..12, 0..4),
        rotate in 0usize..4,
    ) {
        let spec = FleetSpec {
            vehicles: 12,
            horizon: SimDuration::from_millis(5),
            ..FleetSpec::default()
        };
        let policies = [spec.policies[0]];

        let mut whole = FleetAggregate::new(&policies);
        record_range(&spec, &mut whole, 0..spec.vehicles);

        // Sorted, deduped cut points split 0..vehicles into shards.
        let mut cuts = cuts;
        cuts.sort_unstable();
        cuts.dedup();
        let mut bounds = vec![0u64];
        bounds.extend(cuts);
        bounds.push(spec.vehicles);
        let mut shards: Vec<FleetAggregate> = Vec::new();
        for pair in bounds.windows(2) {
            let mut shard = FleetAggregate::new(&policies);
            record_range(&spec, &mut shard, pair[0]..pair[1]);
            shards.push(shard);
        }

        // Merge in a rotated (non-canonical) order.
        let rotate = rotate % shards.len().max(1);
        shards.rotate_left(rotate);
        let mut merged = FleetAggregate::new(&policies);
        for shard in &shards {
            merged.merge(shard);
        }

        prop_assert_eq!(&whole, &merged);
        prop_assert_eq!(whole.digest(), merged.digest());
    }
}
