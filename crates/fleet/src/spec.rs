//! The fleet specification: what a fleet run simulates.

use coefficient::{PolicyRef, RunConfig, StopCondition, TraceConfig, COEFFICIENT};
use event_sim::rng::derive;
use event_sim::SimDuration;
use flexray::config::ClusterConfig;
use workloads::sae::IdRange;
use workloads::synthetic::SyntheticSpec;

use crate::env::{EnvModel, VehicleDraw, MIXED};

/// Default master seed (shared with the bench harness's experiments).
pub const DEFAULT_SEED: u64 = 20140630;

/// A fleet Monte Carlo specification: how many vehicles, which policies,
/// which environment distribution, and the per-vehicle run geometry.
///
/// Each vehicle `v` gets its own seed via the workspace's standard
/// derivation, keyed on the environment name —
/// `derive(seed, env.name, v)` — and from that seed every per-vehicle
/// quantity (scenario draw, workload, fault injection) follows
/// deterministically. The same vehicle seed is shared across policies so
/// per-policy results are paired comparisons over identical vehicles.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Number of vehicles to simulate.
    pub vehicles: u64,
    /// Policies every vehicle is run under (paired by vehicle seed).
    pub policies: Vec<PolicyRef>,
    /// Environment distribution vehicles sample from.
    pub env: &'static EnvModel,
    /// Master seed of the fleet.
    pub seed: u64,
    /// Simulated horizon of each vehicle run.
    pub horizon: SimDuration,
    /// Minislot count of the per-vehicle `paper_mixed` cluster.
    pub minislots: u64,
    /// Vehicles per work shard (the executor's unit of hand-off). Purely
    /// an execution concern: the aggregate is invariant to it.
    pub shard_size: u64,
}

impl Default for FleetSpec {
    /// 10 000 vehicles of the [`MIXED`] environment under CoEfficient,
    /// 10 ms horizons — the smoke-scale configuration.
    fn default() -> Self {
        FleetSpec {
            vehicles: 10_000,
            policies: vec![COEFFICIENT],
            env: &MIXED,
            seed: DEFAULT_SEED,
            horizon: SimDuration::from_millis(10),
            minislots: 50,
            shard_size: 1024,
        }
    }
}

impl FleetSpec {
    /// The derived seed of vehicle `v` — every per-vehicle random
    /// quantity flows from this one value.
    pub fn vehicle_seed(&self, v: u64) -> u64 {
        derive(self.seed, self.env.name, v)
    }

    /// Samples vehicle `v`'s environment draw.
    pub fn vehicle_draw(&self, v: u64) -> VehicleDraw {
        self.env.sample(self.vehicle_seed(v))
    }

    /// Builds the full [`RunConfig`] of vehicle `v` under `policy`:
    /// sampled scenario, per-vehicle static message set (synthetic, sized
    /// by the draw) and dynamic message set (SAE-derived), both seeded by
    /// the vehicle seed.
    pub fn vehicle_config(&self, v: u64, policy: PolicyRef) -> RunConfig {
        let seed = self.vehicle_seed(v);
        let draw = self.env.sample(seed);
        RunConfig {
            cluster: ClusterConfig::paper_mixed(self.minislots),
            scenario: draw.scenario,
            static_messages: workloads::synthetic::message_set(
                &SyntheticSpec {
                    count: draw.static_messages,
                    ..SyntheticSpec::default()
                },
                seed,
            ),
            dynamic_messages: workloads::sae::message_set(IdRange::For80Slots, seed),
            policy,
            stop: StopCondition::Horizon(self.horizon),
            seed,
            trace: TraceConfig::default(),
        }
    }

    /// Number of shards the vehicle range splits into.
    pub fn shard_count(&self) -> u64 {
        if self.vehicles == 0 {
            0
        } else {
            self.vehicles.div_ceil(self.shard_size.max(1))
        }
    }

    /// The vehicle range of shard `i` (see [`shard_count`](Self::shard_count)).
    pub fn shard_range(&self, i: u64) -> std::ops::Range<u64> {
        let size = self.shard_size.max(1);
        let start = i * size;
        start..(start + size).min(self.vehicles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vehicle_seeds_are_distinct_and_stable() {
        let spec = FleetSpec::default();
        assert_eq!(spec.vehicle_seed(7), spec.vehicle_seed(7));
        assert_ne!(spec.vehicle_seed(7), spec.vehicle_seed(8));
        // Keyed on the environment name, like per-cell sweep seeds key on
        // the scenario name.
        let tunnel = FleetSpec {
            env: &crate::env::TUNNEL,
            ..FleetSpec::default()
        };
        assert_ne!(spec.vehicle_seed(7), tunnel.vehicle_seed(7));
    }

    #[test]
    fn shards_tile_the_vehicle_range() {
        let spec = FleetSpec {
            vehicles: 2500,
            shard_size: 1024,
            ..FleetSpec::default()
        };
        assert_eq!(spec.shard_count(), 3);
        let mut covered = 0;
        for i in 0..spec.shard_count() {
            let r = spec.shard_range(i);
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, spec.vehicles);
    }

    #[test]
    fn vehicle_config_reflects_the_draw() {
        let spec = FleetSpec::default();
        let cfg = spec.vehicle_config(3, COEFFICIENT);
        let draw = spec.vehicle_draw(3);
        assert_eq!(cfg.scenario, draw.scenario);
        assert_eq!(cfg.static_messages.len(), draw.static_messages as usize);
        assert_eq!(cfg.seed, spec.vehicle_seed(3));
        assert!(!cfg.dynamic_messages.is_empty());
    }
}
