//! The sharded fleet executor.
//!
//! Vehicles are split into fixed-size shards ([`FleetSpec::shard_size`]);
//! worker threads claim shards from a shared atomic counter, simulate
//! each vehicle under every policy, and fold the results into a
//! shard-local [`FleetAggregate`] that is merged into the global one when
//! the shard completes. Because the aggregate's merge is commutative and
//! associative and every vehicle's outcome is a pure function of its
//! derived seed, the final aggregate — and its digest — is identical for
//! any thread count and any shard size.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use coefficient::Runner;

use crate::agg::FleetAggregate;
use crate::spec::FleetSpec;

/// Live progress counters the stats endpoint reads while a run is going.
/// Updated at shard granularity.
#[derive(Debug)]
pub struct Progress {
    /// Vehicles whose simulation completed (all policies).
    pub completed: AtomicU64,
    /// Vehicle-policy runs rejected as unschedulable.
    pub unschedulable: AtomicU64,
    /// Shards fully merged so far.
    pub shards_done: AtomicU64,
    /// Total vehicles of the run.
    pub total: u64,
    /// Total shards of the run.
    pub total_shards: u64,
    /// Partial aggregate of every merged shard (the stats endpoint
    /// snapshots this; the executor's final result is the same object).
    pub partial: Mutex<FleetAggregate>,
}

impl Progress {
    /// Fresh progress for `spec`.
    pub fn new(spec: &FleetSpec) -> Self {
        Progress {
            completed: AtomicU64::new(0),
            unschedulable: AtomicU64::new(0),
            shards_done: AtomicU64::new(0),
            total: spec.vehicles,
            total_shards: spec.shard_count(),
            partial: Mutex::new(FleetAggregate::new(&spec.policies)),
        }
    }
}

/// Result of a fleet run.
#[derive(Debug)]
pub struct FleetRun {
    /// The merged aggregate of every vehicle.
    pub aggregate: FleetAggregate,
    /// Wall-clock time of the run.
    pub wall_clock: Duration,
    /// Worker threads used.
    pub threads: usize,
    /// High-water memory of the aggregation state across all workers:
    /// `(threads + 1) × footprint` of one aggregate (each worker's
    /// shard-local aggregate plus the global one) — O(shards × buckets),
    /// independent of the vehicle count.
    pub aggregation_bytes: usize,
}

/// Runs `spec` on `threads` workers, reporting progress through `progress`.
///
/// `progress.partial` accumulates merged shards as they finish and ends
/// as the final aggregate.
pub fn run_with_progress(spec: &FleetSpec, threads: usize, progress: &Progress) -> FleetRun {
    let threads = threads.max(1);
    let start = Instant::now();
    let next_shard = AtomicUsize::new(0);
    let shard_count = spec.shard_count();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // One reusable shard-local aggregate per worker: fixed
                // footprint, cleared between shards.
                let mut local = FleetAggregate::new(&spec.policies);
                loop {
                    let shard = next_shard.fetch_add(1, Ordering::Relaxed) as u64;
                    if shard >= shard_count {
                        break;
                    }
                    let mut completed = 0u64;
                    let mut unschedulable = 0u64;
                    for v in spec.shard_range(shard) {
                        for (p, &policy) in spec.policies.iter().enumerate() {
                            match Runner::new(spec.vehicle_config(v, policy)) {
                                Ok(runner) => {
                                    let report = runner.run();
                                    let condition = spec.vehicle_draw(v).condition;
                                    local.record(p, v, condition, &report);
                                }
                                Err(_) => {
                                    local.record_unschedulable(p, v);
                                    unschedulable += 1;
                                }
                            }
                        }
                        completed += 1;
                    }
                    progress
                        .partial
                        .lock()
                        .expect("aggregate lock poisoned")
                        .merge(&local);
                    local.clear();
                    progress.completed.fetch_add(completed, Ordering::Relaxed);
                    progress
                        .unschedulable
                        .fetch_add(unschedulable, Ordering::Relaxed);
                    progress.shards_done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let aggregate = progress
        .partial
        .lock()
        .expect("aggregate lock poisoned")
        .clone();
    let aggregation_bytes = aggregate.footprint_bytes() * (threads + 1);
    FleetRun {
        aggregate,
        wall_clock: start.elapsed(),
        threads,
        aggregation_bytes,
    }
}

/// Runs `spec` on `threads` workers (no live progress reporting).
pub fn run(spec: &FleetSpec, threads: usize) -> FleetRun {
    let progress = Progress::new(spec);
    run_with_progress(spec, threads, &progress)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> FleetSpec {
        FleetSpec {
            vehicles: 12,
            shard_size: 5,
            horizon: event_sim::SimDuration::from_millis(5),
            ..FleetSpec::default()
        }
    }

    #[test]
    fn executor_accounts_for_every_vehicle() {
        let spec = tiny_spec();
        let run = run(&spec, 2);
        let agg = run.aggregate.policy(0);
        assert_eq!(agg.vehicles + agg.unschedulable, spec.vehicles);
        assert!(agg.produced > 0);
        assert_eq!(run.threads, 2);
    }

    #[test]
    fn progress_reaches_the_totals() {
        let spec = tiny_spec();
        let progress = Progress::new(&spec);
        run_with_progress(&spec, 2, &progress);
        assert_eq!(progress.completed.load(Ordering::Relaxed), spec.vehicles);
        assert_eq!(
            progress.shards_done.load(Ordering::Relaxed),
            spec.shard_count()
        );
        assert_eq!(
            progress.partial.lock().unwrap().vehicles_accounted(),
            spec.vehicles
        );
    }
}
