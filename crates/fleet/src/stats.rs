//! Live stats endpoint for long fleet runs.
//!
//! A million-vehicle run can take minutes to hours; this module streams
//! its progress out while it goes, in the spirit of `scx_stats`: a
//! monitoring client either reads a periodically-rewritten snapshot file
//! (`--stats-file`, atomically replaced via tmp + rename) or connects to
//! a Unix domain socket (`--stats-socket`) and receives the latest
//! snapshot as one JSON document per connection.
//!
//! Snapshots are *observations* of the run, never part of its result:
//! they carry wall-clock fields and partial aggregates, while the final
//! `coefficient-fleet/1` report stays byte-identical across thread
//! counts.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crate::agg::{FleetAggregate, PPB};
use crate::exec::{run_with_progress, FleetRun, Progress};
use crate::spec::FleetSpec;

/// Where and how often to publish live snapshots.
#[derive(Debug, Clone, Default)]
pub struct StatsConfig {
    /// Rewrite this file with the latest snapshot every `every` interval.
    pub file: Option<PathBuf>,
    /// Serve the latest snapshot to each connection on this Unix socket.
    pub socket: Option<PathBuf>,
    /// Publication interval (`None` → 1 s).
    pub every: Option<Duration>,
}

impl StatsConfig {
    /// `true` when no endpoint is configured (the executor skips the
    /// stats thread entirely).
    pub fn is_disabled(&self) -> bool {
        self.file.is_none() && self.socket.is_none()
    }
}

fn quantile_fields(label: &str, agg: &FleetAggregate, p: usize) -> String {
    let pol = agg.policy(p);
    let q = |h: &metrics::LogHistogram, q: f64| h.quantile_upper_bound(q).unwrap_or(0);
    format!(
        "\"{label}\":{{\"vehicles\":{},\"unschedulable\":{},\"deadlines_missed\":{},\
         \"miss_p50_ppb\":{},\"miss_p99_ppb\":{},\"recovery_p99_ns\":{}}}",
        pol.vehicles,
        pol.unschedulable,
        pol.deadlines_missed,
        q(&pol.miss_ppb, 0.50),
        q(&pol.miss_ppb, 0.99),
        q(&pol.recovery_ns, 0.99),
    )
}

/// Renders one live snapshot (`schema: "coefficient-fleet-stats/1"`).
///
/// Hand-rolled JSON: the snapshot must be buildable from inside the
/// fleet crate (the workspace's JSON helper lives above it in `bench`),
/// and every value is a number or a registry label, so no escaping is
/// needed.
pub fn snapshot_json(spec: &FleetSpec, progress: &Progress, elapsed: Duration) -> String {
    let completed = progress.completed.load(Ordering::Relaxed);
    let secs = elapsed.as_secs_f64();
    let rate = if secs > 0.0 {
        completed as f64 / secs
    } else {
        0.0
    };
    let partial = progress.partial.lock().expect("aggregate lock poisoned");
    let per_policy: Vec<String> = partial
        .policies()
        .iter()
        .enumerate()
        .map(|(p, policy)| quantile_fields(policy.key(), &partial, p))
        .collect();
    format!(
        "{{\"schema\":\"coefficient-fleet-stats/1\",\"env\":\"{}\",\"seed\":{},\
         \"vehicles\":{},\"completed\":{},\"unschedulable_runs\":{},\
         \"shards_done\":{},\"shards\":{},\"elapsed_ms\":{},\
         \"vehicles_per_sec\":{:.1},\"miss_ppb_scale\":{},\"partial\":{{{}}}}}\n",
        spec.env.name,
        spec.seed,
        progress.total,
        completed,
        progress.unschedulable.load(Ordering::Relaxed),
        progress.shards_done.load(Ordering::Relaxed),
        progress.total_shards,
        elapsed.as_millis(),
        rate,
        PPB,
        per_policy.join(",")
    )
}

fn publish_file(path: &Path, snapshot: &str) -> std::io::Result<()> {
    // tmp + rename so a reader never observes a torn snapshot.
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, snapshot)?;
    std::fs::rename(&tmp, path)
}

fn serve_pending(listener: &std::os::unix::net::UnixListener, snapshot: &str) {
    // Drain whatever clients connected since the last tick; each gets
    // the current snapshot and an immediate close.
    while let Ok((mut conn, _)) = listener.accept() {
        let _ = conn.write_all(snapshot.as_bytes());
    }
}

fn stats_loop(spec: &FleetSpec, progress: &Progress, cfg: &StatsConfig, done: &AtomicBool) {
    let every = cfg.every.unwrap_or(Duration::from_secs(1));
    let listener = cfg.socket.as_ref().and_then(|path| {
        let _ = std::fs::remove_file(path);
        let l = std::os::unix::net::UnixListener::bind(path).ok()?;
        l.set_nonblocking(true).ok()?;
        Some(l)
    });
    let start = Instant::now();
    let mut last_publish: Option<Instant> = None; // None → publish immediately
    loop {
        let finished = done.load(Ordering::Acquire);
        if finished || last_publish.is_none_or(|t| t.elapsed() >= every) {
            let snapshot = snapshot_json(spec, progress, start.elapsed());
            if let Some(path) = &cfg.file {
                let _ = publish_file(path, &snapshot);
            }
            if let Some(l) = &listener {
                serve_pending(l, &snapshot);
            }
            last_publish = Some(Instant::now());
        }
        if finished {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    if listener.is_some() {
        if let Some(path) = &cfg.socket {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Runs `spec` on `threads` workers with a live stats endpoint attached.
///
/// Identical simulation and final aggregate to
/// [`run`](crate::exec::run) — the stats thread only observes
/// [`Progress`] — plus a final snapshot published when the run ends.
pub fn run_with_stats(spec: &FleetSpec, threads: usize, cfg: &StatsConfig) -> FleetRun {
    let progress = Progress::new(spec);
    if cfg.is_disabled() {
        return run_with_progress(spec, threads, &progress);
    }
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let stats = scope.spawn(|| stats_loop(spec, &progress, cfg, &done));
        let run = run_with_progress(spec, threads, &progress);
        done.store(true, Ordering::Release);
        stats.join().expect("stats thread panicked");
        run
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    fn tiny_spec() -> FleetSpec {
        FleetSpec {
            vehicles: 8,
            shard_size: 4,
            horizon: event_sim::SimDuration::from_millis(5),
            ..FleetSpec::default()
        }
    }

    #[test]
    fn snapshot_has_the_documented_shape() {
        let spec = tiny_spec();
        let progress = Progress::new(&spec);
        run_with_progress(&spec, 1, &progress);
        let snap = snapshot_json(&spec, &progress, Duration::from_millis(1234));
        assert!(snap.starts_with("{\"schema\":\"coefficient-fleet-stats/1\""));
        assert!(snap.contains("\"vehicles\":8"));
        assert!(snap.contains("\"completed\":8"));
        assert!(snap.contains("\"elapsed_ms\":1234"));
        assert!(snap.contains("\"coefficient\":{"));
    }

    #[test]
    fn stats_file_is_published_and_final() {
        let dir = std::env::temp_dir().join(format!("fleet-stats-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stats.json");
        let spec = tiny_spec();
        let cfg = StatsConfig {
            file: Some(path.clone()),
            socket: None,
            every: Some(Duration::from_millis(10)),
        };
        let run = run_with_stats(&spec, 2, &cfg);
        let contents = std::fs::read_to_string(&path).expect("final snapshot written");
        assert!(contents.contains("\"completed\":8"), "{contents}");
        assert_eq!(run.aggregate.vehicles_accounted(), spec.vehicles);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn socket_serves_the_latest_snapshot() {
        let dir = std::env::temp_dir().join(format!("fleet-sock-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("stats.sock");
        let spec = FleetSpec {
            vehicles: 40,
            shard_size: 4,
            horizon: event_sim::SimDuration::from_millis(5),
            ..FleetSpec::default()
        };
        let cfg = StatsConfig {
            file: None,
            socket: Some(sock.clone()),
            every: Some(Duration::from_millis(5)),
        };
        let done = AtomicBool::new(false);
        let progress = Progress::new(&spec);
        let got = std::thread::scope(|scope| {
            let stats = scope.spawn(|| stats_loop(&spec, &progress, &cfg, &done));
            // Poll the socket while the "run" (here: a short sleep loop)
            // is in flight; the listener may need a tick to come up.
            let mut got = String::new();
            for _ in 0..200 {
                if let Ok(mut conn) = std::os::unix::net::UnixStream::connect(&sock) {
                    conn.read_to_string(&mut got).unwrap();
                    if !got.is_empty() {
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            done.store(true, Ordering::Release);
            stats.join().unwrap();
            got
        });
        assert!(
            got.contains("coefficient-fleet-stats/1"),
            "socket snapshot: {got:?}"
        );
        assert!(!sock.exists(), "socket removed on shutdown");
        std::fs::remove_dir_all(&dir).ok();
    }
}
