//! Streaming, mergeable fleet aggregation.
//!
//! A fleet run never holds per-vehicle results: each completed vehicle
//! run is folded into a [`FleetAggregate`] immediately and dropped, so
//! memory is O(shards × buckets), never O(vehicles). Every field is an
//! integer counter or a [`LogHistogram`] — there is **no floating-point
//! accumulation** — so [`merge`](FleetAggregate::merge) is exactly
//! commutative and associative, and the fleet
//! [`digest`](FleetAggregate::digest) is invariant to how vehicles were sharded
//! across workers. That invariance is what lets CI `cmp` the reports of
//! `--threads 1/2/8` byte for byte.

use coefficient::{PolicyRef, RunReport};
use event_sim::rng::Digest;
use metrics::LogHistogram;

use crate::env::{Condition, CONDITIONS};

/// Parts-per-billion scale of the deadline-miss histogram: a per-vehicle
/// miss ratio `missed/total` is recorded as `missed * 1e9 / total`
/// (exact integer division via `u128`), so p99.999 fleet quantiles of
/// ratios as small as 10⁻⁹ stay resolvable in integer buckets.
pub const PPB: u64 = 1_000_000_000;

/// Mergeable per-policy aggregate of vehicle outcomes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PolicyAggregate {
    /// Vehicles whose run completed under this policy.
    pub vehicles: u64,
    /// Vehicles whose message set the policy could not schedule (no run
    /// was performed; they appear in no other counter).
    pub unschedulable: u64,
    /// Completed runs that hit the safety cycle cap before draining.
    pub truncated: u64,
    /// Vehicles per channel condition (indexed like
    /// [`CONDITIONS`]).
    pub by_condition: [u64; 3],
    /// Total instances produced across vehicles.
    pub produced: u64,
    /// Total instances delivered across vehicles.
    pub delivered: u64,
    /// Total frames transmitted across vehicles.
    pub frames: u64,
    /// Total frames corrupted by fault injection.
    pub corrupted: u64,
    /// Total deadlines met (both message classes).
    pub deadlines_met: u64,
    /// Total deadlines missed (both message classes).
    pub deadlines_missed: u64,
    /// Per-vehicle deadline-miss ratio in parts per billion (see [`PPB`]).
    pub miss_ppb: LogHistogram,
    /// Per-vehicle worst delivered-instance latency, nanoseconds — the
    /// recovery-latency proxy: how long the slowest instance (typically
    /// one that needed retransmissions to mask faults) took to get
    /// through.
    pub recovery_ns: LogHistogram,
    /// Per-vehicle mean delivered-instance latency, nanoseconds.
    pub latency_ns: LogHistogram,
    /// Commutative fold (wrapping sum) of per-vehicle contribution
    /// digests — each hashes `(vehicle, fingerprint)`, so the fold
    /// detects a vehicle simulated differently *or* attributed to the
    /// wrong index, while staying order-independent.
    digest_acc: u64,
}

impl PolicyAggregate {
    /// Folds one completed vehicle run in. Allocation-free: every path is
    /// integer arithmetic plus fixed-bucket histogram increments (the
    /// `alloc_free` test pins this).
    pub fn record(&mut self, vehicle: u64, condition: Condition, report: &RunReport) {
        self.vehicles += 1;
        self.truncated += u64::from(report.truncated);
        self.by_condition[condition.index()] += 1;
        self.produced += report.produced;
        self.delivered += report.delivered;
        self.frames += report.frames;
        self.corrupted += report.corrupted;

        let met = report.static_deadlines.met() + report.dynamic_deadlines.met();
        let missed = report.static_deadlines.missed() + report.dynamic_deadlines.missed();
        self.deadlines_met += met;
        self.deadlines_missed += missed;
        let total = met + missed;
        if total > 0 {
            let ppb = (u128::from(missed) * u128::from(PPB) / u128::from(total)) as u64;
            self.miss_ppb.record(ppb);
        }

        let worst = report
            .static_latency
            .max()
            .map_or(0, |d| d.as_nanos())
            .max(report.dynamic_latency.max().map_or(0, |d| d.as_nanos()));
        let count = report.static_latency.count() + report.dynamic_latency.count();
        if count > 0 {
            self.recovery_ns.record(worst);
            let total_ns =
                report.static_latency.total_nanos() + report.dynamic_latency.total_nanos();
            self.latency_ns
                .record((total_ns / u128::from(count)) as u64);
        }

        let mut d = Digest::new();
        d.push(vehicle);
        d.push(report.fingerprint());
        self.digest_acc = self.digest_acc.wrapping_add(d.finish());
    }

    /// Counts a vehicle the policy could not schedule.
    pub fn record_unschedulable(&mut self, vehicle: u64) {
        self.unschedulable += 1;
        // Unschedulability is an outcome too: fold it so a digest cannot
        // match between runs that disagree on which vehicles ran.
        let mut d = Digest::new();
        d.push(vehicle);
        d.push_bytes(b"unschedulable");
        self.digest_acc = self.digest_acc.wrapping_add(d.finish());
    }

    /// Merges another aggregate in. Commutative and associative: plain
    /// integer sums, histogram bucket sums, and a wrapping-sum digest
    /// fold.
    pub fn merge(&mut self, other: &PolicyAggregate) {
        self.vehicles += other.vehicles;
        self.unschedulable += other.unschedulable;
        self.truncated += other.truncated;
        for (a, b) in self.by_condition.iter_mut().zip(&other.by_condition) {
            *a += b;
        }
        self.produced += other.produced;
        self.delivered += other.delivered;
        self.frames += other.frames;
        self.corrupted += other.corrupted;
        self.deadlines_met += other.deadlines_met;
        self.deadlines_missed += other.deadlines_missed;
        self.miss_ppb.merge(&other.miss_ppb);
        self.recovery_ns.merge(&other.recovery_ns);
        self.latency_ns.merge(&other.latency_ns);
        self.digest_acc = self.digest_acc.wrapping_add(other.digest_acc);
    }

    /// Resets every counter, keeping the histogram storage (workers reuse
    /// one aggregate across shards without reallocating).
    pub fn clear(&mut self) {
        self.vehicles = 0;
        self.unschedulable = 0;
        self.truncated = 0;
        self.by_condition = [0; 3];
        self.produced = 0;
        self.delivered = 0;
        self.frames = 0;
        self.corrupted = 0;
        self.deadlines_met = 0;
        self.deadlines_missed = 0;
        self.miss_ppb.clear();
        self.recovery_ns.clear();
        self.latency_ns.clear();
        self.digest_acc = 0;
    }

    /// Folds the full contents into `d` (order-canonical: scalar fields,
    /// then each histogram's non-empty buckets).
    fn fold_digest(&self, d: &mut Digest) {
        d.push(self.vehicles);
        d.push(self.unschedulable);
        d.push(self.truncated);
        for &c in &self.by_condition {
            d.push(c);
        }
        d.push(self.produced);
        d.push(self.delivered);
        d.push(self.frames);
        d.push(self.corrupted);
        d.push(self.deadlines_met);
        d.push(self.deadlines_missed);
        for h in [&self.miss_ppb, &self.recovery_ns, &self.latency_ns] {
            d.push(h.count());
            for (idx, count) in h.iter_nonzero() {
                d.push(idx as u64);
                d.push(count);
            }
        }
        d.push(self.digest_acc);
    }

    /// Fleet-level deadline-miss ratio (total missed over total tracked).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.deadlines_met + self.deadlines_missed;
        if total == 0 {
            0.0
        } else {
            self.deadlines_missed as f64 / total as f64
        }
    }

    /// Fixed memory footprint of this aggregate (the O(buckets) term).
    pub fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.miss_ppb.footprint_bytes()
            + self.recovery_ns.footprint_bytes()
            + self.latency_ns.footprint_bytes()
            - 3 * std::mem::size_of::<LogHistogram>()
    }
}

/// The whole fleet's aggregate: one [`PolicyAggregate`] per policy, in
/// spec order.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetAggregate {
    policies: Vec<PolicyRef>,
    per_policy: Vec<PolicyAggregate>,
}

impl FleetAggregate {
    /// An empty aggregate over `policies` (spec order).
    pub fn new(policies: &[PolicyRef]) -> Self {
        FleetAggregate {
            policies: policies.to_vec(),
            per_policy: policies
                .iter()
                .map(|_| PolicyAggregate::default())
                .collect(),
        }
    }

    /// The policies this aggregate tracks, in spec order.
    pub fn policies(&self) -> &[PolicyRef] {
        &self.policies
    }

    /// The aggregate of policy index `p`.
    pub fn policy(&self, p: usize) -> &PolicyAggregate {
        &self.per_policy[p]
    }

    /// Folds one vehicle run under policy index `p` in (allocation-free).
    pub fn record(&mut self, p: usize, vehicle: u64, condition: Condition, report: &RunReport) {
        self.per_policy[p].record(vehicle, condition, report);
    }

    /// Counts an unschedulable vehicle under policy index `p`.
    pub fn record_unschedulable(&mut self, p: usize, vehicle: u64) {
        self.per_policy[p].record_unschedulable(vehicle);
    }

    /// Vehicles fully accounted for (completed or unschedulable) under
    /// the first policy — the executor's progress notion.
    pub fn vehicles_accounted(&self) -> u64 {
        self.per_policy
            .first()
            .map_or(0, |p| p.vehicles + p.unschedulable)
    }

    /// Merges `other` in (same policy list required). Commutative and
    /// associative, like every part it sums.
    ///
    /// # Panics
    /// Panics if the two aggregates track different policy lists.
    pub fn merge(&mut self, other: &FleetAggregate) {
        assert_eq!(
            self.policies.len(),
            other.policies.len(),
            "policy list mismatch"
        );
        for (a, b) in self.per_policy.iter_mut().zip(&other.per_policy) {
            a.merge(b);
        }
    }

    /// Resets every counter, keeping all storage.
    pub fn clear(&mut self) {
        for p in &mut self.per_policy {
            p.clear();
        }
    }

    /// The fleet digest: a stable 64-bit hash of the complete aggregate
    /// contents. Equal across any thread count or shard partition of the
    /// same [`FleetSpec`](crate::FleetSpec) — the determinism tests and
    /// the CI `cmp` gate rest on this value.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.push(self.policies.len() as u64);
        for (policy, agg) in self.policies.iter().zip(&self.per_policy) {
            d.push(policy.fingerprint_tag());
            agg.fold_digest(&mut d);
        }
        d.finish()
    }

    /// Fixed memory footprint (the O(policies × buckets) term of one
    /// shard's aggregate).
    pub fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .per_policy
                .iter()
                .map(PolicyAggregate::footprint_bytes)
                .sum::<usize>()
            + self.policies.capacity() * std::mem::size_of::<PolicyRef>()
    }

    /// The condition labels `by_condition` is indexed by.
    pub fn condition_labels() -> [&'static str; 3] {
        [
            CONDITIONS[0].label(),
            CONDITIONS[1].label(),
            CONDITIONS[2].label(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coefficient::{Runner, COEFFICIENT, GREEDY};

    use crate::spec::FleetSpec;

    fn tiny_report(v: u64) -> RunReport {
        let spec = FleetSpec {
            vehicles: 4,
            horizon: event_sim::SimDuration::from_millis(5),
            ..FleetSpec::default()
        };
        Runner::new(spec.vehicle_config(v, COEFFICIENT))
            .expect("schedulable")
            .run()
    }

    #[test]
    fn record_then_merge_matches_recording_into_one() {
        let policies = [COEFFICIENT, GREEDY];
        let reports: Vec<_> = (0..4).map(tiny_report).collect();
        let spec = FleetSpec::default();

        let mut whole = FleetAggregate::new(&policies);
        for (v, r) in reports.iter().enumerate() {
            let c = spec.vehicle_draw(v as u64).condition;
            whole.record(0, v as u64, c, r);
        }

        let mut left = FleetAggregate::new(&policies);
        let mut right = FleetAggregate::new(&policies);
        for (v, r) in reports.iter().enumerate() {
            let c = spec.vehicle_draw(v as u64).condition;
            if v % 2 == 0 {
                left.record(0, v as u64, c, r);
            } else {
                right.record(0, v as u64, c, r);
            }
        }
        let mut merged = left.clone();
        merged.merge(&right);
        assert_eq!(whole, merged);
        assert_eq!(whole.digest(), merged.digest());

        // And commutativity of the merge itself.
        let mut swapped = right.clone();
        swapped.merge(&left);
        assert_eq!(merged, swapped);
    }

    #[test]
    fn digest_distinguishes_vehicle_attribution() {
        let policies = [COEFFICIENT];
        let r = tiny_report(0);
        let mut a = FleetAggregate::new(&policies);
        let mut b = FleetAggregate::new(&policies);
        a.record(0, 0, Condition::Clean, &r);
        b.record(0, 1, Condition::Clean, &r);
        assert_ne!(a.digest(), b.digest(), "vehicle index must be folded in");
    }

    #[test]
    fn unschedulable_vehicles_change_the_digest() {
        let policies = [COEFFICIENT];
        let mut a = FleetAggregate::new(&policies);
        let b = FleetAggregate::new(&policies);
        a.record_unschedulable(0, 5);
        assert_eq!(a.policy(0).unschedulable, 1);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn clear_resets_to_empty() {
        let policies = [COEFFICIENT];
        let mut a = FleetAggregate::new(&policies);
        a.record(0, 0, Condition::Bursty, &tiny_report(0));
        let empty = FleetAggregate::new(&policies);
        assert_ne!(a, empty);
        a.clear();
        assert_eq!(a, empty);
    }

    #[test]
    fn footprint_is_independent_of_vehicle_count() {
        let policies = [COEFFICIENT];
        let mut a = FleetAggregate::new(&policies);
        let before = a.footprint_bytes();
        let r = tiny_report(0);
        for v in 0..1000 {
            a.record(0, v, Condition::Clean, &r);
        }
        assert_eq!(a.footprint_bytes(), before);
        // O(buckets): three ~1.9k-bucket histograms, comfortably < 96 KiB.
        assert!(before < 96 * 1024, "{before}");
    }
}
