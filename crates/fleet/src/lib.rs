//! Fleet-scale Monte Carlo over the CoEfficient simulator.
//!
//! The paper evaluates scheduling policies one cell at a time; this crate
//! asks the production-scale question: *across a million heterogeneous
//! vehicles, what is the p99.999 deadline-miss probability?* It provides:
//!
//! * [`mod@env`] — environment models ([`EnvModel`]): named distributions
//!   over per-vehicle channel quality (log-uniform BER, clean/bursty/
//!   storm condition weights), reliability goals and message-set mixes;
//! * [`FleetSpec`] — the fleet description; vehicle `v`'s entire world
//!   derives from `derive(seed, env.name, v)`, the workspace's standard
//!   seed-derivation scheme;
//! * [`agg`] — streaming aggregation ([`FleetAggregate`]): integer
//!   counters and mergeable log-scale histograms
//!   ([`metrics::LogHistogram`]) folded as each vehicle completes, so
//!   memory is O(shards × buckets), never O(vehicles), and the merge is
//!   exactly commutative and associative;
//! * [`exec`] — the sharded executor: workers claim fixed-size vehicle
//!   shards from an atomic queue; the final [`FleetAggregate::digest`]
//!   is invariant to thread count and shard size;
//! * [`stats`] — a live stats endpoint (periodic snapshot file and/or
//!   Unix socket) publishing progress and partial aggregates while the
//!   run is going.
//!
//! ```
//! use fleet::{exec, FleetSpec};
//! let spec = FleetSpec {
//!     vehicles: 20,
//!     shard_size: 8,
//!     ..FleetSpec::default()
//! };
//! let a = exec::run(&spec, 1);
//! let b = exec::run(&spec, 2);
//! assert_eq!(a.aggregate.digest(), b.aggregate.digest());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod agg;
pub mod env;
pub mod exec;
pub mod spec;
pub mod stats;

pub use agg::{FleetAggregate, PolicyAggregate, PPB};
pub use env::{env_names, Condition, EnvModel, UnknownEnv, VehicleDraw};
pub use exec::{FleetRun, Progress};
pub use spec::{FleetSpec, DEFAULT_SEED};
pub use stats::StatsConfig;
