//! Environment models: the per-vehicle distribution a fleet samples from.
//!
//! The paper evaluates one cell at a time — one message set, one BER, a
//! few seeds. A fleet question ("what is the p99.999 deadline-miss
//! probability across a million vehicles?") needs a *distribution* over
//! cells: each vehicle drives in some radio environment that determines
//! its channel quality (BER, burstiness), its reliability goal, and its
//! message-set mix. An [`EnvModel`] is that distribution; sampling it
//! with a vehicle's derived seed yields the vehicle's concrete
//! [`Scenario`] and workload parameters, deterministically.

use coefficient::{FaultModel, Scenario};
use event_sim::rng::substream;
use event_sim::SimDuration;
use rand::Rng;
use reliability::Ber;

/// The channel condition a vehicle drew: which fault-arrival model its
/// scenario uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Condition {
    /// Independent per-frame faults (the paper's Bernoulli model).
    Clean,
    /// Gilbert–Elliott bursts at the ablation intensity (50× bad state).
    Bursty,
    /// Gilbert–Elliott fault storms (1500× bad state, long bursts).
    Storm,
}

/// Every condition, in the fixed order aggregation counters use.
pub const CONDITIONS: [Condition; 3] = [Condition::Clean, Condition::Bursty, Condition::Storm];

impl Condition {
    /// Stable display label (also the condition's scenario name prefix).
    pub fn label(self) -> &'static str {
        match self {
            Condition::Clean => "clean",
            Condition::Bursty => "bursty",
            Condition::Storm => "storm",
        }
    }

    /// Index into [`CONDITIONS`]-shaped counter arrays.
    pub fn index(self) -> usize {
        match self {
            Condition::Clean => 0,
            Condition::Bursty => 1,
            Condition::Storm => 2,
        }
    }
}

/// A named distribution over per-vehicle scenarios: BER range, channel
/// condition weights, reliability-goal mix and message-set size range.
///
/// Models are compile-time constants (see [`all`]) so their names can key
/// seed derivation and CLI parsing the way scenario names do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvModel {
    /// Registry key (CLI `--env` value) and seed-derivation label.
    pub name: &'static str,
    /// One-line description for docs and error listings.
    pub description: &'static str,
    /// Smallest per-vehicle good-state BER (log-uniform draw).
    pub ber_min: f64,
    /// Largest per-vehicle good-state BER (log-uniform draw).
    pub ber_max: f64,
    /// Relative weights of [`CONDITIONS`] (clean, bursty, storm).
    pub condition_weights: [u32; 3],
    /// Percent of vehicles holding the strict γ = 10⁻⁹/h goal (the rest
    /// hold the paper's γ = 10⁻⁷/h).
    pub strict_goal_pct: u32,
    /// Smallest static message-set size a vehicle can draw.
    pub min_static_messages: u32,
    /// Largest static message-set size a vehicle can draw.
    pub max_static_messages: u32,
}

/// Mostly line-of-sight, clean channels; rare storms (e.g. toll-gate
/// interference).
pub const HIGHWAY: EnvModel = EnvModel {
    name: "highway",
    description: "clean fast roads: low BER, 2% storm exposure",
    ber_min: 1e-9,
    ber_max: 1e-7,
    condition_weights: [80, 18, 2],
    strict_goal_pct: 50,
    min_static_messages: 24,
    max_static_messages: 40,
};

/// Dense impulsive noise from ignition systems and infrastructure.
pub const URBAN: EnvModel = EnvModel {
    name: "urban",
    description: "city driving: elevated BER, frequent bursts",
    ber_min: 1e-8,
    ber_max: 1e-6,
    condition_weights: [60, 30, 10],
    strict_goal_pct: 50,
    min_static_messages: 28,
    max_static_messages: 48,
};

/// Enclosed multipath-heavy stretches; the harshest channels the fleet
/// sees.
pub const TUNNEL: EnvModel = EnvModel {
    name: "tunnel",
    description: "tunnels and garages: multipath, storm-prone",
    ber_min: 1e-7,
    ber_max: 1e-5,
    condition_weights: [30, 40, 30],
    strict_goal_pct: 50,
    min_static_messages: 24,
    max_static_messages: 40,
};

/// A whole-fleet blend — the default for fleet reports.
pub const MIXED: EnvModel = EnvModel {
    name: "mixed",
    description: "fleet-wide blend of highway/urban/tunnel exposure",
    ber_min: 1e-9,
    ber_max: 1e-6,
    condition_weights: [70, 20, 10],
    strict_goal_pct: 50,
    min_static_messages: 24,
    max_static_messages: 48,
};

/// Every registered environment model, in registry order.
pub fn all() -> &'static [EnvModel; 4] {
    &[HIGHWAY, URBAN, TUNNEL, MIXED]
}

/// Every environment-model name, in registry order — the listing
/// [`UnknownEnv`] prints, mirroring the policy/scenario registries.
pub fn env_names() -> [&'static str; 4] {
    [HIGHWAY.name, URBAN.name, TUNNEL.name, MIXED.name]
}

/// An `--env` value that [`resolve`] could not match. The `Display`
/// message lists every valid name, exactly as `UnknownPolicy` and
/// `UnknownScenario` do for their registries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownEnv {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown environment model \"{}\" (valid: {})",
            self.name,
            env_names().join(", ")
        )
    }
}

impl std::error::Error for UnknownEnv {}

/// Resolves an environment-model name (case-insensitively).
///
/// # Errors
/// Returns [`UnknownEnv`] — whose message lists every registered model —
/// when nothing matches.
pub fn resolve(name: &str) -> Result<&'static EnvModel, UnknownEnv> {
    let lower = name.to_ascii_lowercase();
    all()
        .iter()
        .find(|m| m.name == lower)
        .ok_or_else(|| UnknownEnv {
            name: name.to_string(),
        })
}

/// One vehicle's draw from an [`EnvModel`]: the concrete scenario it
/// simulates under and the size of its static message set.
#[derive(Debug, Clone, PartialEq)]
pub struct VehicleDraw {
    /// The channel condition drawn (determines the fault model).
    pub condition: Condition,
    /// The fully-built scenario (BER, γ, fault model).
    pub scenario: Scenario,
    /// Static message-set size this vehicle generates.
    pub static_messages: u32,
}

impl EnvModel {
    /// Samples one vehicle's environment from this model, deterministic
    /// in `vehicle_seed`.
    ///
    /// Draw order is fixed (condition, BER, goal, message count) and
    /// every vehicle consumes the same number of draws, so the sample is
    /// a pure function of the seed — the property shard-count invariance
    /// rests on.
    pub fn sample(&self, vehicle_seed: u64) -> VehicleDraw {
        let mut rng = substream(vehicle_seed, "fleet/env");

        let total: u32 = self.condition_weights.iter().sum();
        let mut pick = rng.gen_range(0..total);
        let mut condition = Condition::Storm;
        for (idx, &w) in self.condition_weights.iter().enumerate() {
            if pick < w {
                condition = CONDITIONS[idx];
                break;
            }
            pick -= w;
        }

        // Log-uniform BER across the model's range: radio environments
        // span orders of magnitude, so uniform-in-log is the natural
        // spread.
        let u = rng.gen::<f64>();
        let ber = (self.ber_min.ln() + u * (self.ber_max.ln() - self.ber_min.ln())).exp();
        let ber = Ber::new(ber.clamp(0.0, self.ber_max)).expect("model range keeps BER in [0,1)");

        let strict = rng.gen_range(0..100) < self.strict_goal_pct;
        let gamma = if strict { 1e-9 } else { 1e-7 };

        let static_messages = rng.gen_range(self.min_static_messages..=self.max_static_messages);

        // Scenario names are static labels per condition: fleet cells are
        // keyed by vehicle seed (not by scenario name), so vehicles
        // sharing a label never alias.
        let (name, fault_model) = match condition {
            Condition::Clean => ("fleet-clean", FaultModel::Bernoulli),
            Condition::Bursty => (
                "fleet-bursty",
                FaultModel::GilbertElliott {
                    bad_factor: 50.0,
                    p_gb: 0.002,
                    p_bg: 0.098,
                },
            ),
            Condition::Storm => (
                "fleet-storm",
                FaultModel::GilbertElliott {
                    bad_factor: 1500.0,
                    p_gb: 0.002,
                    p_bg: 0.006,
                },
            ),
        };
        let scenario = Scenario {
            name,
            ber,
            gamma,
            unit: SimDuration::from_secs(3600),
            fault_model,
            campaign: None,
        };

        VehicleDraw {
            condition,
            scenario,
            static_messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_every_name() {
        for name in env_names() {
            assert_eq!(resolve(name).unwrap().name, name);
        }
        assert_eq!(resolve("HIGHWAY").unwrap().name, "highway");
        let err = resolve("parking-lot").unwrap_err();
        assert_eq!(err.name, "parking-lot");
        let msg = err.to_string();
        assert!(msg.contains("unknown environment model \"parking-lot\""));
        for name in env_names() {
            assert!(msg.contains(name), "{msg} missing {name}");
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = MIXED.sample(42);
        let b = MIXED.sample(42);
        assert_eq!(a, b);
        assert_ne!(MIXED.sample(42), MIXED.sample(43));
    }

    #[test]
    fn samples_respect_the_model_ranges() {
        for model in all() {
            for v in 0..500u64 {
                let draw = model.sample(v * 7 + 1);
                assert!(
                    draw.scenario.ber.rate() >= model.ber_min * 0.999,
                    "{draw:?}"
                );
                assert!(
                    draw.scenario.ber.rate() <= model.ber_max * 1.001,
                    "{draw:?}"
                );
                assert!(
                    (draw.static_messages >= model.min_static_messages)
                        && (draw.static_messages <= model.max_static_messages)
                );
                assert!(draw.scenario.gamma == 1e-7 || draw.scenario.gamma == 1e-9);
                assert!(draw.scenario.name.starts_with("fleet-"));
            }
        }
    }

    #[test]
    fn condition_mix_tracks_the_weights() {
        let mut counts = [0u64; 3];
        let n = 4000u64;
        for v in 0..n {
            counts[MIXED.sample(v).condition.index()] += 1;
        }
        // 70/20/10 within loose tolerance.
        assert!(counts[0] > counts[1] && counts[1] > counts[2], "{counts:?}");
        assert!(
            (counts[0] as f64 / n as f64 - 0.70).abs() < 0.05,
            "{counts:?}"
        );
        assert!(
            (counts[2] as f64 / n as f64 - 0.10).abs() < 0.05,
            "{counts:?}"
        );
    }

    #[test]
    fn storm_draws_use_the_storm_intensity() {
        let storm = (0..2000u64)
            .map(|v| TUNNEL.sample(v))
            .find(|d| d.condition == Condition::Storm)
            .expect("tunnel draws storms 30% of the time");
        let FaultModel::GilbertElliott { bad_factor, .. } = storm.scenario.fault_model else {
            panic!("storm must be Gilbert–Elliott");
        };
        assert_eq!(bad_factor, 1500.0);
        assert_eq!(storm.scenario.name, "fleet-storm");
    }
}
