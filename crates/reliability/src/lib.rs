//! Transient-fault reliability analysis for FlexRay communications.
//!
//! This crate implements §III-E and §III-F of the CoEfficient paper:
//!
//! * [`Ber`] — bit-error-rate model; per-message failure probability
//!   `p_z = 1 − (1 − BER)^{W_z}` for a message of `W_z` bits;
//! * [`SilLevel`] — the IEC 61508 safety-integrity levels, from which the
//!   maximum system failure probability γ over a time unit *u* and the
//!   reliability goal ρ = 1 − γ are derived;
//! * [`success_probability`] — **Theorem 1**: the probability that all
//!   message deadlines are met over a time unit,
//!   `∏_z (1 − p_z^{k_z+1})^{u / T_z}`;
//! * [`RetransmissionPlanner`] — the *differentiated retransmission*
//!   optimizer: chooses the per-message retransmission counts `k_z` that
//!   reach a reliability goal at minimum bandwidth cost (vs. the uniform
//!   best-effort baseline);
//! * [`fault`] — stochastic fault processes used by the bus simulator:
//!   independent per-frame Bernoulli faults and a bursty Gilbert–Elliott
//!   extension;
//! * [`campaign`] — *scripted* fault-injection campaigns: typed
//!   disturbance timelines (blackouts, BER spikes, babbling bursts,
//!   sensor dropout) decorating any stochastic process, for deterministic
//!   recovery experiments;
//! * [`monitor`] — the *online* counterpart of the offline plan: an
//!   EWMA-over-fault-windows [`ReliabilityMonitor`](monitor::ReliabilityMonitor)
//!   that classifies a channel as `Nominal`/`Stressed`/`Storm` with
//!   hysteresis, driving degraded-mode scheduling and channel failover.
//!
//! # Example: planning retransmissions for a reliability goal
//!
//! ```
//! use reliability::{Ber, MessageReliability, RetransmissionPlanner};
//! use event_sim::SimDuration;
//!
//! let ber = Ber::new(1e-7).unwrap();
//! let msgs = vec![
//!     MessageReliability::from_ber(0, 1024, SimDuration::from_millis(10), ber),
//!     MessageReliability::from_ber(1, 256, SimDuration::from_millis(50), ber),
//! ];
//! let plan = RetransmissionPlanner::new(msgs)
//!     .unit(SimDuration::from_secs(3600))
//!     .plan_for_goal(0.999_999)
//!     .unwrap();
//! assert!(plan.success_probability() >= 0.999_999);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ber;
pub mod campaign;
pub mod fault;
mod message;
pub mod monitor;
mod plan;
mod sil;
mod theorem;

pub use ber::{Ber, BerOutOfRange};
pub use message::MessageReliability;
pub use plan::{PlanError, RetransmissionPlan, RetransmissionPlanner};
pub use sil::SilLevel;
pub use theorem::{
    instance_success_log, log_success_probability, message_success_log, success_probability,
};
