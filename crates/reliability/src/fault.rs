//! Stochastic fault processes.
//!
//! The bus simulator asks a fault process, per transmitted frame, whether a
//! transient fault corrupted it. Two models are provided:
//!
//! * [`BernoulliFaults`] — the paper's model: each frame of `W` bits is
//!   corrupted independently with `p = 1 − (1 − BER)^W`;
//! * [`GilbertElliott`] — a bursty two-state extension (good/bad channel
//!   states with different BERs), modelling the temperature/interference
//!   bursts the paper attributes transient faults to.
//!
//! Both are deterministic under a seed, via [`event_sim::rng::substream`].

use rand::rngs::SmallRng;
use rand::Rng;

use event_sim::rng::substream;

use crate::ber::Ber;

/// Cumulative fault-injection counters a [`FaultProcess`] maintains.
///
/// `faults_injected` counts frames the process corrupted; recovery
/// accounting (how many corrupted *instances* were still delivered via
/// planned retransmissions) lives with the instance tracker, because a
/// fault process cannot know whether a later copy succeeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// Frames this process was consulted about.
    pub frames_checked: u64,
    /// Frames it decided to corrupt.
    pub faults_injected: u64,
}

impl FaultCounters {
    /// Field-wise sum of two counter sets (e.g. across channels).
    #[must_use]
    pub fn merged(self, other: FaultCounters) -> FaultCounters {
        FaultCounters {
            frames_checked: self.frames_checked + other.frames_checked,
            faults_injected: self.faults_injected + other.faults_injected,
        }
    }
}

/// A source of per-frame transient faults.
///
/// Implementations are stateful (they own an RNG and possibly a channel
/// state) and deterministic under their construction seed.
pub trait FaultProcess: std::fmt::Debug + Send {
    /// Returns `true` if a frame of `bits` bits transmitted now is
    /// corrupted.
    fn corrupts(&mut self, bits: u32) -> bool;

    /// The long-run probability that a frame of `bits` bits is corrupted
    /// (used by analysis code; need not be exact for bursty models).
    fn frame_failure_probability(&self, bits: u32) -> f64;

    /// Cumulative injection counters. Every process must count
    /// `frames_checked` on each [`corrupts`](Self::corrupts) consultation
    /// — even fault-free ones like [`NoFaults`] — so that counter diffs
    /// (golden verify) and the reliability monitor see the same frame
    /// totals regardless of the fault model.
    fn counters(&self) -> FaultCounters;

    /// Whether the process is currently inside a correlated fault burst.
    ///
    /// Memoryless models keep the default `false`; bursty models
    /// ([`GilbertElliott`]'s bad state, a struck [`ChannelOutage`])
    /// override it. Purely observational — the bus tracer uses it to tag
    /// fault-hit events — and must not mutate state.
    fn in_burst(&self) -> bool {
        false
    }
}

/// Independent per-frame Bernoulli faults derived from a bit error rate.
///
/// ```
/// use reliability::{Ber, fault::{BernoulliFaults, FaultProcess}};
/// let mut f = BernoulliFaults::new(Ber::new(0.5).unwrap(), 42);
/// // With BER=0.5 a long frame is corrupted essentially always.
/// assert!(f.corrupts(1_000));
/// ```
#[derive(Debug)]
pub struct BernoulliFaults {
    ber: Ber,
    rng: SmallRng,
    counters: FaultCounters,
}

impl BernoulliFaults {
    /// Creates the process with the given BER and seed.
    pub fn new(ber: Ber, seed: u64) -> Self {
        BernoulliFaults {
            ber,
            rng: substream(seed, "fault/bernoulli"),
            counters: FaultCounters::default(),
        }
    }

    /// The underlying bit error rate.
    pub fn ber(&self) -> Ber {
        self.ber
    }
}

impl FaultProcess for BernoulliFaults {
    fn corrupts(&mut self, bits: u32) -> bool {
        let p = self.ber.frame_failure_probability(bits);
        let hit = p > 0.0 && self.rng.gen::<f64>() < p;
        self.counters.frames_checked += 1;
        self.counters.faults_injected += u64::from(hit);
        hit
    }

    fn frame_failure_probability(&self, bits: u32) -> f64 {
        self.ber.frame_failure_probability(bits)
    }

    fn counters(&self) -> FaultCounters {
        self.counters
    }
}

/// A two-state Gilbert–Elliott burst-fault channel.
///
/// The channel alternates between a *good* state (low BER) and a *bad*
/// state (high BER). After each frame, it switches state with the
/// configured transition probabilities. This produces the temporally
/// correlated fault bursts seen under real EMI/temperature events, which
/// the independent Bernoulli model cannot express.
#[derive(Debug)]
pub struct GilbertElliott {
    good_ber: Ber,
    bad_ber: Ber,
    /// P(good → bad) after a frame.
    p_gb: f64,
    /// P(bad → good) after a frame.
    p_bg: f64,
    in_bad: bool,
    rng: SmallRng,
    counters: FaultCounters,
}

impl GilbertElliott {
    /// Creates the channel in the good state.
    ///
    /// # Panics
    /// Panics if either transition probability is outside `[0, 1]`.
    pub fn new(good_ber: Ber, bad_ber: Ber, p_gb: f64, p_bg: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p_gb), "p_gb out of range");
        assert!((0.0..=1.0).contains(&p_bg), "p_bg out of range");
        GilbertElliott {
            good_ber,
            bad_ber,
            p_gb,
            p_bg,
            in_bad: false,
            rng: substream(seed, "fault/gilbert-elliott"),
            counters: FaultCounters::default(),
        }
    }

    /// Whether the channel is currently in the bad state.
    pub fn is_in_bad_state(&self) -> bool {
        self.in_bad
    }

    /// Long-run fraction of time spent in the bad state:
    /// `p_gb / (p_gb + p_bg)` (0 if both transition probabilities are 0).
    pub fn stationary_bad_fraction(&self) -> f64 {
        let denom = self.p_gb + self.p_bg;
        if denom == 0.0 {
            0.0
        } else {
            self.p_gb / denom
        }
    }
}

impl FaultProcess for GilbertElliott {
    fn corrupts(&mut self, bits: u32) -> bool {
        let ber = if self.in_bad {
            self.bad_ber
        } else {
            self.good_ber
        };
        let p = ber.frame_failure_probability(bits);
        let hit = p > 0.0 && self.rng.gen::<f64>() < p;
        self.counters.frames_checked += 1;
        self.counters.faults_injected += u64::from(hit);
        // State transition after the frame.
        let flip = if self.in_bad { self.p_bg } else { self.p_gb };
        if self.rng.gen::<f64>() < flip {
            self.in_bad = !self.in_bad;
        }
        hit
    }

    fn frame_failure_probability(&self, bits: u32) -> f64 {
        let pb = self.stationary_bad_fraction();
        pb * self.bad_ber.frame_failure_probability(bits)
            + (1.0 - pb) * self.good_ber.frame_failure_probability(bits)
    }

    fn counters(&self) -> FaultCounters {
        self.counters
    }

    fn in_burst(&self) -> bool {
        self.in_bad
    }
}

/// A fault process that never corrupts anything (fault-free runs).
///
/// It still counts every consultation in `frames_checked`, so fault-free
/// and faulty runs report comparable frame totals.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults {
    frames_checked: u64,
}

impl NoFaults {
    /// Creates the process with zeroed counters.
    pub fn new() -> Self {
        NoFaults::default()
    }
}

impl FaultProcess for NoFaults {
    fn corrupts(&mut self, _bits: u32) -> bool {
        self.frames_checked += 1;
        false
    }

    fn frame_failure_probability(&self, _bits: u32) -> f64 {
        0.0
    }

    fn counters(&self) -> FaultCounters {
        FaultCounters {
            frames_checked: self.frames_checked,
            faults_injected: 0,
        }
    }
}

/// A *permanent* fault: the channel behaves like `base` until the
/// `outage_after`-th frame, then corrupts everything — a severed wire or a
/// dead driver (the paper's "physical damages generally cause the
/// permanent faults", §I). Used to demonstrate dual-channel failover.
#[derive(Debug)]
pub struct ChannelOutage<P> {
    base: P,
    outage_after: u64,
    frames_seen: u64,
    injected: u64,
}

impl<P: FaultProcess> ChannelOutage<P> {
    /// Wraps `base`; frames with index ≥ `outage_after` are corrupted
    /// unconditionally.
    pub fn new(base: P, outage_after: u64) -> Self {
        ChannelOutage {
            base,
            outage_after,
            frames_seen: 0,
            injected: 0,
        }
    }

    /// `true` once the permanent fault has struck.
    pub fn is_down(&self) -> bool {
        self.frames_seen >= self.outage_after
    }
}

impl<P: FaultProcess> FaultProcess for ChannelOutage<P> {
    fn corrupts(&mut self, bits: u32) -> bool {
        let down = self.is_down();
        self.frames_seen += 1;
        let hit = if down { true } else { self.base.corrupts(bits) };
        self.injected += u64::from(hit);
        hit
    }

    fn frame_failure_probability(&self, bits: u32) -> f64 {
        if self.is_down() {
            1.0
        } else {
            self.base.frame_failure_probability(bits)
        }
    }

    fn counters(&self) -> FaultCounters {
        // Count frames and injections at this layer (the base is only
        // consulted while the channel is up, so its own counters under-
        // report once the outage strikes).
        FaultCounters {
            frames_checked: self.frames_seen,
            faults_injected: self.injected,
        }
    }

    fn in_burst(&self) -> bool {
        self.is_down() || self.base.in_burst()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_frequency_matches_probability() {
        let ber = Ber::new(1e-3).unwrap();
        let mut f = BernoulliFaults::new(ber, 1);
        let bits = 1000; // p ≈ 0.632
        let p = f.frame_failure_probability(bits);
        let trials = 20_000;
        let hits = (0..trials).filter(|_| f.corrupts(bits)).count();
        let freq = hits as f64 / trials as f64;
        assert!((freq - p).abs() < 0.02, "freq {freq} vs p {p}");
    }

    #[test]
    fn bernoulli_is_deterministic_under_seed() {
        let ber = Ber::new(1e-2).unwrap();
        let mut a = BernoulliFaults::new(ber, 9);
        let mut b = BernoulliFaults::new(ber, 9);
        for _ in 0..256 {
            assert_eq!(a.corrupts(500), b.corrupts(500));
        }
    }

    #[test]
    fn zero_ber_never_corrupts() {
        let mut f = BernoulliFaults::new(Ber::ZERO, 3);
        assert!((0..1000).all(|_| !f.corrupts(10_000)));
    }

    #[test]
    fn no_faults_process() {
        let mut f = NoFaults::new();
        assert!(!f.corrupts(u32::MAX));
        assert_eq!(f.frame_failure_probability(123), 0.0);
        // Consultations are counted even though nothing is ever corrupted.
        assert!(!f.corrupts(1));
        assert_eq!(
            f.counters(),
            FaultCounters {
                frames_checked: 2,
                faults_injected: 0,
            }
        );
    }

    #[test]
    fn in_burst_tracks_burst_state() {
        let mut quiet = BernoulliFaults::new(Ber::ZERO, 1);
        assert!(!quiet.in_burst(), "memoryless models are never in a burst");
        let _ = quiet.corrupts(100);
        assert!(!quiet.in_burst());

        let mut ge = GilbertElliott::new(Ber::ZERO, Ber::ZERO, 0.5, 0.5, 5);
        let mut matched = true;
        for _ in 0..200 {
            let _ = ge.corrupts(100);
            matched &= ge.in_burst() == ge.is_in_bad_state();
        }
        assert!(matched, "in_burst mirrors the bad state");

        let mut outage = ChannelOutage::new(NoFaults::new(), 1);
        assert!(!outage.in_burst());
        let _ = outage.corrupts(100);
        assert!(outage.in_burst(), "a struck outage reports a burst");
    }

    #[test]
    fn gilbert_elliott_visits_both_states() {
        let g = Ber::new(1e-9).unwrap();
        let b = Ber::new(1e-3).unwrap();
        let mut ch = GilbertElliott::new(g, b, 0.1, 0.3, 5);
        let mut saw_bad = false;
        let mut saw_good = false;
        for _ in 0..1000 {
            let _ = ch.corrupts(100);
            if ch.is_in_bad_state() {
                saw_bad = true;
            } else {
                saw_good = true;
            }
        }
        assert!(saw_bad && saw_good);
    }

    #[test]
    fn gilbert_elliott_stationary_fraction() {
        let g = Ber::ZERO;
        let b = Ber::ZERO;
        let ch = GilbertElliott::new(g, b, 0.1, 0.3, 0);
        assert!((ch.stationary_bad_fraction() - 0.25).abs() < 1e-12);
        let frozen = GilbertElliott::new(g, b, 0.0, 0.0, 0);
        assert_eq!(frozen.stationary_bad_fraction(), 0.0);
    }

    #[test]
    fn gilbert_elliott_bursts_are_correlated() {
        // With sticky states, consecutive frames should correlate: count
        // runs of faults and compare to an independent process with the
        // same marginal probability. We just sanity-check that the bad
        // state produces a much higher local fault rate.
        let g = Ber::ZERO;
        let b = Ber::new(0.01).unwrap();
        let mut ch = GilbertElliott::new(g, b, 0.01, 0.01, 11);
        let mut faults_in_bad = 0u32;
        let mut frames_in_bad = 0u32;
        let mut faults_in_good = 0u32;
        let mut frames_in_good = 0u32;
        for _ in 0..50_000 {
            let in_bad = ch.is_in_bad_state();
            let hit = ch.corrupts(200);
            if in_bad {
                frames_in_bad += 1;
                faults_in_bad += u32::from(hit);
            } else {
                frames_in_good += 1;
                faults_in_good += u32::from(hit);
            }
        }
        assert_eq!(faults_in_good, 0, "good state has BER 0");
        assert!(frames_in_good > 0 && frames_in_bad > 0);
        assert!(faults_in_bad > 0, "bad state must produce faults");
    }

    #[test]
    fn counters_track_checks_and_injections() {
        let ber = Ber::new(0.9).unwrap();
        let mut f = BernoulliFaults::new(ber, 1);
        let mut observed = 0u64;
        for _ in 0..100 {
            observed += u64::from(f.corrupts(10_000));
        }
        assert_eq!(f.counters().frames_checked, 100);
        assert_eq!(f.counters().faults_injected, observed);
        assert!(observed > 0, "BER 0.9 on long frames must corrupt");

        let mut ge = GilbertElliott::new(Ber::ZERO, Ber::new(0.5).unwrap(), 0.5, 0.5, 7);
        let mut hits = 0u64;
        for _ in 0..200 {
            hits += u64::from(ge.corrupts(1_000));
        }
        assert_eq!(ge.counters().frames_checked, 200);
        assert_eq!(ge.counters().faults_injected, hits);

        let mut outage = ChannelOutage::new(NoFaults::new(), 2);
        let _ = outage.corrupts(1);
        let _ = outage.corrupts(1);
        let _ = outage.corrupts(1);
        let _ = outage.corrupts(1);
        assert_eq!(
            outage.counters(),
            FaultCounters {
                frames_checked: 4,
                faults_injected: 2,
            }
        );

        let mut quiet = NoFaults::new();
        assert!(!quiet.corrupts(64));
        assert_eq!(quiet.counters().frames_checked, 1);
        assert_eq!(quiet.counters().faults_injected, 0);
        let merged = f.counters().merged(ge.counters());
        assert_eq!(merged.frames_checked, 300);
        assert_eq!(merged.faults_injected, observed + hits);
    }

    #[test]
    fn channel_outage_kills_after_threshold() {
        let mut ch = ChannelOutage::new(NoFaults::new(), 3);
        assert!(!ch.is_down());
        assert!(!ch.corrupts(100)); // frame 0
        assert!(!ch.corrupts(100)); // frame 1
        assert!(!ch.corrupts(100)); // frame 2
        assert!(ch.is_down());
        assert!(ch.corrupts(100)); // frame 3: dead
        assert!(ch.corrupts(1));
        assert_eq!(ch.frame_failure_probability(100), 1.0);
    }

    #[test]
    fn channel_outage_passes_base_faults_through_before_dying() {
        let ber = Ber::new(0.9).unwrap();
        let mut ch = ChannelOutage::new(BernoulliFaults::new(ber, 1), 1000);
        // Base process corrupts long frames nearly always.
        assert!(ch.corrupts(10_000));
        assert!(!ch.is_down());
        assert!(
            (ch.frame_failure_probability(100) - ber.frame_failure_probability(100)).abs() < 1e-12
        );
    }

    #[test]
    fn outage_at_zero_is_dead_from_the_start() {
        let mut ch = ChannelOutage::new(NoFaults::new(), 0);
        assert!(ch.is_down());
        assert!(ch.corrupts(1));
    }

    #[test]
    #[should_panic(expected = "p_gb out of range")]
    fn ge_rejects_bad_probability() {
        let _ = GilbertElliott::new(Ber::ZERO, Ber::ZERO, 1.5, 0.1, 0);
    }
}
