//! Stochastic fault processes.
//!
//! The bus simulator asks a fault process, per transmitted frame, whether a
//! transient fault corrupted it. Two models are provided:
//!
//! * [`BernoulliFaults`] — the paper's model: each frame of `W` bits is
//!   corrupted independently with `p = 1 − (1 − BER)^W`;
//! * [`GilbertElliott`] — a bursty two-state extension (good/bad channel
//!   states with different BERs), modelling the temperature/interference
//!   bursts the paper attributes transient faults to.
//!
//! Both are deterministic under a seed, via [`event_sim::rng::substream`].

use rand::rngs::SmallRng;
use rand::Rng;

use event_sim::rng::substream;

use crate::ber::Ber;
use crate::campaign::CampaignCounters;

/// Number of distinct frame sizes memoised per fault process.
///
/// A FlexRay run sees only a handful of wire sizes (one per payload length
/// in the message set, plus the dynamic-segment fits), so a small
/// direct-mapped table covers the steady state; overflow evicts round-robin
/// rather than allocating.
const FRAME_PROB_SLOTS: usize = 8;

/// Exact memo of [`Ber::frame_failure_probability`] for one bit error rate.
///
/// `ln(1 − BER)` is precomputed once and each distinct `bits` value pays
/// the `exp_m1` only on first sight, so the per-frame hot path is a table
/// probe. The cached value is produced by the *same expression* as the
/// uncached one — `-exp_m1(bits · ln_1p(−BER))` — so results are
/// bit-identical and golden digests are unaffected.
#[derive(Debug, Clone)]
struct FrameProbCache {
    rate: f64,
    ln1p_neg_rate: f64,
    entries: [(u32, f64); FRAME_PROB_SLOTS],
    len: usize,
    next_evict: usize,
}

impl FrameProbCache {
    fn new(ber: Ber) -> Self {
        FrameProbCache {
            rate: ber.rate(),
            ln1p_neg_rate: f64::ln_1p(-ber.rate()),
            entries: [(0, 0.0); FRAME_PROB_SLOTS],
            len: 0,
            next_evict: 0,
        }
    }

    #[inline]
    fn probability(&mut self, bits: u32) -> f64 {
        if self.rate == 0.0 || bits == 0 {
            return 0.0;
        }
        for &(b, p) in &self.entries[..self.len] {
            if b == bits {
                return p;
            }
        }
        let p = -f64::exp_m1(f64::from(bits) * self.ln1p_neg_rate);
        if self.len < FRAME_PROB_SLOTS {
            self.entries[self.len] = (bits, p);
            self.len += 1;
        } else {
            self.entries[self.next_evict] = (bits, p);
            self.next_evict = (self.next_evict + 1) % FRAME_PROB_SLOTS;
        }
        p
    }
}

/// Hit pattern returned by a batched per-segment fault draw.
///
/// Bit `i` of `mask` is set iff the `i`-th frame of the batch was
/// corrupted; batches are therefore limited to 64 frames, which comfortably
/// covers a FlexRay segment (≤ 60 static slots, ≤ 64 minislot frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHits {
    /// Per-frame corruption bitmask (frame `i` ↔ bit `i`).
    pub mask: u64,
    /// Number of frames covered by the batch.
    pub frames: u32,
}

impl SegmentHits {
    /// A batch of `frames` frames, none corrupted.
    #[must_use]
    pub fn clear(frames: u32) -> Self {
        SegmentHits { mask: 0, frames }
    }

    /// Whether frame `i` of the batch was corrupted.
    #[must_use]
    pub fn hit(&self, i: u32) -> bool {
        debug_assert!(i < self.frames);
        self.mask >> i & 1 == 1
    }

    /// Number of corrupted frames in the batch.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.mask.count_ones()
    }
}

/// Cumulative fault-injection counters a [`FaultProcess`] maintains.
///
/// `faults_injected` counts frames the process corrupted; recovery
/// accounting (how many corrupted *instances* were still delivered via
/// planned retransmissions) lives with the instance tracker, because a
/// fault process cannot know whether a later copy succeeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// Frames this process was consulted about.
    pub frames_checked: u64,
    /// Frames it decided to corrupt.
    pub faults_injected: u64,
}

impl FaultCounters {
    /// Field-wise sum of two counter sets (e.g. across channels).
    #[must_use]
    pub fn merged(self, other: FaultCounters) -> FaultCounters {
        FaultCounters {
            frames_checked: self.frames_checked + other.frames_checked,
            faults_injected: self.faults_injected + other.faults_injected,
        }
    }
}

/// A source of per-frame transient faults.
///
/// Implementations are stateful (they own an RNG and possibly a channel
/// state) and deterministic under their construction seed.
pub trait FaultProcess: std::fmt::Debug + Send {
    /// Returns `true` if a frame of `bits` bits transmitted now is
    /// corrupted.
    fn corrupts(&mut self, bits: u32) -> bool;

    /// The long-run probability that a frame of `bits` bits is corrupted
    /// (used by analysis code; need not be exact for bursty models).
    fn frame_failure_probability(&self, bits: u32) -> f64;

    /// Cumulative injection counters. Every process must count
    /// `frames_checked` on each [`corrupts`](Self::corrupts) consultation
    /// — even fault-free ones like [`NoFaults`] — so that counter diffs
    /// (golden verify) and the reliability monitor see the same frame
    /// totals regardless of the fault model.
    fn counters(&self) -> FaultCounters;

    /// Whether the process is currently inside a correlated fault burst.
    ///
    /// Memoryless models keep the default `false`; bursty models
    /// ([`GilbertElliott`]'s bad state, an active
    /// [`crate::campaign::CampaignFaults`] disturbance) override it.
    /// Purely observational — the bus tracer uses it to tag fault-hit
    /// events — and must not mutate state.
    fn in_burst(&self) -> bool {
        false
    }

    /// Announces the start of communication cycle `cycle`.
    ///
    /// The bus engine calls this once per channel before running the
    /// cycle's segments, giving scripted processes
    /// ([`crate::campaign::CampaignFaults`]) a deterministic cycle clock.
    /// The default is a no-op — stochastic processes are clockless, and
    /// the hook must never draw from the RNG or touch counters, so
    /// enabling it engine-wide cannot move golden digests.
    fn on_cycle_start(&mut self, cycle: u64) {
        let _ = cycle;
    }

    /// Campaign-layer counters, when this process is (or wraps) a
    /// scripted [`crate::campaign::CampaignFaults`] decorator; `None` for
    /// plain stochastic processes.
    fn campaign_counters(&self) -> Option<CampaignCounters> {
        None
    }

    /// Draws faults for a batch of `frames` equal-sized frames at once.
    ///
    /// The default implementation loops [`corrupts`](Self::corrupts), so it
    /// is RNG-stream-identical to per-frame consultation by construction.
    /// Implementations may override it to amortise work across the batch
    /// (see [`BernoulliFaults`]) but must consume the RNG stream exactly as
    /// the per-frame loop would: digests of runs that interleave batched
    /// and per-frame draws are part of the golden contract.
    ///
    /// # Panics
    /// Panics in debug builds if `frames > 64` (the mask width).
    fn corrupts_run(&mut self, bits: u32, frames: u32) -> SegmentHits {
        debug_assert!(frames <= 64, "batch wider than the hit mask");
        let mut mask = 0u64;
        for i in 0..frames {
            mask |= u64::from(self.corrupts(bits)) << i;
        }
        SegmentHits { mask, frames }
    }
}

/// Independent per-frame Bernoulli faults derived from a bit error rate.
///
/// ```
/// use reliability::{Ber, fault::{BernoulliFaults, FaultProcess}};
/// let mut f = BernoulliFaults::new(Ber::new(0.5).unwrap(), 42);
/// // With BER=0.5 a long frame is corrupted essentially always.
/// assert!(f.corrupts(1_000));
/// ```
#[derive(Debug)]
pub struct BernoulliFaults {
    ber: Ber,
    prob: FrameProbCache,
    rng: SmallRng,
    counters: FaultCounters,
}

impl BernoulliFaults {
    /// Creates the process with the given BER and seed.
    pub fn new(ber: Ber, seed: u64) -> Self {
        BernoulliFaults {
            ber,
            prob: FrameProbCache::new(ber),
            rng: substream(seed, "fault/bernoulli"),
            counters: FaultCounters::default(),
        }
    }

    /// The underlying bit error rate.
    pub fn ber(&self) -> Ber {
        self.ber
    }

    /// Batched draw via geometric gap sampling: one draw per *fault* plus
    /// one overshoot draw, instead of one per frame — the low-BER fast
    /// path (p ≈ 1e-4 means one draw per ~10 000 frames).
    ///
    /// Distribution-equivalent to `frames` independent Bernoulli(p) trials
    /// but **not** RNG-stream-compatible with
    /// [`corrupts`](FaultProcess::corrupts): it consumes a
    /// different number of uniforms, so mixing it with per-frame draws on
    /// the same process changes every later draw. Golden-path code must use
    /// [`corrupts_run`](FaultProcess::corrupts_run); this sampler is for
    /// throughput studies and is validated against the per-frame process by
    /// the distribution property tests.
    pub fn corrupts_run_geometric(&mut self, bits: u32, frames: u32) -> SegmentHits {
        debug_assert!(frames <= 64, "batch wider than the hit mask");
        self.counters.frames_checked += u64::from(frames);
        let p = self.prob.probability(bits);
        if p <= 0.0 || frames == 0 {
            return SegmentHits::clear(frames);
        }
        let mut mask = 0u64;
        if p >= 1.0 {
            mask = u64::MAX >> (64 - frames);
        } else {
            // Gap between hits is Geometric(p): k = ⌊ln U / ln(1−p)⌋ with
            // U uniform on (0, 1].
            let ln_q = f64::ln_1p(-p);
            let mut i = 0u64;
            loop {
                let u = 1.0 - self.rng.gen::<f64>();
                // Saturating cast: an enormous gap simply ends the batch.
                let gap = (u.ln() / ln_q).floor() as u64;
                i = i.saturating_add(gap);
                if i >= u64::from(frames) {
                    break;
                }
                mask |= 1 << i;
                i += 1;
            }
        }
        self.counters.faults_injected += u64::from(mask.count_ones());
        SegmentHits { mask, frames }
    }
}

impl FaultProcess for BernoulliFaults {
    fn corrupts(&mut self, bits: u32) -> bool {
        let p = self.prob.probability(bits);
        let hit = p > 0.0 && self.rng.gen::<f64>() < p;
        self.counters.frames_checked += 1;
        self.counters.faults_injected += u64::from(hit);
        hit
    }

    fn frame_failure_probability(&self, bits: u32) -> f64 {
        self.ber.frame_failure_probability(bits)
    }

    fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Stream-identical batched draw: one cache probe for the whole batch,
    /// and a `p == 0` batch short-circuits without touching the RNG —
    /// exactly as `frames` per-frame calls would (the per-frame path only
    /// draws when `p > 0`).
    fn corrupts_run(&mut self, bits: u32, frames: u32) -> SegmentHits {
        debug_assert!(frames <= 64, "batch wider than the hit mask");
        self.counters.frames_checked += u64::from(frames);
        let p = self.prob.probability(bits);
        if p <= 0.0 {
            return SegmentHits::clear(frames);
        }
        let mut mask = 0u64;
        for i in 0..frames {
            mask |= u64::from(self.rng.gen::<f64>() < p) << i;
        }
        self.counters.faults_injected += u64::from(mask.count_ones());
        SegmentHits { mask, frames }
    }
}

/// A two-state Gilbert–Elliott burst-fault channel.
///
/// The channel alternates between a *good* state (low BER) and a *bad*
/// state (high BER). After each frame, it switches state with the
/// configured transition probabilities. This produces the temporally
/// correlated fault bursts seen under real EMI/temperature events, which
/// the independent Bernoulli model cannot express.
#[derive(Debug)]
pub struct GilbertElliott {
    good_ber: Ber,
    bad_ber: Ber,
    good_prob: FrameProbCache,
    bad_prob: FrameProbCache,
    /// P(good → bad) after a frame.
    p_gb: f64,
    /// P(bad → good) after a frame.
    p_bg: f64,
    in_bad: bool,
    rng: SmallRng,
    counters: FaultCounters,
}

impl GilbertElliott {
    /// Creates the channel in the good state.
    ///
    /// # Panics
    /// Panics if either transition probability is outside `[0, 1]`.
    pub fn new(good_ber: Ber, bad_ber: Ber, p_gb: f64, p_bg: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p_gb), "p_gb out of range");
        assert!((0.0..=1.0).contains(&p_bg), "p_bg out of range");
        GilbertElliott {
            good_ber,
            bad_ber,
            good_prob: FrameProbCache::new(good_ber),
            bad_prob: FrameProbCache::new(bad_ber),
            p_gb,
            p_bg,
            in_bad: false,
            rng: substream(seed, "fault/gilbert-elliott"),
            counters: FaultCounters::default(),
        }
    }

    /// Whether the channel is currently in the bad state.
    pub fn is_in_bad_state(&self) -> bool {
        self.in_bad
    }

    /// Long-run fraction of time spent in the bad state:
    /// `p_gb / (p_gb + p_bg)` (0 if both transition probabilities are 0).
    pub fn stationary_bad_fraction(&self) -> f64 {
        let denom = self.p_gb + self.p_bg;
        if denom == 0.0 {
            0.0
        } else {
            self.p_gb / denom
        }
    }
}

impl FaultProcess for GilbertElliott {
    fn corrupts(&mut self, bits: u32) -> bool {
        let p = if self.in_bad {
            self.bad_prob.probability(bits)
        } else {
            self.good_prob.probability(bits)
        };
        let hit = p > 0.0 && self.rng.gen::<f64>() < p;
        self.counters.frames_checked += 1;
        self.counters.faults_injected += u64::from(hit);
        // State transition after the frame.
        let flip = if self.in_bad { self.p_bg } else { self.p_gb };
        if self.rng.gen::<f64>() < flip {
            self.in_bad = !self.in_bad;
        }
        hit
    }

    fn frame_failure_probability(&self, bits: u32) -> f64 {
        let pb = self.stationary_bad_fraction();
        pb * self.bad_ber.frame_failure_probability(bits)
            + (1.0 - pb) * self.good_ber.frame_failure_probability(bits)
    }

    fn counters(&self) -> FaultCounters {
        self.counters
    }

    fn in_burst(&self) -> bool {
        self.in_bad
    }
}

/// A fault process that never corrupts anything (fault-free runs).
///
/// It still counts every consultation in `frames_checked`, so fault-free
/// and faulty runs report comparable frame totals.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults {
    frames_checked: u64,
}

impl NoFaults {
    /// Creates the process with zeroed counters.
    pub fn new() -> Self {
        NoFaults::default()
    }
}

impl FaultProcess for NoFaults {
    fn corrupts(&mut self, _bits: u32) -> bool {
        self.frames_checked += 1;
        false
    }

    fn frame_failure_probability(&self, _bits: u32) -> f64 {
        0.0
    }

    fn counters(&self) -> FaultCounters {
        FaultCounters {
            frames_checked: self.frames_checked,
            faults_injected: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_frequency_matches_probability() {
        let ber = Ber::new(1e-3).unwrap();
        let mut f = BernoulliFaults::new(ber, 1);
        let bits = 1000; // p ≈ 0.632
        let p = f.frame_failure_probability(bits);
        let trials = 20_000;
        let hits = (0..trials).filter(|_| f.corrupts(bits)).count();
        let freq = hits as f64 / trials as f64;
        assert!((freq - p).abs() < 0.02, "freq {freq} vs p {p}");
    }

    #[test]
    fn bernoulli_is_deterministic_under_seed() {
        let ber = Ber::new(1e-2).unwrap();
        let mut a = BernoulliFaults::new(ber, 9);
        let mut b = BernoulliFaults::new(ber, 9);
        for _ in 0..256 {
            assert_eq!(a.corrupts(500), b.corrupts(500));
        }
    }

    #[test]
    fn zero_ber_never_corrupts() {
        let mut f = BernoulliFaults::new(Ber::ZERO, 3);
        assert!((0..1000).all(|_| !f.corrupts(10_000)));
    }

    #[test]
    fn no_faults_process() {
        let mut f = NoFaults::new();
        assert!(!f.corrupts(u32::MAX));
        assert_eq!(f.frame_failure_probability(123), 0.0);
        // Consultations are counted even though nothing is ever corrupted.
        assert!(!f.corrupts(1));
        assert_eq!(
            f.counters(),
            FaultCounters {
                frames_checked: 2,
                faults_injected: 0,
            }
        );
    }

    #[test]
    fn in_burst_tracks_burst_state() {
        let mut quiet = BernoulliFaults::new(Ber::ZERO, 1);
        assert!(!quiet.in_burst(), "memoryless models are never in a burst");
        let _ = quiet.corrupts(100);
        assert!(!quiet.in_burst());

        let mut ge = GilbertElliott::new(Ber::ZERO, Ber::ZERO, 0.5, 0.5, 5);
        let mut matched = true;
        for _ in 0..200 {
            let _ = ge.corrupts(100);
            matched &= ge.in_burst() == ge.is_in_bad_state();
        }
        assert!(matched, "in_burst mirrors the bad state");
    }

    #[test]
    fn gilbert_elliott_visits_both_states() {
        let g = Ber::new(1e-9).unwrap();
        let b = Ber::new(1e-3).unwrap();
        let mut ch = GilbertElliott::new(g, b, 0.1, 0.3, 5);
        let mut saw_bad = false;
        let mut saw_good = false;
        for _ in 0..1000 {
            let _ = ch.corrupts(100);
            if ch.is_in_bad_state() {
                saw_bad = true;
            } else {
                saw_good = true;
            }
        }
        assert!(saw_bad && saw_good);
    }

    #[test]
    fn gilbert_elliott_stationary_fraction() {
        let g = Ber::ZERO;
        let b = Ber::ZERO;
        let ch = GilbertElliott::new(g, b, 0.1, 0.3, 0);
        assert!((ch.stationary_bad_fraction() - 0.25).abs() < 1e-12);
        let frozen = GilbertElliott::new(g, b, 0.0, 0.0, 0);
        assert_eq!(frozen.stationary_bad_fraction(), 0.0);
    }

    #[test]
    fn gilbert_elliott_bursts_are_correlated() {
        // With sticky states, consecutive frames should correlate: count
        // runs of faults and compare to an independent process with the
        // same marginal probability. We just sanity-check that the bad
        // state produces a much higher local fault rate.
        let g = Ber::ZERO;
        let b = Ber::new(0.01).unwrap();
        let mut ch = GilbertElliott::new(g, b, 0.01, 0.01, 11);
        let mut faults_in_bad = 0u32;
        let mut frames_in_bad = 0u32;
        let mut faults_in_good = 0u32;
        let mut frames_in_good = 0u32;
        for _ in 0..50_000 {
            let in_bad = ch.is_in_bad_state();
            let hit = ch.corrupts(200);
            if in_bad {
                frames_in_bad += 1;
                faults_in_bad += u32::from(hit);
            } else {
                frames_in_good += 1;
                faults_in_good += u32::from(hit);
            }
        }
        assert_eq!(faults_in_good, 0, "good state has BER 0");
        assert!(frames_in_good > 0 && frames_in_bad > 0);
        assert!(faults_in_bad > 0, "bad state must produce faults");
    }

    #[test]
    fn counters_track_checks_and_injections() {
        let ber = Ber::new(0.9).unwrap();
        let mut f = BernoulliFaults::new(ber, 1);
        let mut observed = 0u64;
        for _ in 0..100 {
            observed += u64::from(f.corrupts(10_000));
        }
        assert_eq!(f.counters().frames_checked, 100);
        assert_eq!(f.counters().faults_injected, observed);
        assert!(observed > 0, "BER 0.9 on long frames must corrupt");

        let mut ge = GilbertElliott::new(Ber::ZERO, Ber::new(0.5).unwrap(), 0.5, 0.5, 7);
        let mut hits = 0u64;
        for _ in 0..200 {
            hits += u64::from(ge.corrupts(1_000));
        }
        assert_eq!(ge.counters().frames_checked, 200);
        assert_eq!(ge.counters().faults_injected, hits);

        let mut quiet = NoFaults::new();
        assert!(!quiet.corrupts(64));
        assert_eq!(quiet.counters().frames_checked, 1);
        assert_eq!(quiet.counters().faults_injected, 0);
        let merged = f.counters().merged(ge.counters());
        assert_eq!(merged.frames_checked, 300);
        assert_eq!(merged.faults_injected, observed + hits);
    }

    #[test]
    #[should_panic(expected = "p_gb out of range")]
    fn ge_rejects_bad_probability() {
        let _ = GilbertElliott::new(Ber::ZERO, Ber::ZERO, 1.5, 0.1, 0);
    }

    #[test]
    fn prob_cache_is_bit_identical_to_ber() {
        for rate in [1e-7, 1e-5, 1e-3, 0.3] {
            let ber = Ber::new(rate).unwrap();
            let mut cache = FrameProbCache::new(ber);
            // More distinct sizes than cache slots, visited twice, so both
            // the fill path and the round-robin eviction path are compared
            // against the uncached expression.
            for _ in 0..2 {
                for bits in [0u32, 1, 7, 42, 100, 254, 1000, 2040, 4096, 65_535, 123_456] {
                    let want = ber.frame_failure_probability(bits);
                    let got = cache.probability(bits);
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "rate {rate} bits {bits}: cached {got} != direct {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_bernoulli_draw_matches_per_frame_stream() {
        let ber = Ber::new(1e-3).unwrap();
        let mut per_frame = BernoulliFaults::new(ber, 77);
        let mut batched = BernoulliFaults::new(ber, 77);
        // Interleave batch widths so boundaries never line up by accident.
        for (round, &width) in [1u32, 64, 7, 13, 64, 3, 31]
            .iter()
            .cycle()
            .take(200)
            .enumerate()
        {
            let bits = [200u32, 1000, 4000][round % 3];
            let hits = batched.corrupts_run(bits, width);
            for i in 0..width {
                assert_eq!(
                    per_frame.corrupts(bits),
                    hits.hit(i),
                    "round {round} frame {i} diverged"
                );
            }
        }
        assert_eq!(per_frame.counters(), batched.counters());
    }

    #[test]
    fn batched_draw_on_zero_ber_consumes_no_rng() {
        // A p == 0 batch must not advance the stream (the per-frame path
        // only draws when p > 0), so a later positive-p draw still matches.
        let ber = Ber::new(1e-2).unwrap();
        let mut a = BernoulliFaults::new(ber, 5);
        let mut b = BernoulliFaults::new(ber, 5);
        let quiet = b.corrupts_run(0, 64); // bits == 0 → p == 0
        assert_eq!(quiet, SegmentHits::clear(64));
        for _ in 0..64 {
            let _ = a.corrupts(0);
        }
        assert_eq!(a.corrupts(500), b.corrupts(500));
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn default_batched_draw_matches_gilbert_elliott_stream() {
        let g = Ber::new(1e-6).unwrap();
        let b = Ber::new(1e-3).unwrap();
        let mut per_frame = GilbertElliott::new(g, b, 0.05, 0.2, 13);
        let mut batched = GilbertElliott::new(g, b, 0.05, 0.2, 13);
        for round in 0..300 {
            let width = 1 + (round % 64) as u32;
            let hits = batched.corrupts_run(1000, width);
            for i in 0..width {
                assert_eq!(per_frame.corrupts(1000), hits.hit(i));
            }
            assert_eq!(per_frame.is_in_bad_state(), batched.is_in_bad_state());
        }
        assert_eq!(per_frame.counters(), batched.counters());
    }

    #[test]
    fn geometric_sampler_counts_frames_and_is_deterministic() {
        let ber = Ber::new(1e-4).unwrap();
        let mut a = BernoulliFaults::new(ber, 21);
        let mut b = BernoulliFaults::new(ber, 21);
        let mut hits = 0u64;
        for _ in 0..1000 {
            let ha = a.corrupts_run_geometric(2000, 64);
            let hb = b.corrupts_run_geometric(2000, 64);
            assert_eq!(ha, hb);
            hits += u64::from(ha.count());
        }
        assert_eq!(a.counters().frames_checked, 64_000);
        assert_eq!(a.counters().faults_injected, hits);
        // p ≈ 0.18 per frame here, so some faults must have landed.
        assert!(hits > 0);
    }

    #[test]
    fn geometric_sampler_edge_rates() {
        let mut zero = BernoulliFaults::new(Ber::ZERO, 1);
        assert_eq!(
            zero.corrupts_run_geometric(1000, 64),
            SegmentHits::clear(64)
        );
        // BER high enough that p rounds to 1.0 for a long frame.
        let mut hot = BernoulliFaults::new(Ber::new(0.9).unwrap(), 1);
        let all = hot.corrupts_run_geometric(100_000, 17);
        assert_eq!(all.count(), 17);
        assert!((0..17).all(|i| all.hit(i)));
    }
}
