//! Scripted fault-injection campaigns.
//!
//! The stochastic processes in [`crate::fault`] answer "how often does the
//! channel corrupt a frame?"; a *campaign* answers "what happens when the
//! channel suffers a specific disturbance at a specific time?" — the
//! question every recovery claim ("service restores within N cycles after
//! a 50-cycle blackout") is actually about.
//!
//! A [`CampaignSpec`] is a typed timeline of [`FaultEvent`]s on the
//! communication-cycle clock:
//!
//! * [`FaultEventKind::Blackout`] — the channel corrupts *every* frame in
//!   the window (severed wire / dead driver). An open-ended blackout
//!   (`duration_cycles: None`) is the permanent fault the paper attributes
//!   to physical damage (§I) — the semantics of the retired
//!   `ChannelOutage` decorator, absorbed here.
//! * [`FaultEventKind::BerSpike`] — extra corruption probability ramping
//!   linearly from 0 to `peak` across the window (EMI/temperature ramp).
//! * [`FaultEventKind::Babble`] — a babbling-node burst: each frame is
//!   additionally corrupted with probability `duty` for the whole window,
//!   the bus-level effect of a node saturating the dynamic segment.
//! * [`FaultEventKind::SensorDropout`] — the *fault sensor* (not the
//!   channel) goes dark: [`FaultProcess::counters`] freezes at its
//!   window-entry snapshot, so downstream health monitors see a stalled
//!   counter stream while injection continues underneath.
//!
//! [`CampaignFaults`] wraps any existing [`FaultProcess`] as a
//! deterministic decorator: the base process is consulted exactly as
//! before outside disturbance windows (its RNG stream is untouched), and
//! the decorator draws any extra randomness from its own
//! [`event_sim::rng::substream`], so adding a campaign to one channel
//! never perturbs the other. The bus engine drives the cycle clock via
//! [`FaultProcess::on_cycle_start`].

use rand::rngs::SmallRng;
use rand::Rng;

use event_sim::rng::substream;

use crate::fault::{FaultCounters, FaultProcess};

/// Which channel(s) of the dual-channel bus an event strikes.
///
/// The reliability crate does not know the bus's channel type; the engine
/// installs one fault process per channel and tells the decorator its
/// channel index (0 = A, 1 = B) at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignTarget {
    /// Channel A only (index 0).
    A,
    /// Channel B only (index 1).
    B,
    /// Both channels.
    Both,
}

impl CampaignTarget {
    /// Whether the event applies to the channel at `channel_index`.
    #[must_use]
    pub fn includes(self, channel_index: usize) -> bool {
        match self {
            CampaignTarget::A => channel_index == 0,
            CampaignTarget::B => channel_index == 1,
            CampaignTarget::Both => channel_index <= 1,
        }
    }
}

/// What a [`FaultEvent`] does while its window is active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEventKind {
    /// Corrupt every frame unconditionally; the base process is *not*
    /// consulted while down (its RNG stream pauses), exactly as the old
    /// `ChannelOutage` behaved once struck.
    Blackout,
    /// Extra per-frame corruption probability ramping linearly from 0 at
    /// the window start to `peak` at the window end (an open-ended spike
    /// holds `peak` from the start).
    BerSpike {
        /// Probability reached at the end of the ramp, in `[0, 1]`.
        peak: f64,
    },
    /// Extra per-frame corruption with constant probability `duty` for the
    /// whole window.
    Babble {
        /// Per-frame corruption probability of the burst, in `[0, 1]`.
        duty: f64,
    },
    /// Freeze the counters the process *reports* (injection continues).
    SensorDropout,
}

impl FaultEventKind {
    /// Short lowercase label (scorecards, traces).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultEventKind::Blackout => "blackout",
            FaultEventKind::BerSpike { .. } => "ber-spike",
            FaultEventKind::Babble { .. } => "babble",
            FaultEventKind::SensorDropout => "sensor-dropout",
        }
    }
}

/// One scripted disturbance on the cycle clock: a kind, a target channel
/// set, and a `[start_cycle, start_cycle + duration_cycles)` window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Channel(s) the event strikes.
    pub target: CampaignTarget,
    /// First cycle (inclusive) the event is active.
    pub start_cycle: u64,
    /// Window length in cycles; `None` means the event never clears (a
    /// permanent fault).
    pub duration_cycles: Option<u64>,
    /// What the event does while active.
    pub kind: FaultEventKind,
}

impl FaultEvent {
    /// First cycle (exclusive) after the event has cleared, or `None` for
    /// a permanent event.
    #[must_use]
    pub fn end_cycle(&self) -> Option<u64> {
        self.duration_cycles
            .map(|d| self.start_cycle.saturating_add(d))
    }

    /// Whether the event is active during `cycle`.
    #[must_use]
    pub fn active(&self, cycle: u64) -> bool {
        cycle >= self.start_cycle && self.end_cycle().is_none_or(|end| cycle < end)
    }

    /// The extra corruption probability this event contributes at `cycle`
    /// (0 when inactive or when the kind adds no per-frame probability).
    #[must_use]
    pub fn extra_probability(&self, cycle: u64) -> f64 {
        if !self.active(cycle) {
            return 0.0;
        }
        match self.kind {
            FaultEventKind::BerSpike { peak } => match self.duration_cycles {
                // Linear ramp reaching `peak` on the window's last cycle.
                Some(d) if d > 1 => peak * (cycle - self.start_cycle + 1) as f64 / d as f64,
                _ => peak,
            },
            FaultEventKind::Babble { duty } => duty,
            FaultEventKind::Blackout | FaultEventKind::SensorDropout => 0.0,
        }
    }
}

/// A validated, ordered timeline of [`FaultEvent`]s.
///
/// Build one with the fluent constructors; each validates its parameters
/// (probabilities in range, non-empty windows) so a malformed campaign
/// fails at construction, not mid-run.
///
/// ```
/// use reliability::campaign::{CampaignSpec, CampaignTarget};
/// let spec = CampaignSpec::new()
///     .blackout(CampaignTarget::A, 40, 50)
///     .ber_spike(CampaignTarget::Both, 120, 30, 0.2);
/// assert_eq!(spec.events().len(), 2);
/// assert_eq!(spec.last_clear_cycle(), Some(150));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CampaignSpec {
    events: Vec<FaultEvent>,
}

impl CampaignSpec {
    /// An empty campaign (no disturbances).
    #[must_use]
    pub fn new() -> Self {
        CampaignSpec::default()
    }

    fn push(mut self, event: FaultEvent) -> Self {
        if let Some(d) = event.duration_cycles {
            assert!(d > 0, "event window must span at least one cycle");
        }
        self.events.push(event);
        self
    }

    /// Adds a channel blackout of `cycles` cycles starting at `start`.
    #[must_use]
    pub fn blackout(self, target: CampaignTarget, start: u64, cycles: u64) -> Self {
        self.push(FaultEvent {
            target,
            start_cycle: start,
            duration_cycles: Some(cycles),
            kind: FaultEventKind::Blackout,
        })
    }

    /// Adds a permanent blackout (never clears) starting at `start` — the
    /// severed-wire case the retired `ChannelOutage` modelled.
    #[must_use]
    pub fn permanent_blackout(self, target: CampaignTarget, start: u64) -> Self {
        self.push(FaultEvent {
            target,
            start_cycle: start,
            duration_cycles: None,
            kind: FaultEventKind::Blackout,
        })
    }

    /// Adds a BER spike ramping linearly to `peak` over `cycles` cycles.
    ///
    /// # Panics
    /// Panics if `peak` is outside `[0, 1]`.
    #[must_use]
    pub fn ber_spike(self, target: CampaignTarget, start: u64, cycles: u64, peak: f64) -> Self {
        assert!((0.0..=1.0).contains(&peak), "spike peak out of range");
        self.push(FaultEvent {
            target,
            start_cycle: start,
            duration_cycles: Some(cycles),
            kind: FaultEventKind::BerSpike { peak },
        })
    }

    /// Adds a babbling-node burst corrupting frames with probability
    /// `duty` for `cycles` cycles.
    ///
    /// # Panics
    /// Panics if `duty` is outside `[0, 1]`.
    #[must_use]
    pub fn babble(self, target: CampaignTarget, start: u64, cycles: u64, duty: f64) -> Self {
        assert!((0.0..=1.0).contains(&duty), "babble duty out of range");
        self.push(FaultEvent {
            target,
            start_cycle: start,
            duration_cycles: Some(cycles),
            kind: FaultEventKind::Babble { duty },
        })
    }

    /// Adds a health-sensor dropout window of `cycles` cycles.
    #[must_use]
    pub fn sensor_dropout(self, target: CampaignTarget, start: u64, cycles: u64) -> Self {
        self.push(FaultEvent {
            target,
            start_cycle: start,
            duration_cycles: Some(cycles),
            kind: FaultEventKind::SensorDropout,
        })
    }

    /// The scripted events, in insertion order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` when the campaign scripts no disturbances.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The latest clear cycle over all finite events (`None` if the
    /// campaign is empty or every event is permanent). Recovery checkers
    /// use it to know when the disturbance is over for good.
    #[must_use]
    pub fn last_clear_cycle(&self) -> Option<u64> {
        self.events.iter().filter_map(FaultEvent::end_cycle).max()
    }

    /// Whether any permanent (never-clearing) event is scripted.
    #[must_use]
    pub fn has_permanent_event(&self) -> bool {
        self.events.iter().any(|e| e.duration_cycles.is_none())
    }
}

/// Counters specific to the campaign layer, on top of the base process's
/// [`FaultCounters`]. These fold into the run fingerprint only when
/// nonzero, so campaign-free runs keep their recorded golden digests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CampaignCounters {
    /// Scripted events whose window has opened.
    pub events_started: u64,
    /// Frames corrupted unconditionally by an active blackout.
    pub blackout_faults: u64,
    /// Frames corrupted by a spike/babble draw that the base process had
    /// left intact.
    pub extra_faults: u64,
    /// Cycles during which the reported counters were frozen by a sensor
    /// dropout.
    pub dropout_cycles: u64,
}

impl CampaignCounters {
    /// Field-wise sum of two counter sets (e.g. across channels).
    #[must_use]
    pub fn merged(self, other: CampaignCounters) -> CampaignCounters {
        CampaignCounters {
            events_started: self.events_started + other.events_started,
            blackout_faults: self.blackout_faults + other.blackout_faults,
            extra_faults: self.extra_faults + other.extra_faults,
            dropout_cycles: self.dropout_cycles + other.dropout_cycles,
        }
    }
}

/// Decorates any [`FaultProcess`] with a scripted [`CampaignSpec`].
///
/// Counters are kept at this layer — during a blackout the base is not
/// consulted, so its own counters would under-report — and the decorator
/// satisfies the same identities as every other process: `faults_injected`
/// equals the corruptions the bus observes, whatever their source.
#[derive(Debug)]
pub struct CampaignFaults {
    base: Box<dyn FaultProcess>,
    /// Events striking this channel, in spec order.
    events: Vec<FaultEvent>,
    /// Per-event "window has opened" latches (for `events_started`).
    started: Vec<bool>,
    /// Disturbance state recomputed at each cycle start.
    blackout: bool,
    extra_probability: f64,
    /// Counter snapshot reported while a sensor dropout is active.
    frozen: Option<FaultCounters>,
    rng: SmallRng,
    counters: FaultCounters,
    campaign: CampaignCounters,
}

impl CampaignFaults {
    /// Wraps `base` with the events of `spec` that strike the channel at
    /// `channel_index` (0 = A, 1 = B). Extra randomness (spike/babble
    /// draws) comes from a dedicated substream of `seed`, leaving the base
    /// process's stream untouched outside blackout windows.
    pub fn new(
        base: Box<dyn FaultProcess>,
        spec: &CampaignSpec,
        channel_index: usize,
        seed: u64,
    ) -> Self {
        let events: Vec<FaultEvent> = spec
            .events()
            .iter()
            .filter(|e| e.target.includes(channel_index))
            .copied()
            .collect();
        let started = vec![false; events.len()];
        let mut this = CampaignFaults {
            base,
            events,
            started,
            blackout: false,
            extra_probability: 0.0,
            frozen: None,
            rng: substream(seed, "fault/campaign"),
            counters: FaultCounters::default(),
            campaign: CampaignCounters::default(),
        };
        // The engine announces cycle starts from cycle 0 onward, but a
        // decorator used standalone (tests) must start consistent too.
        this.recompute(0, false);
        this
    }

    /// `true` while an active blackout corrupts everything — the
    /// `ChannelOutage::is_down` observation, generalized to windows.
    #[must_use]
    pub fn is_down(&self) -> bool {
        self.blackout
    }

    /// Campaign-layer counters so far.
    #[must_use]
    pub fn campaign_counters_snapshot(&self) -> CampaignCounters {
        self.campaign
    }

    /// Recomputes the disturbance state for `cycle`; `count` guards the
    /// side-effecting accounting (event latches, dropout cycles) so the
    /// constructor's consistency pass does not count cycle 0 twice.
    fn recompute(&mut self, cycle: u64, count: bool) {
        self.blackout = false;
        self.extra_probability = 0.0;
        let mut dropout = false;
        for (i, event) in self.events.iter().enumerate() {
            let active = event.active(cycle);
            if active && count && !self.started[i] {
                self.started[i] = true;
                self.campaign.events_started += 1;
            }
            if !active {
                continue;
            }
            match event.kind {
                FaultEventKind::Blackout => self.blackout = true,
                FaultEventKind::BerSpike { .. } | FaultEventKind::Babble { .. } => {
                    self.extra_probability =
                        self.extra_probability.max(event.extra_probability(cycle));
                }
                FaultEventKind::SensorDropout => dropout = true,
            }
        }
        if dropout {
            if self.frozen.is_none() {
                self.frozen = Some(self.counters);
            }
            if count {
                self.campaign.dropout_cycles += 1;
            }
        } else {
            self.frozen = None;
        }
    }
}

impl FaultProcess for CampaignFaults {
    fn corrupts(&mut self, bits: u32) -> bool {
        self.counters.frames_checked += 1;
        let hit = if self.blackout {
            // The wire is dead: corrupt unconditionally without consulting
            // the base, so its RNG stream pauses for the window.
            self.campaign.blackout_faults += 1;
            true
        } else {
            let base_hit = self.base.corrupts(bits);
            if !base_hit
                && self.extra_probability > 0.0
                && self.rng.gen::<f64>() < self.extra_probability
            {
                self.campaign.extra_faults += 1;
                true
            } else {
                base_hit
            }
        };
        self.counters.faults_injected += u64::from(hit);
        hit
    }

    fn frame_failure_probability(&self, bits: u32) -> f64 {
        if self.blackout {
            return 1.0;
        }
        let base = self.base.frame_failure_probability(bits);
        // Independent extra draw on base survivors.
        1.0 - (1.0 - base) * (1.0 - self.extra_probability)
    }

    fn counters(&self) -> FaultCounters {
        // A sensor dropout freezes what we *report*; accumulation
        // continues underneath so the post-dropout jump stays monotone.
        self.frozen.unwrap_or(self.counters)
    }

    fn in_burst(&self) -> bool {
        self.blackout || self.extra_probability > 0.0 || self.base.in_burst()
    }

    fn on_cycle_start(&mut self, cycle: u64) {
        self.base.on_cycle_start(cycle);
        self.recompute(cycle, true);
    }

    fn campaign_counters(&self) -> Option<CampaignCounters> {
        Some(self.campaign)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ber::Ber;
    use crate::fault::{BernoulliFaults, NoFaults};

    fn boxed_quiet() -> Box<dyn FaultProcess> {
        Box::new(NoFaults::new())
    }

    #[test]
    fn blackout_window_down_and_up_transitions() {
        let spec = CampaignSpec::new().blackout(CampaignTarget::A, 2, 3);
        let mut f = CampaignFaults::new(boxed_quiet(), &spec, 0, 1);
        for cycle in 0..8u64 {
            f.on_cycle_start(cycle);
            let expect_down = (2..5).contains(&cycle);
            assert_eq!(f.is_down(), expect_down, "cycle {cycle}");
            assert_eq!(f.corrupts(100), expect_down, "cycle {cycle}");
            assert_eq!(f.in_burst(), expect_down, "cycle {cycle}");
            let p = f.frame_failure_probability(100);
            assert_eq!(p, if expect_down { 1.0 } else { 0.0 });
        }
        assert_eq!(
            f.counters(),
            FaultCounters {
                frames_checked: 8,
                faults_injected: 3,
            }
        );
        let c = f.campaign_counters().unwrap();
        assert_eq!(c.events_started, 1);
        assert_eq!(c.blackout_faults, 3);
    }

    #[test]
    fn permanent_blackout_is_the_old_channel_outage() {
        // Dead from cycle 0 — the `ChannelOutage::new(_, 0)` case.
        let spec = CampaignSpec::new().permanent_blackout(CampaignTarget::Both, 0);
        let mut f = CampaignFaults::new(boxed_quiet(), &spec, 1, 1);
        assert!(f.is_down(), "down before any cycle announcement");
        assert!(f.corrupts(1));
        for cycle in 0..100 {
            f.on_cycle_start(cycle);
            assert!(f.is_down());
            assert!(f.corrupts(1));
        }
        assert!(spec.has_permanent_event());
        assert_eq!(spec.last_clear_cycle(), None);
    }

    #[test]
    fn base_faults_pass_through_outside_windows() {
        let ber = Ber::new(0.9).unwrap();
        let spec = CampaignSpec::new().blackout(CampaignTarget::A, 1000, 10);
        let mut wrapped = CampaignFaults::new(Box::new(BernoulliFaults::new(ber, 7)), &spec, 0, 99);
        let mut bare = BernoulliFaults::new(ber, 7);
        wrapped.on_cycle_start(0);
        for _ in 0..200 {
            assert_eq!(wrapped.corrupts(10_000), bare.corrupts(10_000));
        }
        assert_eq!(wrapped.counters(), bare.counters());
        assert!(
            (wrapped.frame_failure_probability(100) - bare.frame_failure_probability(100)).abs()
                < 1e-12
        );
    }

    #[test]
    fn blackout_pauses_the_base_rng_stream() {
        // Frames consumed during the blackout must not advance the base
        // stream: after the window, the wrapped process continues exactly
        // where a never-interrupted twin that skipped those frames would.
        let ber = Ber::new(0.5).unwrap();
        let spec = CampaignSpec::new().blackout(CampaignTarget::A, 1, 1);
        let mut wrapped = CampaignFaults::new(Box::new(BernoulliFaults::new(ber, 3)), &spec, 0, 5);
        let mut twin = BernoulliFaults::new(ber, 3);
        wrapped.on_cycle_start(0);
        for _ in 0..10 {
            assert_eq!(wrapped.corrupts(1000), twin.corrupts(1000));
        }
        wrapped.on_cycle_start(1);
        for _ in 0..10 {
            assert!(wrapped.corrupts(1000), "blackout corrupts everything");
        }
        wrapped.on_cycle_start(2);
        for _ in 0..10 {
            assert_eq!(wrapped.corrupts(1000), twin.corrupts(1000));
        }
    }

    #[test]
    fn counter_accounting_across_down_and_up() {
        // 2 clean cycles, 2 down cycles, 2 clean cycles; one frame each.
        let spec = CampaignSpec::new().blackout(CampaignTarget::A, 2, 2);
        let mut f = CampaignFaults::new(boxed_quiet(), &spec, 0, 1);
        let mut injected = 0u64;
        for cycle in 0..6 {
            f.on_cycle_start(cycle);
            injected += u64::from(f.corrupts(64));
        }
        assert_eq!(injected, 2);
        assert_eq!(
            f.counters(),
            FaultCounters {
                frames_checked: 6,
                faults_injected: 2,
            }
        );
        assert_eq!(f.campaign_counters().unwrap().blackout_faults, 2);
    }

    #[test]
    fn spike_ramps_linearly_to_peak() {
        let spec = CampaignSpec::new().ber_spike(CampaignTarget::A, 10, 4, 0.8);
        let event = spec.events()[0];
        assert_eq!(event.extra_probability(9), 0.0);
        assert!((event.extra_probability(10) - 0.2).abs() < 1e-12);
        assert!((event.extra_probability(11) - 0.4).abs() < 1e-12);
        assert!((event.extra_probability(13) - 0.8).abs() < 1e-12);
        assert_eq!(event.extra_probability(14), 0.0);
    }

    #[test]
    fn spike_injects_extra_faults_deterministically() {
        let spec = CampaignSpec::new().ber_spike(CampaignTarget::A, 0, 10, 1.0);
        let run = || {
            let mut f = CampaignFaults::new(boxed_quiet(), &spec, 0, 42);
            let mut hits = Vec::new();
            for cycle in 0..10 {
                f.on_cycle_start(cycle);
                for _ in 0..8 {
                    hits.push(f.corrupts(100));
                }
            }
            (hits, f.counters(), f.campaign_counters().unwrap())
        };
        let (hits_a, counters, campaign) = run();
        let (hits_b, ..) = run();
        assert_eq!(hits_a, hits_b, "campaign draws are seed-deterministic");
        assert!(campaign.extra_faults > 0, "a peak-1.0 spike must inject");
        assert_eq!(counters.faults_injected, campaign.extra_faults);
        // The ramp's last cycle reaches probability 1.0: all 8 frames hit.
        assert!(hits_a[72..80].iter().all(|&h| h));
    }

    #[test]
    fn babble_burst_holds_constant_duty() {
        let spec = CampaignSpec::new().babble(CampaignTarget::Both, 5, 3, 1.0);
        let mut f = CampaignFaults::new(boxed_quiet(), &spec, 1, 9);
        for cycle in 0..10 {
            f.on_cycle_start(cycle);
            let expect = (5..8).contains(&cycle);
            assert_eq!(f.corrupts(100), expect, "cycle {cycle}");
            assert_eq!(f.in_burst(), expect);
        }
    }

    #[test]
    fn sensor_dropout_freezes_reported_counters_monotonically() {
        let ber = Ber::new(0.9).unwrap();
        let spec = CampaignSpec::new().sensor_dropout(CampaignTarget::A, 2, 3);
        let mut f = CampaignFaults::new(Box::new(BernoulliFaults::new(ber, 1)), &spec, 0, 1);
        let mut reported = Vec::new();
        for cycle in 0..8 {
            f.on_cycle_start(cycle);
            let _ = f.corrupts(1000);
            reported.push(f.counters());
        }
        // Frozen at the window-entry snapshot for cycles 2..5.
        assert_eq!(reported[1], reported[2]);
        assert_eq!(reported[2], reported[3]);
        assert_eq!(reported[2], reported[4]);
        // After the window the true (larger) totals reappear — monotone.
        assert!(reported[5].frames_checked > reported[4].frames_checked);
        for pair in reported.windows(2) {
            assert!(pair[1].frames_checked >= pair[0].frames_checked);
            assert!(pair[1].faults_injected >= pair[0].faults_injected);
        }
        assert_eq!(reported[7].frames_checked, 8, "accumulation never stopped");
        assert_eq!(f.campaign_counters().unwrap().dropout_cycles, 3);
    }

    #[test]
    fn events_filter_by_target_channel() {
        let spec = CampaignSpec::new()
            .blackout(CampaignTarget::A, 0, 5)
            .babble(CampaignTarget::B, 0, 5, 1.0)
            .sensor_dropout(CampaignTarget::Both, 0, 5);
        let a = CampaignFaults::new(boxed_quiet(), &spec, 0, 1);
        let b = CampaignFaults::new(boxed_quiet(), &spec, 1, 1);
        assert_eq!(a.events.len(), 2, "blackout + dropout");
        assert_eq!(b.events.len(), 2, "babble + dropout");
        assert!(a.is_down());
        assert!(!b.is_down());
        assert!(CampaignTarget::Both.includes(0) && CampaignTarget::Both.includes(1));
        assert!(!CampaignTarget::A.includes(1) && !CampaignTarget::B.includes(0));
    }

    #[test]
    fn overlapping_probabilities_take_the_maximum() {
        let spec = CampaignSpec::new()
            .babble(CampaignTarget::A, 0, 10, 0.3)
            .ber_spike(CampaignTarget::A, 0, 10, 0.6);
        let mut f = CampaignFaults::new(boxed_quiet(), &spec, 0, 1);
        f.on_cycle_start(9); // spike ramp at its peak
        assert!((f.extra_probability - 0.6).abs() < 1e-12);
        f.on_cycle_start(0); // ramp barely started: babble dominates
        assert!((f.extra_probability - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_campaign_is_transparent() {
        let ber = Ber::new(0.3).unwrap();
        let spec = CampaignSpec::new();
        assert!(spec.is_empty());
        let mut wrapped = CampaignFaults::new(Box::new(BernoulliFaults::new(ber, 11)), &spec, 0, 2);
        let mut bare = BernoulliFaults::new(ber, 11);
        for cycle in 0..5 {
            wrapped.on_cycle_start(cycle);
            for _ in 0..20 {
                assert_eq!(wrapped.corrupts(500), bare.corrupts(500));
            }
        }
        assert_eq!(wrapped.counters(), bare.counters());
        assert_eq!(
            wrapped.campaign_counters().unwrap(),
            CampaignCounters::default()
        );
    }

    #[test]
    fn campaign_counters_merge_fieldwise() {
        let a = CampaignCounters {
            events_started: 1,
            blackout_faults: 2,
            extra_faults: 3,
            dropout_cycles: 4,
        };
        let b = CampaignCounters {
            events_started: 10,
            blackout_faults: 20,
            extra_faults: 30,
            dropout_cycles: 40,
        };
        let m = a.merged(b);
        assert_eq!(m.events_started, 11);
        assert_eq!(m.blackout_faults, 22);
        assert_eq!(m.extra_faults, 33);
        assert_eq!(m.dropout_cycles, 44);
    }

    #[test]
    #[should_panic(expected = "spike peak out of range")]
    fn spike_rejects_bad_peak() {
        let _ = CampaignSpec::new().ber_spike(CampaignTarget::A, 0, 1, 1.5);
    }

    #[test]
    #[should_panic(expected = "event window must span at least one cycle")]
    fn zero_length_window_rejected() {
        let _ = CampaignSpec::new().blackout(CampaignTarget::A, 0, 0);
    }
}
