//! IEC 61508 safety-integrity levels.

use event_sim::SimDuration;
use std::fmt;

/// A safety-integrity level from IEC 61508 ("Functional safety of
/// electrical/electronic/programmable electronic safety-related systems").
///
/// For continuous-mode (high-demand) operation, the standard specifies per
/// level a band for the *probability of dangerous failure per hour* (PFH).
/// The paper (§III-E) derives from this the maximum system failure
/// probability γ over a time unit *u* and defines the reliability goal
/// ρ = 1 − γ.
///
/// ```
/// use reliability::SilLevel;
/// use event_sim::SimDuration;
/// // SIL 3 allows at most 1e-7 dangerous failures per hour.
/// let rho = SilLevel::Sil3.reliability_goal(SimDuration::from_secs(3600));
/// assert!((rho - (1.0 - 1e-7)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SilLevel {
    /// SIL 1: PFH in `[1e-6, 1e-5)`.
    Sil1,
    /// SIL 2: PFH in `[1e-7, 1e-6)`.
    Sil2,
    /// SIL 3: PFH in `[1e-8, 1e-7)`.
    Sil3,
    /// SIL 4: PFH in `[1e-9, 1e-8)`.
    Sil4,
}

impl SilLevel {
    /// All levels, weakest first.
    pub const ALL: [SilLevel; 4] = [
        SilLevel::Sil1,
        SilLevel::Sil2,
        SilLevel::Sil3,
        SilLevel::Sil4,
    ];

    /// The upper bound of the allowed probability of dangerous failure per
    /// hour (exclusive bound of the IEC 61508 band, used as the design
    /// target γ per hour).
    pub fn max_failure_probability_per_hour(self) -> f64 {
        match self {
            SilLevel::Sil1 => 1e-5,
            SilLevel::Sil2 => 1e-6,
            SilLevel::Sil3 => 1e-7,
            SilLevel::Sil4 => 1e-8,
        }
    }

    /// The maximum tolerated failure probability γ over an arbitrary time
    /// unit `u`, scaling the hourly budget linearly (the standard treats
    /// failures as a rate).
    pub fn gamma(self, unit: SimDuration) -> f64 {
        let hours = unit.as_nanos() as f64 / 3.6e12;
        (self.max_failure_probability_per_hour() * hours).min(1.0)
    }

    /// The reliability goal ρ = 1 − γ over time unit `u` (§III-E).
    pub fn reliability_goal(self, unit: SimDuration) -> f64 {
        1.0 - self.gamma(unit)
    }
}

impl fmt::Display for SilLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = match self {
            SilLevel::Sil1 => 1,
            SilLevel::Sil2 => 2,
            SilLevel::Sil3 => 3,
            SilLevel::Sil4 => 4,
        };
        write!(f, "SIL {n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: SimDuration = SimDuration::from_secs(3600);

    #[test]
    fn levels_are_ordered_by_strictness() {
        for w in SilLevel::ALL.windows(2) {
            assert!(w[0] < w[1]);
            assert!(
                w[0].max_failure_probability_per_hour() > w[1].max_failure_probability_per_hour()
            );
        }
    }

    #[test]
    fn gamma_scales_with_unit() {
        let g_hour = SilLevel::Sil2.gamma(HOUR);
        let g_half = SilLevel::Sil2.gamma(SimDuration::from_secs(1800));
        assert!((g_half * 2.0 - g_hour).abs() < 1e-18);
    }

    #[test]
    fn reliability_goal_complements_gamma() {
        for level in SilLevel::ALL {
            let g = level.gamma(HOUR);
            assert!((level.reliability_goal(HOUR) + g - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn gamma_clamps_at_one_for_huge_units() {
        // 1e12 hours at SIL1 would exceed probability 1.
        let g = SilLevel::Sil1.gamma(SimDuration::MAX);
        assert!(g <= 1.0);
    }

    #[test]
    fn display() {
        assert_eq!(SilLevel::Sil4.to_string(), "SIL 4");
    }
}
